//! The checked filter interpreter (§4 of the paper).
//!
//! "The filter interpreter is straightforward, but must be carefully coded
//! since its inner loop is quite busy. It simply iterates through the
//! 'instruction words' of a filter (there are no branch instructions),
//! evaluating the filter predicate using a small stack."
//!
//! This module implements the paper's *production* interpreter: during
//! evaluation of each instruction it "verifies that the instruction is
//! valid, that it doesn't overflow or underflow the evaluation stack, and
//! that it doesn't refer to a field outside the current packet" (§7). The
//! §7 improvements — hoisting those checks to bind time and compiling
//! filters — live in [`crate::validate`] and [`crate::compile`].

use crate::error::RuntimeError;
use crate::packet::PacketView;
use crate::program::FilterProgram;
use crate::word::{BinaryOp, Instr, StackAction};

/// Depth of the evaluation stack, in 16-bit words.
///
/// "A small stack" (§4); the exact size is an implementation constant.
pub const STACK_SIZE: usize = 32;

/// Which instruction dialect evaluation accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dialect {
    /// The paper's published language (figure 3-6).
    #[default]
    Classic,
    /// Classic plus the §7 extensions: `PUSHIND` and arithmetic operators.
    Extended,
}

/// What a short-circuit operator pushes when it does *not* terminate.
///
/// The paper (§3.1) says all four short-circuit operators "evaluate
/// `R := (T1 == T2)` and push the result R on the stack" before continuing.
/// The historical 4.3BSD `enet.c` pushed nothing when continuing. Both give
/// identical verdicts for filters written in either style (the verdict is
/// the *top* of stack, and a well-formed continuation overwrites or ignores
/// the slot), but stack layouts differ; we support both for fidelity and
/// expose the choice as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShortCircuitStyle {
    /// Push `R` and continue (the paper's description).
    #[default]
    Paper,
    /// Push nothing and continue (the 4.3BSD `enet.c` implementation).
    Historical,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpConfig {
    /// Accepted instruction dialect.
    pub dialect: Dialect,
    /// Short-circuit continuation behavior.
    pub short_circuit: ShortCircuitStyle,
}

/// Counters describing one filter evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Instruction words executed (literals not counted).
    pub instructions: u32,
    /// Literal words fetched by `PUSHLIT`.
    pub literal_fetches: u32,
    /// Packet words fetched by `PUSHWORD`/`PUSHIND`.
    pub packet_fetches: u32,
    /// Whether a short-circuit operator terminated evaluation early.
    pub short_circuited: bool,
    /// The runtime fault that ended evaluation, if any (implies reject).
    pub error: Option<RuntimeError>,
}

impl EvalStats {
    /// Total words touched: instructions plus literals.
    pub fn words_executed(&self) -> u32 {
        self.instructions + self.literal_fetches
    }
}

/// Result of applying one binary operator.
enum OpOutcome {
    /// Push this value and continue.
    Push(u16),
    /// Short-circuit style pushed nothing; continue.
    NoPush,
    /// Terminate the whole filter with this verdict.
    Terminate(bool),
}

/// The runtime-checked interpreter.
///
/// # Examples
///
/// ```
/// use pf_filter::interp::CheckedInterpreter;
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
///
/// let interp = CheckedInterpreter::default();
/// let filter = samples::fig_3_9_pup_socket_35();
/// // A 3Mb-Ethernet Pup packet addressed to socket 35:
/// let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
/// assert!(interp.eval(&filter, PacketView::new(&pkt)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckedInterpreter {
    config: InterpConfig,
}

impl CheckedInterpreter {
    /// Creates an interpreter with the given configuration.
    pub fn new(config: InterpConfig) -> Self {
        CheckedInterpreter { config }
    }

    /// Creates an interpreter accepting the extended (§7) dialect.
    pub fn extended() -> Self {
        CheckedInterpreter {
            config: InterpConfig {
                dialect: Dialect::Extended,
                ..Default::default()
            },
        }
    }

    /// The interpreter's configuration.
    pub fn config(&self) -> InterpConfig {
        self.config
    }

    /// Evaluates `filter` against `packet`; `true` means *accept*.
    ///
    /// Runtime faults reject the packet, per §4 ("or an error is detected").
    pub fn eval(&self, filter: &FilterProgram, packet: PacketView<'_>) -> bool {
        self.eval_with_stats(filter, packet).0
    }

    /// Evaluates and also reports execution counters.
    pub fn eval_with_stats(
        &self,
        filter: &FilterProgram,
        packet: PacketView<'_>,
    ) -> (bool, EvalStats) {
        eval_words(self.config, filter.words(), packet)
    }

    /// Evaluates under an instruction budget: if more than `budget`
    /// instruction words would execute, evaluation terminates with a
    /// [`RuntimeError::BudgetExceeded`] fault and the packet is rejected.
    ///
    /// The filter language has no branches, so a filter either always fits
    /// the budget or can always exceed it; the budget turns a runaway (or
    /// hostile) filter into a bounded, rejecting one instead of letting it
    /// monopolize the demultiplexer.
    pub fn eval_budgeted(
        &self,
        filter: &FilterProgram,
        packet: PacketView<'_>,
        budget: u32,
    ) -> (bool, EvalStats) {
        eval_words_budgeted(self.config, filter.words(), packet, Some(budget))
    }
}

/// Evaluates raw program words against a packet.
///
/// This is the shared inner loop; [`CheckedInterpreter`] is its public face.
pub(crate) fn eval_words(
    config: InterpConfig,
    words: &[u16],
    packet: PacketView<'_>,
) -> (bool, EvalStats) {
    eval_words_budgeted(config, words, packet, None)
}

/// Evaluates raw program words with an optional instruction budget.
pub(crate) fn eval_words_budgeted(
    config: InterpConfig,
    words: &[u16],
    packet: PacketView<'_>,
    budget: Option<u32>,
) -> (bool, EvalStats) {
    let mut stats = EvalStats::default();
    // A zero-length filter accepts every packet, as in the historical
    // implementation (a port wanting everything binds an empty filter and
    // pays no interpretation cost — the table 6-10 zero-length row).
    if words.is_empty() {
        return (true, stats);
    }
    let mut stack = [0u16; STACK_SIZE];
    let mut depth = 0usize;
    let mut pc = 0usize;

    macro_rules! fault {
        ($e:expr) => {{
            stats.error = Some($e);
            return (false, stats);
        }};
    }

    while pc < words.len() {
        let offset = pc;
        let raw = words[pc];
        pc += 1;
        let Some(instr) = Instr::decode(raw) else {
            fault!(RuntimeError::BadInstruction { offset, word: raw });
        };
        stats.instructions += 1;
        if let Some(limit) = budget {
            if stats.instructions > limit {
                fault!(RuntimeError::BudgetExceeded { limit });
            }
        }
        if config.dialect == Dialect::Classic && instr.is_extended() {
            fault!(RuntimeError::ExtendedInstruction { offset });
        }

        // Stack action first (§3.1: push, then the binary operation).
        match instr.action {
            StackAction::NoPush => {}
            StackAction::PushLit => {
                let Some(&lit) = words.get(pc) else {
                    fault!(RuntimeError::MissingLiteral { offset });
                };
                pc += 1;
                stats.literal_fetches += 1;
                if depth == STACK_SIZE {
                    fault!(RuntimeError::StackOverflow { offset });
                }
                stack[depth] = lit;
                depth += 1;
            }
            StackAction::PushZero
            | StackAction::PushOne
            | StackAction::PushFFFF
            | StackAction::PushFF00
            | StackAction::Push00FF => {
                if depth == STACK_SIZE {
                    fault!(RuntimeError::StackOverflow { offset });
                }
                stack[depth] = match instr.action {
                    StackAction::PushZero => 0,
                    StackAction::PushOne => 1,
                    StackAction::PushFFFF => 0xFFFF,
                    StackAction::PushFF00 => 0xFF00,
                    StackAction::Push00FF => 0x00FF,
                    _ => unreachable!(),
                };
                depth += 1;
            }
            StackAction::PushWord(n) => {
                if depth == STACK_SIZE {
                    fault!(RuntimeError::StackOverflow { offset });
                }
                let idx = usize::from(n);
                let Some(v) = packet.word(idx) else {
                    fault!(RuntimeError::OutOfPacket { offset, index: idx });
                };
                stats.packet_fetches += 1;
                stack[depth] = v;
                depth += 1;
            }
            StackAction::PushInd => {
                if depth == 0 {
                    fault!(RuntimeError::StackUnderflow { offset });
                }
                let idx = usize::from(stack[depth - 1]);
                let Some(v) = packet.word(idx) else {
                    fault!(RuntimeError::OutOfPacket { offset, index: idx });
                };
                stats.packet_fetches += 1;
                stack[depth - 1] = v;
            }
        }

        // Then the binary operator.
        if instr.op.pops() {
            if depth < 2 {
                fault!(RuntimeError::StackUnderflow { offset });
            }
            let t1 = stack[depth - 1];
            let t2 = stack[depth - 2];
            depth -= 2;
            match apply_op(instr.op, t2, t1, config.short_circuit) {
                Ok(OpOutcome::Push(r)) => {
                    stack[depth] = r;
                    depth += 1;
                }
                Ok(OpOutcome::NoPush) => {}
                Ok(OpOutcome::Terminate(v)) => {
                    stats.short_circuited = true;
                    return (v, stats);
                }
                Err(kind) => {
                    let e = match kind {
                        OpFault::DivideByZero => RuntimeError::DivideByZero { offset },
                    };
                    fault!(e);
                }
            }
        }
    }

    // "If the value remaining on top of the stack is non-zero, the filter is
    // deemed to have accepted the packet." An empty stack rejects.
    let accept = depth > 0 && stack[depth - 1] != 0;
    (accept, stats)
}

/// Faults an operator can raise.
enum OpFault {
    DivideByZero,
}

fn apply_op(
    op: BinaryOp,
    t2: u16,
    t1: u16,
    style: ShortCircuitStyle,
) -> Result<OpOutcome, OpFault> {
    fn b(v: bool) -> u16 {
        u16::from(v)
    }
    Ok(match op {
        BinaryOp::Nop => unreachable!("NOP does not pop"),
        BinaryOp::Eq => OpOutcome::Push(b(t2 == t1)),
        BinaryOp::Neq => OpOutcome::Push(b(t2 != t1)),
        BinaryOp::Lt => OpOutcome::Push(b(t2 < t1)),
        BinaryOp::Le => OpOutcome::Push(b(t2 <= t1)),
        BinaryOp::Gt => OpOutcome::Push(b(t2 > t1)),
        BinaryOp::Ge => OpOutcome::Push(b(t2 >= t1)),
        BinaryOp::And => OpOutcome::Push(t2 & t1),
        BinaryOp::Or => OpOutcome::Push(t2 | t1),
        BinaryOp::Xor => OpOutcome::Push(t2 ^ t1),
        BinaryOp::Cor | BinaryOp::Cand | BinaryOp::Cnor | BinaryOp::Cnand => {
            let r = t2 == t1;
            let (terminate_when, verdict) = op.short_circuit_rule().expect("short-circuit op");
            if r == terminate_when {
                OpOutcome::Terminate(verdict)
            } else {
                match style {
                    ShortCircuitStyle::Paper => OpOutcome::Push(b(r)),
                    ShortCircuitStyle::Historical => OpOutcome::NoPush,
                }
            }
        }
        BinaryOp::Add => OpOutcome::Push(t2.wrapping_add(t1)),
        BinaryOp::Sub => OpOutcome::Push(t2.wrapping_sub(t1)),
        BinaryOp::Mul => OpOutcome::Push(t2.wrapping_mul(t1)),
        BinaryOp::Div => {
            if t1 == 0 {
                return Err(OpFault::DivideByZero);
            }
            OpOutcome::Push(t2 / t1)
        }
        BinaryOp::Mod => {
            if t1 == 0 {
                return Err(OpFault::DivideByZero);
            }
            OpOutcome::Push(t2 % t1)
        }
        BinaryOp::Lsh => OpOutcome::Push(t2 << (t1 & 0xF)),
        BinaryOp::Rsh => OpOutcome::Push(t2 >> (t1 & 0xF)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;
    use crate::samples;

    fn interp() -> CheckedInterpreter {
        CheckedInterpreter::default()
    }

    fn eval_on(prog: &FilterProgram, bytes: &[u8]) -> bool {
        interp().eval(prog, PacketView::new(bytes))
    }

    #[test]
    fn empty_program_accepts_everything() {
        // Historical semantics: a zero-length filter accepts all packets.
        let f = FilterProgram::empty(10);
        assert!(eval_on(&f, &[1, 2, 3, 4]));
        assert!(eval_on(&f, &[]));
    }

    #[test]
    fn pushone_accepts_everything() {
        let f = Assembler::new(10).pushone().finish();
        assert!(eval_on(&f, &[]));
        assert!(eval_on(&f, &[0; 64]));
    }

    #[test]
    fn pushzero_rejects_everything() {
        let f = Assembler::new(10).pushzero().finish();
        assert!(!eval_on(&f, &[1, 2]));
    }

    #[test]
    fn top_of_stack_nonzero_accepts() {
        // Any non-zero top-of-stack value accepts, not just 1.
        let f = Assembler::new(10).pushlit(0xBEEF).finish();
        assert!(eval_on(&f, &[]));
    }

    #[test]
    fn comparisons_are_unsigned() {
        // 0x8000 > 0x0001 unsigned (would be negative signed).
        let f = Assembler::new(10)
            .pushlit(0x8000)
            .pushlit_op(BinaryOp::Gt, 1)
            .finish();
        assert!(eval_on(&f, &[]));
    }

    #[test]
    fn each_comparison_op() {
        let cases = [
            (BinaryOp::Eq, 5u16, 5u16, true),
            (BinaryOp::Eq, 5, 6, false),
            (BinaryOp::Neq, 5, 6, true),
            (BinaryOp::Neq, 5, 5, false),
            (BinaryOp::Lt, 4, 5, true),
            (BinaryOp::Lt, 5, 5, false),
            (BinaryOp::Le, 5, 5, true),
            (BinaryOp::Le, 6, 5, false),
            (BinaryOp::Gt, 6, 5, true),
            (BinaryOp::Gt, 5, 5, false),
            (BinaryOp::Ge, 5, 5, true),
            (BinaryOp::Ge, 4, 5, false),
        ];
        for (op, t2, t1, expect) in cases {
            let f = Assembler::new(0).pushlit(t2).pushlit_op(op, t1).finish();
            assert_eq!(eval_on(&f, &[]), expect, "{t2} {op} {t1}");
        }
    }

    #[test]
    fn bitwise_ops() {
        // AND is bitwise: 0x0F0F & 0x00FF = 0x000F (non-zero: accept).
        let f = Assembler::new(0)
            .pushlit(0x0F0F)
            .push_op(StackAction::Push00FF, BinaryOp::And)
            .finish();
        assert!(eval_on(&f, &[]));
        // 0xFF00 & 0x00FF = 0 (reject) — bitwise, not logical.
        let f = Assembler::new(0)
            .push(StackAction::PushFF00)
            .push_op(StackAction::Push00FF, BinaryOp::And)
            .finish();
        assert!(!eval_on(&f, &[]));
        // XOR of equal values = 0.
        let f = Assembler::new(0)
            .pushlit(0xAAAA)
            .pushlit_op(BinaryOp::Xor, 0xAAAA)
            .finish();
        assert!(!eval_on(&f, &[]));
        // OR.
        let f = Assembler::new(0)
            .pushzero()
            .pushlit_op(BinaryOp::Or, 0x10)
            .finish();
        assert!(eval_on(&f, &[]));
    }

    #[test]
    fn masking_idiom_from_fig_3_8() {
        // Word value 0x1234; PUSH00FF | AND extracts 0x34.
        let f = Assembler::new(0)
            .pushword(0)
            .push_op(StackAction::Push00FF, BinaryOp::And)
            .pushlit_op(BinaryOp::Eq, 0x34)
            .finish();
        assert!(eval_on(&f, &[0x12, 0x34]));
        assert!(!eval_on(&f, &[0x12, 0x35]));
    }

    #[test]
    fn pushword_reads_packet() {
        let f = Assembler::new(0)
            .pushword(1)
            .pushlit_op(BinaryOp::Eq, 0x0203)
            .finish();
        assert!(eval_on(&f, &[0x00, 0x01, 0x02, 0x03]));
        assert!(!eval_on(&f, &[0x00, 0x01, 0x02, 0x04]));
    }

    #[test]
    fn out_of_packet_rejects_with_error() {
        let f = Assembler::new(0).pushword(5).finish();
        let (accept, stats) = interp().eval_with_stats(&f, PacketView::new(&[0; 4]));
        assert!(!accept);
        assert_eq!(
            stats.error,
            Some(RuntimeError::OutOfPacket {
                offset: 0,
                index: 5
            })
        );
    }

    #[test]
    fn stack_underflow_rejects() {
        let f = Assembler::new(0).op(BinaryOp::And).finish();
        let (accept, stats) = interp().eval_with_stats(&f, PacketView::new(&[]));
        assert!(!accept);
        assert!(matches!(
            stats.error,
            Some(RuntimeError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn stack_overflow_rejects() {
        let mut a = Assembler::new(0);
        for _ in 0..=STACK_SIZE {
            a = a.pushone();
        }
        let (accept, stats) = interp().eval_with_stats(&a.finish(), PacketView::new(&[]));
        assert!(!accept);
        assert!(matches!(
            stats.error,
            Some(RuntimeError::StackOverflow { .. })
        ));
    }

    #[test]
    fn missing_literal_rejects() {
        let f = Assembler::new(0).push(StackAction::PushLit).finish();
        let (accept, stats) = interp().eval_with_stats(&f, PacketView::new(&[]));
        assert!(!accept);
        assert!(matches!(
            stats.error,
            Some(RuntimeError::MissingLiteral { offset: 0 })
        ));
    }

    #[test]
    fn bad_instruction_rejects() {
        let f = FilterProgram::from_words(0, vec![15 << 6]);
        let (accept, stats) = interp().eval_with_stats(&f, PacketView::new(&[]));
        assert!(!accept);
        assert!(matches!(
            stats.error,
            Some(RuntimeError::BadInstruction { .. })
        ));
    }

    #[test]
    fn fig_3_8_semantics() {
        // Accepts Pup packets (type == 2) with 0 < PupType <= 100.
        let f = samples::fig_3_8_pup_type_range();
        for (ptype, pup_type, expect) in [
            (2u16, 1u8, true),
            (2, 100, true),
            (2, 50, true),
            (2, 0, false),
            (2, 101, false),
            (3, 50, false),
        ] {
            let pkt = samples::pup_packet_3mb_typed(ptype, pup_type, 0, 35, 1);
            assert_eq!(
                eval_on(&f, &pkt),
                expect,
                "ethertype={ptype} puptype={pup_type}"
            );
        }
    }

    #[test]
    fn fig_3_9_semantics() {
        let f = samples::fig_3_9_pup_socket_35();
        // DstSocket == 35 and type == Pup: accept.
        assert!(eval_on(&f, &samples::pup_packet_3mb(2, 0, 35, 1)));
        // Wrong low word of socket: reject (via CAND short-circuit).
        assert!(!eval_on(&f, &samples::pup_packet_3mb(2, 0, 36, 1)));
        // Wrong high word of socket: reject.
        assert!(!eval_on(&f, &samples::pup_packet_3mb(2, 1, 35, 1)));
        // Right socket, wrong type: reject at final EQ.
        assert!(!eval_on(&f, &samples::pup_packet_3mb(3, 0, 35, 1)));
    }

    #[test]
    fn fig_3_9_short_circuits_on_wrong_socket() {
        let f = samples::fig_3_9_pup_socket_35();
        let pkt = samples::pup_packet_3mb(2, 0, 36, 1);
        let (accept, stats) = interp().eval_with_stats(&f, PacketView::new(&pkt));
        assert!(!accept);
        assert!(stats.short_circuited);
        // Only the first two instructions ran (PUSHWORD+8, PUSHLIT|CAND).
        assert_eq!(stats.instructions, 2);
    }

    #[test]
    fn short_circuit_styles_agree_on_paper_filters() {
        let paper = CheckedInterpreter::new(InterpConfig {
            short_circuit: ShortCircuitStyle::Paper,
            ..Default::default()
        });
        let hist = CheckedInterpreter::new(InterpConfig {
            short_circuit: ShortCircuitStyle::Historical,
            ..Default::default()
        });
        let f = samples::fig_3_9_pup_socket_35();
        for pkt in [
            samples::pup_packet_3mb(2, 0, 35, 1),
            samples::pup_packet_3mb(2, 0, 36, 1),
            samples::pup_packet_3mb(3, 0, 35, 1),
        ] {
            assert_eq!(
                paper.eval(&f, PacketView::new(&pkt)),
                hist.eval(&f, PacketView::new(&pkt))
            );
        }
    }

    #[test]
    fn cor_terminates_true_on_match() {
        let f = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 0x1111)
            .pushzero() // only reached when word0 != 0x1111
            .finish();
        assert!(eval_on(&f, &[0x11, 0x11]));
        assert!(!eval_on(&f, &[0x22, 0x22]));
    }

    #[test]
    fn cnor_terminates_false_on_match() {
        let f = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cnor, 0x1111)
            .pushone() // only reached when word0 != 0x1111
            .finish();
        assert!(!eval_on(&f, &[0x11, 0x11]));
        assert!(eval_on(&f, &[0x22, 0x22]));
    }

    #[test]
    fn cnand_terminates_true_on_mismatch() {
        let f = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cnand, 0x1111)
            .pushzero() // only reached when word0 == 0x1111
            .finish();
        assert!(eval_on(&f, &[0x22, 0x22]));
        assert!(!eval_on(&f, &[0x11, 0x11]));
    }

    #[test]
    fn extended_rejected_in_classic_dialect() {
        let f = Assembler::new(0)
            .pushlit(2)
            .pushlit_op(BinaryOp::Add, 3)
            .finish();
        let (accept, stats) = interp().eval_with_stats(&f, PacketView::new(&[]));
        assert!(!accept);
        assert!(matches!(
            stats.error,
            Some(RuntimeError::ExtendedInstruction { .. })
        ));
        assert!(CheckedInterpreter::extended().eval(&f, PacketView::new(&[])));
    }

    #[test]
    fn extended_arithmetic() {
        let x = CheckedInterpreter::extended();
        let cases = [
            (BinaryOp::Add, 2u16, 3u16, 5u16),
            (BinaryOp::Sub, 7, 3, 4),
            (BinaryOp::Sub, 3, 7, 0xFFFC), // wrapping
            (BinaryOp::Mul, 6, 7, 42),
            (BinaryOp::Div, 42, 6, 7),
            (BinaryOp::Mod, 43, 6, 1),
            (BinaryOp::Lsh, 1, 4, 16),
            (BinaryOp::Rsh, 0x0100, 8, 1),
        ];
        for (op, t2, t1, want) in cases {
            let f = Assembler::new(0)
                .pushlit(t2)
                .pushlit_op(op, t1)
                .pushlit_op(BinaryOp::Eq, want)
                .finish();
            assert!(x.eval(&f, PacketView::new(&[])), "{t2} {op} {t1} != {want}");
        }
    }

    #[test]
    fn divide_by_zero_rejects() {
        let x = CheckedInterpreter::extended();
        let f = Assembler::new(0)
            .pushlit(4)
            .pushzero_op(BinaryOp::Div)
            .finish();
        let (accept, stats) = x.eval_with_stats(&f, PacketView::new(&[]));
        assert!(!accept);
        assert!(matches!(
            stats.error,
            Some(RuntimeError::DivideByZero { .. })
        ));
    }

    #[test]
    fn indirect_push() {
        // Word 0 holds an index; PUSHIND loads the word it names.
        let x = CheckedInterpreter::extended();
        let f = Assembler::new(0)
            .pushword(0)
            .push(StackAction::PushInd)
            .pushlit_op(BinaryOp::Eq, 0xCAFE)
            .finish();
        // Packet: word0 = 2, word1 = junk, word2 = 0xCAFE.
        assert!(x.eval(&f, PacketView::new(&[0, 2, 0, 0, 0xCA, 0xFE])));
        assert!(!x.eval(&f, PacketView::new(&[0, 1, 0, 0, 0xCA, 0xFE])));
        // Index past packet end: reject.
        assert!(!x.eval(&f, PacketView::new(&[0, 9, 0, 0, 0xCA, 0xFE])));
    }

    #[test]
    fn indirect_push_on_empty_stack_underflows() {
        let x = CheckedInterpreter::extended();
        let f = Assembler::new(0).push(StackAction::PushInd).finish();
        let (accept, stats) = x.eval_with_stats(&f, PacketView::new(&[0, 0]));
        assert!(!accept);
        assert!(matches!(
            stats.error,
            Some(RuntimeError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn nop_is_inert() {
        let f = Assembler::new(0).pushone().op(BinaryOp::Nop).finish();
        assert!(eval_on(&f, &[]));
    }

    #[test]
    fn budget_rejects_overlong_evaluation() {
        let f = samples::fig_3_8_pup_type_range(); // 10 instructions
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        let (accept, stats) = interp().eval_budgeted(&f, PacketView::new(&pkt), 5);
        assert!(!accept);
        assert_eq!(stats.error, Some(RuntimeError::BudgetExceeded { limit: 5 }));
        assert_eq!(
            stats.instructions, 6,
            "stopped at the first over-budget word"
        );
    }

    #[test]
    fn budget_large_enough_is_invisible() {
        let f = samples::fig_3_8_pup_type_range();
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        let (unbounded, s0) = interp().eval_with_stats(&f, PacketView::new(&pkt));
        let (bounded, s1) = interp().eval_budgeted(&f, PacketView::new(&pkt), 10);
        assert_eq!(unbounded, bounded);
        assert_eq!(s0, s1);
    }

    #[test]
    fn budget_counts_executed_not_static_instructions() {
        // Short-circuits before the budget is reached: accepted even though
        // the program is statically longer than the budget.
        let f = samples::fig_3_9_pup_socket_35();
        let pkt = samples::pup_packet_3mb(2, 0, 36, 1); // CAND rejects at instr 2
        let (accept, stats) = interp().eval_budgeted(&f, PacketView::new(&pkt), 3);
        assert!(!accept);
        assert!(stats.short_circuited, "terminated by CAND, not the budget");
        assert_eq!(stats.error, None);
    }

    #[test]
    fn stats_count_instructions_and_literals() {
        let f = samples::fig_3_8_pup_type_range();
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        let (accept, stats) = interp().eval_with_stats(&f, PacketView::new(&pkt));
        assert!(accept);
        assert_eq!(stats.instructions, 10);
        assert_eq!(stats.literal_fetches, 2);
        assert_eq!(stats.words_executed(), 12);
        assert_eq!(stats.packet_fetches, 3);
        assert!(!stats.short_circuited);
        assert_eq!(stats.error, None);
    }
}
