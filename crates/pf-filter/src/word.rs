//! Instruction-word encoding for the packet-filter language.
//!
//! A filter program is an array of 16-bit words (figure 3-6 of the paper).
//! Each word is normally an *instruction* with two fields:
//!
//! ```text
//!         10 bits              6 bits
//!   +------------------+----------------+
//!   |  Binary Operator |  Stack Action  |
//!   +------------------+----------------+
//! ```
//!
//! A [`StackAction`] may push a constant or a word of the received packet
//! onto the evaluation stack; a [`BinaryOp`] pops the top two words and
//! pushes a result. The stack action executes *first*, then the binary
//! operator — this matches the paper's examples, where
//! `PUSHLIT | EQ, 2` pushes the literal `2` and then compares.
//!
//! If the stack action is [`StackAction::PushLit`], the *following* word of
//! the program is the literal constant to push, and is not itself decoded as
//! an instruction.
//!
//! The numeric encodings below are this crate's canonical dialect. They
//! follow the field layout of the paper exactly; the concrete opcode numbers
//! of the historical 4.3BSD `enet.h` differed slightly and are not part of
//! any stable interface the paper defines.

use core::fmt;

/// Number of bits in the stack-action field (the low bits of a word).
pub const STACK_ACTION_BITS: u32 = 6;

/// Bit mask selecting the stack-action field.
pub const STACK_ACTION_MASK: u16 = (1 << STACK_ACTION_BITS) - 1;

/// First stack-action code used by `PUSHWORD+n` (so `n = code - PUSHWORD_BASE`).
pub const PUSHWORD_BASE: u16 = 16;

/// Largest packet-word index expressible by `PUSHWORD+n` (6-bit field).
pub const MAX_PUSHWORD_INDEX: u16 = STACK_ACTION_MASK - PUSHWORD_BASE; // 47

/// The stack-action field of an instruction word.
///
/// Executed before the instruction's [`BinaryOp`]. Every variant except
/// [`StackAction::NoPush`] pushes exactly one 16-bit word on the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackAction {
    /// Push nothing.
    NoPush,
    /// Push the literal constant stored in the following program word.
    PushLit,
    /// Push the constant `0`.
    PushZero,
    /// Push the constant `1`.
    PushOne,
    /// Push the constant `0xFFFF`.
    PushFFFF,
    /// Push the constant `0xFF00`.
    PushFF00,
    /// Push the constant `0x00FF`.
    Push00FF,
    /// *Extended dialect* (§7): pop the top of stack and push the packet
    /// word it indexes ("indirect push", for variable-format headers).
    PushInd,
    /// Push the `n`th 16-bit word of the received packet (`PUSHWORD+n`).
    PushWord(u8),
}

impl StackAction {
    /// Decodes a stack-action field value.
    ///
    /// Returns `None` for reserved encodings.
    pub fn decode(code: u16) -> Option<Self> {
        Some(match code {
            0 => StackAction::NoPush,
            1 => StackAction::PushLit,
            2 => StackAction::PushZero,
            3 => StackAction::PushOne,
            4 => StackAction::PushFFFF,
            5 => StackAction::PushFF00,
            6 => StackAction::Push00FF,
            7 => StackAction::PushInd,
            PUSHWORD_BASE..=STACK_ACTION_MASK => {
                StackAction::PushWord((code - PUSHWORD_BASE) as u8)
            }
            _ => return None,
        })
    }

    /// Encodes this stack action into its 6-bit field value.
    ///
    /// # Panics
    ///
    /// Panics if a [`StackAction::PushWord`] index exceeds
    /// [`MAX_PUSHWORD_INDEX`]; use [`StackAction::try_encode`] for a fallible
    /// version.
    pub fn encode(self) -> u16 {
        self.try_encode()
            .expect("PUSHWORD index out of range for 6-bit stack-action field")
    }

    /// Encodes this stack action, returning `None` if a
    /// [`StackAction::PushWord`] index does not fit the 6-bit field.
    pub fn try_encode(self) -> Option<u16> {
        Some(match self {
            StackAction::NoPush => 0,
            StackAction::PushLit => 1,
            StackAction::PushZero => 2,
            StackAction::PushOne => 3,
            StackAction::PushFFFF => 4,
            StackAction::PushFF00 => 5,
            StackAction::Push00FF => 6,
            StackAction::PushInd => 7,
            StackAction::PushWord(n) => {
                if u16::from(n) > MAX_PUSHWORD_INDEX {
                    return None;
                }
                PUSHWORD_BASE + u16::from(n)
            }
        })
    }

    /// Whether this action pushes a word on the stack.
    pub fn pushes(self) -> bool {
        !matches!(self, StackAction::NoPush)
    }

    /// Whether this action consumes the following program word as a literal.
    pub fn takes_literal(self) -> bool {
        matches!(self, StackAction::PushLit)
    }

    /// Whether this action belongs to the extended (§7) dialect only.
    pub fn is_extended(self) -> bool {
        matches!(self, StackAction::PushInd)
    }
}

impl fmt::Display for StackAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackAction::NoPush => write!(f, "NOPUSH"),
            StackAction::PushLit => write!(f, "PUSHLIT"),
            StackAction::PushZero => write!(f, "PUSHZERO"),
            StackAction::PushOne => write!(f, "PUSHONE"),
            StackAction::PushFFFF => write!(f, "PUSHFFFF"),
            StackAction::PushFF00 => write!(f, "PUSHFF00"),
            StackAction::Push00FF => write!(f, "PUSH00FF"),
            StackAction::PushInd => write!(f, "PUSHIND"),
            StackAction::PushWord(n) => write!(f, "PUSHWORD+{n}"),
        }
    }
}

/// The binary-operator field of an instruction word.
///
/// All operators except [`BinaryOp::Nop`] pop the top two stack words —
/// `T1` (top) and `T2` (below it) — and push one result `R`.
///
/// Comparison operators push `1` for TRUE and `0` for FALSE, comparing the
/// words as unsigned 16-bit integers (`R := T2 < T1` for `LT`, etc.).
///
/// `AND`, `OR` and `XOR` are *bitwise* — this is what makes the masking
/// idiom of figure 3-8 (`PUSH00FF | AND` to extract a byte-wide field) work.
/// For the purpose of *accepting* a packet, any non-zero value is TRUE.
///
/// The four short-circuit operators (`COR`, `CAND`, `CNOR`, `CNAND`) all
/// evaluate `R := (T2 == T1)` and then either terminate the whole filter
/// immediately with a fixed verdict, or push `R` and continue:
///
/// | operator | terminates with | when `R` is |
/// |----------|-----------------|-------------|
/// | `COR`    | accept          | TRUE        |
/// | `CAND`   | reject          | FALSE       |
/// | `CNOR`   | reject          | TRUE        |
/// | `CNAND`  | accept          | FALSE       |
///
/// The arithmetic and shift operators belong to the extended (§7) dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// No effect on the stack.
    Nop,
    /// `R := (T2 == T1)`.
    Eq,
    /// `R := (T2 != T1)`.
    Neq,
    /// `R := (T2 < T1)`, unsigned.
    Lt,
    /// `R := (T2 <= T1)`, unsigned.
    Le,
    /// `R := (T2 > T1)`, unsigned.
    Gt,
    /// `R := (T2 >= T1)`, unsigned.
    Ge,
    /// `R := T2 & T1` (bitwise).
    And,
    /// `R := T2 | T1` (bitwise).
    Or,
    /// `R := T2 ^ T1` (bitwise).
    Xor,
    /// Short-circuit OR: accept immediately if `T2 == T1`.
    Cor,
    /// Short-circuit AND: reject immediately if `T2 != T1`.
    Cand,
    /// Short-circuit NOR: reject immediately if `T2 == T1`.
    Cnor,
    /// Short-circuit NAND: accept immediately if `T2 != T1`.
    Cnand,
    /// *Extended* (§7): `R := T2 + T1` (wrapping).
    Add,
    /// *Extended* (§7): `R := T2 - T1` (wrapping).
    Sub,
    /// *Extended* (§7): `R := T2 * T1` (wrapping).
    Mul,
    /// *Extended* (§7): `R := T2 / T1`; division by zero is a runtime error.
    Div,
    /// *Extended* (§7): `R := T2 % T1`; division by zero is a runtime error.
    Mod,
    /// *Extended* (§7): `R := T2 << T1` (shift count masked to 0–15).
    Lsh,
    /// *Extended* (§7): `R := T2 >> T1` (shift count masked to 0–15).
    Rsh,
}

impl BinaryOp {
    /// Decodes a binary-operator field value.
    ///
    /// Returns `None` for reserved encodings.
    pub fn decode(code: u16) -> Option<Self> {
        Some(match code {
            0 => BinaryOp::Nop,
            1 => BinaryOp::Eq,
            2 => BinaryOp::Neq,
            3 => BinaryOp::Lt,
            4 => BinaryOp::Le,
            5 => BinaryOp::Gt,
            6 => BinaryOp::Ge,
            7 => BinaryOp::And,
            8 => BinaryOp::Or,
            9 => BinaryOp::Xor,
            10 => BinaryOp::Cor,
            11 => BinaryOp::Cand,
            12 => BinaryOp::Cnor,
            13 => BinaryOp::Cnand,
            16 => BinaryOp::Add,
            17 => BinaryOp::Sub,
            18 => BinaryOp::Mul,
            19 => BinaryOp::Div,
            20 => BinaryOp::Mod,
            21 => BinaryOp::Lsh,
            22 => BinaryOp::Rsh,
            _ => return None,
        })
    }

    /// Encodes this operator into its 10-bit field value.
    pub fn encode(self) -> u16 {
        match self {
            BinaryOp::Nop => 0,
            BinaryOp::Eq => 1,
            BinaryOp::Neq => 2,
            BinaryOp::Lt => 3,
            BinaryOp::Le => 4,
            BinaryOp::Gt => 5,
            BinaryOp::Ge => 6,
            BinaryOp::And => 7,
            BinaryOp::Or => 8,
            BinaryOp::Xor => 9,
            BinaryOp::Cor => 10,
            BinaryOp::Cand => 11,
            BinaryOp::Cnor => 12,
            BinaryOp::Cnand => 13,
            BinaryOp::Add => 16,
            BinaryOp::Sub => 17,
            BinaryOp::Mul => 18,
            BinaryOp::Div => 19,
            BinaryOp::Mod => 20,
            BinaryOp::Lsh => 21,
            BinaryOp::Rsh => 22,
        }
    }

    /// Whether this operator pops two words (i.e. is not `NOP`).
    pub fn pops(self) -> bool {
        !matches!(self, BinaryOp::Nop)
    }

    /// Whether this is one of the four short-circuit operators.
    pub fn is_short_circuit(self) -> bool {
        matches!(
            self,
            BinaryOp::Cor | BinaryOp::Cand | BinaryOp::Cnor | BinaryOp::Cnand
        )
    }

    /// Whether this operator belongs to the extended (§7) dialect only.
    pub fn is_extended(self) -> bool {
        matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Mod
                | BinaryOp::Lsh
                | BinaryOp::Rsh
        )
    }

    /// For a short-circuit operator, returns `(terminate_when, verdict)`:
    /// the filter terminates with `verdict` when `R == terminate_when`.
    ///
    /// Returns `None` for non-short-circuit operators.
    pub fn short_circuit_rule(self) -> Option<(bool, bool)> {
        Some(match self {
            BinaryOp::Cor => (true, true),
            BinaryOp::Cand => (false, false),
            BinaryOp::Cnor => (true, false),
            BinaryOp::Cnand => (false, true),
            _ => return None,
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Nop => "NOP",
            BinaryOp::Eq => "EQ",
            BinaryOp::Neq => "NEQ",
            BinaryOp::Lt => "LT",
            BinaryOp::Le => "LE",
            BinaryOp::Gt => "GT",
            BinaryOp::Ge => "GE",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Xor => "XOR",
            BinaryOp::Cor => "COR",
            BinaryOp::Cand => "CAND",
            BinaryOp::Cnor => "CNOR",
            BinaryOp::Cnand => "CNAND",
            BinaryOp::Add => "ADD",
            BinaryOp::Sub => "SUB",
            BinaryOp::Mul => "MUL",
            BinaryOp::Div => "DIV",
            BinaryOp::Mod => "MOD",
            BinaryOp::Lsh => "LSH",
            BinaryOp::Rsh => "RSH",
        };
        f.write_str(s)
    }
}

/// A decoded instruction word: one stack action plus one binary operator.
///
/// # Examples
///
/// ```
/// use pf_filter::word::{BinaryOp, Instr, StackAction};
///
/// // `PUSHWORD+1` with no operator, as in figure 3-8.
/// let i = Instr::new(StackAction::PushWord(1), BinaryOp::Nop);
/// let w = i.encode();
/// assert_eq!(Instr::decode(w), Some(i));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The stack action, executed first.
    pub action: StackAction,
    /// The binary operator, executed after the stack action.
    pub op: BinaryOp,
}

impl Instr {
    /// Creates an instruction from its two fields.
    pub fn new(action: StackAction, op: BinaryOp) -> Self {
        Instr { action, op }
    }

    /// An instruction that only performs a stack action.
    pub fn push(action: StackAction) -> Self {
        Instr::new(action, BinaryOp::Nop)
    }

    /// An instruction that only performs a binary operation.
    pub fn op(op: BinaryOp) -> Self {
        Instr::new(StackAction::NoPush, op)
    }

    /// Decodes an instruction word; `None` if either field is reserved.
    pub fn decode(word: u16) -> Option<Self> {
        let action = StackAction::decode(word & STACK_ACTION_MASK)?;
        let op = BinaryOp::decode(word >> STACK_ACTION_BITS)?;
        Some(Instr { action, op })
    }

    /// Encodes this instruction into a 16-bit word.
    pub fn encode(self) -> u16 {
        (self.op.encode() << STACK_ACTION_BITS) | self.action.encode()
    }

    /// Whether this instruction consumes the next program word as a literal.
    pub fn takes_literal(self) -> bool {
        self.action.takes_literal()
    }

    /// Whether this instruction uses any extended-dialect feature.
    pub fn is_extended(self) -> bool {
        self.action.is_extended() || self.op.is_extended()
    }

    /// Net change in stack depth produced by this instruction.
    ///
    /// `PushInd` pops one and pushes one, so its net effect is the
    /// operator's alone.
    pub fn stack_delta(self) -> i32 {
        let mut d = 0i32;
        match self.action {
            StackAction::NoPush => {}
            StackAction::PushInd => {} // pops one index, pushes one value
            _ => d += 1,
        }
        if self.op.pops() {
            d -= 1; // pop two, push one
        }
        d
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.action, self.op) {
            (a, BinaryOp::Nop) => write!(f, "{a}"),
            (StackAction::NoPush, op) => write!(f, "{op}"),
            (a, op) => write!(f, "{a} | {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_action_round_trip() {
        let all = [
            StackAction::NoPush,
            StackAction::PushLit,
            StackAction::PushZero,
            StackAction::PushOne,
            StackAction::PushFFFF,
            StackAction::PushFF00,
            StackAction::Push00FF,
            StackAction::PushInd,
            StackAction::PushWord(0),
            StackAction::PushWord(7),
            StackAction::PushWord(47),
        ];
        for a in all {
            assert_eq!(StackAction::decode(a.encode()), Some(a), "{a}");
        }
    }

    #[test]
    fn pushword_range() {
        assert_eq!(StackAction::PushWord(47).try_encode(), Some(63));
        assert_eq!(StackAction::PushWord(48).try_encode(), None);
    }

    #[test]
    #[should_panic(expected = "PUSHWORD index out of range")]
    fn pushword_encode_panics_out_of_range() {
        let _ = StackAction::PushWord(48).encode();
    }

    #[test]
    fn reserved_stack_actions_decode_to_none() {
        for code in 8..PUSHWORD_BASE {
            assert_eq!(StackAction::decode(code), None, "code {code}");
        }
    }

    #[test]
    fn binary_op_round_trip() {
        for code in 0u16..1024 {
            if let Some(op) = BinaryOp::decode(code) {
                assert_eq!(op.encode(), code);
            }
        }
    }

    #[test]
    fn reserved_binary_ops() {
        assert_eq!(BinaryOp::decode(14), None);
        assert_eq!(BinaryOp::decode(15), None);
        assert_eq!(BinaryOp::decode(23), None);
        assert_eq!(BinaryOp::decode(1023), None);
    }

    #[test]
    fn instr_round_trip() {
        let i = Instr::new(StackAction::Push00FF, BinaryOp::And);
        assert_eq!(Instr::decode(i.encode()), Some(i));
        let i = Instr::new(StackAction::PushWord(3), BinaryOp::Cand);
        assert_eq!(Instr::decode(i.encode()), Some(i));
    }

    #[test]
    fn instr_field_layout_matches_paper() {
        // Low 6 bits stack action, high 10 bits operator.
        let i = Instr::new(StackAction::PushLit, BinaryOp::Eq);
        let w = i.encode();
        assert_eq!(w & STACK_ACTION_MASK, 1);
        assert_eq!(w >> STACK_ACTION_BITS, 1);
    }

    #[test]
    fn short_circuit_rules_match_paper_table() {
        assert_eq!(BinaryOp::Cor.short_circuit_rule(), Some((true, true)));
        assert_eq!(BinaryOp::Cand.short_circuit_rule(), Some((false, false)));
        assert_eq!(BinaryOp::Cnor.short_circuit_rule(), Some((true, false)));
        assert_eq!(BinaryOp::Cnand.short_circuit_rule(), Some((false, true)));
        assert_eq!(BinaryOp::Eq.short_circuit_rule(), None);
    }

    #[test]
    fn stack_delta() {
        assert_eq!(Instr::push(StackAction::PushZero).stack_delta(), 1);
        assert_eq!(Instr::op(BinaryOp::And).stack_delta(), -1);
        assert_eq!(
            Instr::new(StackAction::PushLit, BinaryOp::Eq).stack_delta(),
            0
        );
        assert_eq!(Instr::push(StackAction::PushInd).stack_delta(), 0);
        assert_eq!(Instr::op(BinaryOp::Nop).stack_delta(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::push(StackAction::PushWord(3)).to_string(),
            "PUSHWORD+3"
        );
        assert_eq!(Instr::op(BinaryOp::And).to_string(), "AND");
        assert_eq!(
            Instr::new(StackAction::PushLit, BinaryOp::Eq).to_string(),
            "PUSHLIT | EQ"
        );
    }

    #[test]
    fn extended_classification() {
        assert!(Instr::push(StackAction::PushInd).is_extended());
        assert!(Instr::op(BinaryOp::Add).is_extended());
        assert!(!Instr::new(StackAction::PushLit, BinaryOp::Cand).is_extended());
    }
}
