//! Compatibility with the historical 4.3BSD/ULTRIX `enet.h` encoding.
//!
//! The paper's `struct enfilter` examples (figures 3-8 and 3-9) were
//! written against the CMU/Stanford header, whose concrete opcode numbers
//! differ from this crate's canonical dialect (the *field layout* — 10-bit
//! operator over 6-bit stack action — is the same). This module translates
//! filter words between the two, so historical filters can be loaded
//! verbatim and filters built here can be exported for comparison against
//! archived traces.
//!
//! Historical encoding (from `enet.h` / ULTRIX `packetfilter(4)`):
//!
//! ```text
//! stack actions: ENF_NOPUSH=0, ENF_PUSHLIT=1, ENF_PUSHZERO=2,
//!                ENF_PUSHWORD=16 (+n)
//!                (ENF_PUSHONE/FFFF/FF00/00FF at 3..6, as here)
//! operators:     ENF_NOP=(0<<6), ENF_EQ=(1<<6), ENF_LT=(2<<6),
//!                ENF_LE=(3<<6), ENF_GT=(4<<6), ENF_GE=(5<<6),
//!                ENF_AND=(6<<6), ENF_OR=(7<<6), ENF_XOR=(8<<6),
//!                ENF_COR=(9<<6), ENF_CAND=(10<<6), ENF_CNOR=(11<<6),
//!                ENF_CNAND=(12<<6), ENF_NEQ=(13<<6)
//! ```
//!
//! The differences are confined to operator numbering: historically `NEQ`
//! came *last* (13) and the comparisons started at 2.

use crate::error::ValidateError;
use crate::program::FilterProgram;
use crate::word::{BinaryOp, Instr, StackAction, STACK_ACTION_BITS, STACK_ACTION_MASK};

/// Historical operator codes (the `ENF_*` values, pre-shifted right).
fn historical_to_op(code: u16) -> Option<BinaryOp> {
    Some(match code {
        0 => BinaryOp::Nop,
        1 => BinaryOp::Eq,
        2 => BinaryOp::Lt,
        3 => BinaryOp::Le,
        4 => BinaryOp::Gt,
        5 => BinaryOp::Ge,
        6 => BinaryOp::And,
        7 => BinaryOp::Or,
        8 => BinaryOp::Xor,
        9 => BinaryOp::Cor,
        10 => BinaryOp::Cand,
        11 => BinaryOp::Cnor,
        12 => BinaryOp::Cnand,
        13 => BinaryOp::Neq,
        _ => return None,
    })
}

fn op_to_historical(op: BinaryOp) -> Option<u16> {
    Some(match op {
        BinaryOp::Nop => 0,
        BinaryOp::Eq => 1,
        BinaryOp::Lt => 2,
        BinaryOp::Le => 3,
        BinaryOp::Gt => 4,
        BinaryOp::Ge => 5,
        BinaryOp::And => 6,
        BinaryOp::Or => 7,
        BinaryOp::Xor => 8,
        BinaryOp::Cor => 9,
        BinaryOp::Cand => 10,
        BinaryOp::Cnor => 11,
        BinaryOp::Cnand => 12,
        BinaryOp::Neq => 13,
        // The §7 extensions postdate the historical header.
        _ => return None,
    })
}

/// Historical stack-action codes. Identical to ours except that the
/// historical header had no `PUSHIND` (code 7 was reserved).
fn historical_to_action(code: u16) -> Option<StackAction> {
    match code {
        7 => None, // reserved historically
        _ => StackAction::decode(code),
    }
}

/// An error translating a historical filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompatError {
    /// A word used a reserved historical encoding.
    BadWord {
        /// Word offset.
        offset: usize,
        /// The raw word.
        word: u16,
    },
    /// The translated program failed validation.
    Invalid(ValidateError),
}

impl core::fmt::Display for CompatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompatError::BadWord { offset, word } => {
                write!(
                    f,
                    "undecodable historical word {word:#06x} at offset {offset}"
                )
            }
            CompatError::Invalid(e) => write!(f, "translated filter invalid: {e}"),
        }
    }
}

impl std::error::Error for CompatError {}

/// Imports a historical `struct enfilter` (priority + instruction words)
/// into the canonical dialect.
///
/// # Errors
///
/// Returns [`CompatError::BadWord`] for reserved historical encodings, or
/// [`CompatError::Invalid`] if the result fails bind-time validation.
pub fn import_enfilter(priority: u8, words: &[u16]) -> Result<FilterProgram, CompatError> {
    let mut out = Vec::with_capacity(words.len());
    let mut i = 0usize;
    while i < words.len() {
        let w = words[i];
        let action_code = w & STACK_ACTION_MASK;
        let op_code = w >> STACK_ACTION_BITS;
        let action =
            historical_to_action(action_code).ok_or(CompatError::BadWord { offset: i, word: w })?;
        let op = historical_to_op(op_code).ok_or(CompatError::BadWord { offset: i, word: w })?;
        out.push(Instr::new(action, op).encode());
        i += 1;
        if action.takes_literal() {
            if let Some(&lit) = words.get(i) {
                out.push(lit);
                i += 1;
            }
            // A trailing PUSHLIT is left for validation to reject.
        }
    }
    let program = FilterProgram::from_words(priority, out);
    crate::validate::ValidatedProgram::new(program.clone()).map_err(CompatError::Invalid)?;
    Ok(program)
}

/// Exports a canonical program as historical `enfilter` words.
///
/// Returns `None` if the program uses §7 extensions (which the historical
/// header cannot express) or contains undecodable words.
pub fn export_enfilter(program: &FilterProgram) -> Option<Vec<u16>> {
    let words = program.words();
    let mut out = Vec::with_capacity(words.len());
    let mut i = 0usize;
    while i < words.len() {
        let instr = Instr::decode(words[i])?;
        if instr.is_extended() {
            return None;
        }
        let op = op_to_historical(instr.op)?;
        out.push((op << STACK_ACTION_BITS) | instr.action.encode());
        i += 1;
        if instr.takes_literal() {
            out.push(*words.get(i)?);
            i += 1;
        }
    }
    Some(out)
}

/// Historical `ENF_*` constants, for writing figure-3-8-style literals in
/// tests and documentation.
pub mod enf {
    /// `ENF_NOPUSH`
    pub const NOPUSH: u16 = 0;
    /// `ENF_PUSHLIT`
    pub const PUSHLIT: u16 = 1;
    /// `ENF_PUSHZERO`
    pub const PUSHZERO: u16 = 2;
    /// `ENF_PUSHONE`
    pub const PUSHONE: u16 = 3;
    /// `ENF_PUSHFFFF`
    pub const PUSHFFFF: u16 = 4;
    /// `ENF_PUSHFF00`
    pub const PUSHFF00: u16 = 5;
    /// `ENF_PUSH00FF`
    pub const PUSH00FF: u16 = 6;
    /// `ENF_PUSHWORD` (add the word index)
    pub const PUSHWORD: u16 = 16;
    /// `ENF_NOP`
    pub const NOP: u16 = 0 << 6;
    /// `ENF_EQ`
    pub const EQ: u16 = 1 << 6;
    /// `ENF_LT`
    pub const LT: u16 = 2 << 6;
    /// `ENF_LE`
    pub const LE: u16 = 3 << 6;
    /// `ENF_GT`
    pub const GT: u16 = 4 << 6;
    /// `ENF_GE`
    pub const GE: u16 = 5 << 6;
    /// `ENF_AND`
    pub const AND: u16 = 6 << 6;
    /// `ENF_OR`
    pub const OR: u16 = 7 << 6;
    /// `ENF_XOR`
    pub const XOR: u16 = 8 << 6;
    /// `ENF_COR`
    pub const COR: u16 = 9 << 6;
    /// `ENF_CAND`
    pub const CAND: u16 = 10 << 6;
    /// `ENF_CNOR`
    pub const CNOR: u16 = 11 << 6;
    /// `ENF_CNAND`
    pub const CNAND: u16 = 12 << 6;
    /// `ENF_NEQ`
    pub const NEQ: u16 = 13 << 6;
}

#[cfg(test)]
mod tests {
    use super::enf::*;
    use super::*;
    use crate::interp::CheckedInterpreter;
    use crate::packet::PacketView;
    use crate::samples;

    /// Figure 3-8 typed exactly as the paper prints it, in historical
    /// constants.
    fn paper_fig_3_8() -> Vec<u16> {
        vec![
            PUSHWORD + 1,
            PUSHLIT | EQ,
            2,
            PUSHWORD + 3,
            PUSH00FF | AND,
            PUSHZERO | GT,
            PUSHWORD + 3,
            PUSH00FF | AND,
            PUSHLIT | LE,
            100,
            AND,
            AND,
        ]
    }

    /// Figure 3-9, ditto.
    fn paper_fig_3_9() -> Vec<u16> {
        vec![
            PUSHWORD + 8,
            PUSHLIT | CAND,
            35,
            PUSHWORD + 7,
            PUSHZERO | CAND,
            PUSHWORD + 1,
            PUSHLIT | EQ,
            2,
        ]
    }

    #[test]
    fn imported_fig_3_8_behaves_like_the_native_one() {
        let imported = import_enfilter(10, &paper_fig_3_8()).unwrap();
        let native = samples::fig_3_8_pup_type_range();
        let interp = CheckedInterpreter::default();
        for et in [2u16, 3] {
            for ptype in [0u8, 1, 50, 100, 101] {
                let pkt = samples::pup_packet_3mb(et, 0, 35, ptype);
                assert_eq!(
                    interp.eval(&imported, PacketView::new(&pkt)),
                    interp.eval(&native, PacketView::new(&pkt)),
                    "et={et} ptype={ptype}"
                );
            }
        }
    }

    #[test]
    fn imported_fig_3_9_behaves_like_the_native_one() {
        let imported = import_enfilter(10, &paper_fig_3_9()).unwrap();
        let native = samples::fig_3_9_pup_socket_35();
        let interp = CheckedInterpreter::default();
        for (et, hi, lo) in [(2u16, 0u16, 35u16), (2, 0, 36), (2, 1, 35), (3, 0, 35)] {
            let pkt = samples::pup_packet_3mb(et, hi, lo, 1);
            assert_eq!(
                interp.eval(&imported, PacketView::new(&pkt)),
                interp.eval(&native, PacketView::new(&pkt))
            );
        }
    }

    #[test]
    fn paper_lengths_match() {
        // "priority and length" 10, 12 and 10, 8.
        assert_eq!(paper_fig_3_8().len(), 12);
        assert_eq!(paper_fig_3_9().len(), 8);
    }

    #[test]
    fn export_round_trips() {
        for native in [
            samples::fig_3_8_pup_type_range(),
            samples::fig_3_9_pup_socket_35(),
            samples::ethertype_filter(10, 2),
            samples::accept_all(1),
        ] {
            let exported = export_enfilter(&native).expect("classic program exports");
            let back = import_enfilter(native.priority(), &exported).unwrap();
            assert_eq!(back.words(), native.words(), "{native}");
        }
    }

    #[test]
    fn extended_programs_do_not_export() {
        use crate::program::Assembler;
        use crate::word::BinaryOp;
        let p = Assembler::new(0)
            .pushone()
            .pushone()
            .op(BinaryOp::Add)
            .finish();
        assert_eq!(export_enfilter(&p), None);
    }

    #[test]
    fn reserved_historical_words_are_rejected() {
        // Operator code 14 was unassigned historically.
        assert!(matches!(
            import_enfilter(0, &[14 << 6]),
            Err(CompatError::BadWord { offset: 0, .. })
        ));
        // Stack action 7 was reserved (no PUSHIND in 1987).
        assert!(matches!(
            import_enfilter(0, &[7]),
            Err(CompatError::BadWord { offset: 0, .. })
        ));
    }

    #[test]
    fn invalid_translations_are_caught() {
        // A lone AND underflows: imports must validate.
        assert!(matches!(
            import_enfilter(0, &[AND]),
            Err(CompatError::Invalid(_))
        ));
    }
}
