//! Filter compilation to a flat micro-op array.
//!
//! §7 of the paper: "Even more speed could be gained by compiling filters
//! into machine code, at the cost of greatly increased implementation
//! complexity." We stay in safe Rust, so "machine code" here means the
//! next-best thing a portable implementation can do: after bind-time
//! validation ([`crate::validate`]), each filter is lowered once into a
//! dense array of pre-decoded micro-operations with `PUSHLIT` literals
//! folded in, and common three-instruction idioms — *push packet word,
//! push literal, compare* — fused into single micro-ops. Per-packet
//! evaluation then does no instruction decoding, no literal fetches, and no
//! safety checks beyond one up-front packet-length comparison.
//!
//! The Criterion bench `filter_exec` measures this engine against the
//! checked and validated interpreters, reproducing the §7 improvement
//! ladder with real wall-clock numbers.

use crate::error::ValidateError;
use crate::interp;
use crate::packet::PacketView;
use crate::program::FilterProgram;
use crate::validate::ValidatedProgram;
use crate::word::{BinaryOp, Instr, StackAction};

/// A six-way comparison kind for fused compare micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `<` (unsigned)
    Lt,
    /// `<=` (unsigned)
    Le,
    /// `>` (unsigned)
    Gt,
    /// `>=` (unsigned)
    Ge,
}

impl Cmp {
    fn apply(self, t2: u16, t1: u16) -> bool {
        match self {
            Cmp::Eq => t2 == t1,
            Cmp::Neq => t2 != t1,
            Cmp::Lt => t2 < t1,
            Cmp::Le => t2 <= t1,
            Cmp::Gt => t2 > t1,
            Cmp::Ge => t2 >= t1,
        }
    }

    fn from_op(op: BinaryOp) -> Option<Self> {
        Some(match op {
            BinaryOp::Eq => Cmp::Eq,
            BinaryOp::Neq => Cmp::Neq,
            BinaryOp::Lt => Cmp::Lt,
            BinaryOp::Le => Cmp::Le,
            BinaryOp::Gt => Cmp::Gt,
            BinaryOp::Ge => Cmp::Ge,
            _ => return None,
        })
    }
}

/// One pre-decoded micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MicroOp {
    /// Push a constant (literals and the named constants, pre-folded).
    PushConst(u16),
    /// Push packet word `n` (bounds proven by the up-front length check).
    PushWord(u16),
    /// Pop an index, push the packet word it names (dynamic check).
    PushInd,
    /// Pop two, push comparison result.
    Cmp(Cmp),
    /// Pop two, push bitwise AND.
    BitAnd,
    /// Pop two, push bitwise OR.
    BitOr,
    /// Pop two, push bitwise XOR.
    BitXor,
    /// Pop two, compare for equality; terminate with `verdict` when the
    /// result equals `when`, else push the result if `push`.
    Sc {
        when: bool,
        verdict: bool,
        push: bool,
    },
    /// Fused `PUSHWORD+n; PUSHLIT|cmp, lit`: push `(pkt[n] cmp lit)`.
    WordCmpConst { word: u16, lit: u16, cmp: Cmp },
    /// Fused `PUSHWORD+n; PUSHLIT|sc, lit` short-circuit test against a
    /// packet word.
    WordScConst {
        word: u16,
        lit: u16,
        when: bool,
        verdict: bool,
        push: bool,
    },
    /// Pop two, push arithmetic result (extended dialect).
    Add,
    /// See [`MicroOp::Add`].
    Sub,
    /// See [`MicroOp::Add`].
    Mul,
    /// Pop two, divide; reject on zero divisor.
    Div,
    /// Pop two, remainder; reject on zero divisor.
    Mod,
    /// Pop two, shift left by `t1 & 0xF`.
    Lsh,
    /// Pop two, shift right by `t1 & 0xF`.
    Rsh,
}

/// A filter compiled to micro-ops.
///
/// Construct via [`CompiledFilter::compile`] (which validates first) or
/// [`CompiledFilter::from_validated`]. Semantics are identical to the
/// checked interpreter; short packets take the same checked fallback as
/// [`ValidatedProgram::eval`].
///
/// # Examples
///
/// ```
/// use pf_filter::compile::CompiledFilter;
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
///
/// let c = CompiledFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
/// let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
/// assert!(c.eval(PacketView::new(&pkt)));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    validated: ValidatedProgram,
    ops: Vec<MicroOp>,
}

impl CompiledFilter {
    /// Validates (classic dialect, paper short-circuit style) and compiles.
    ///
    /// # Errors
    ///
    /// Returns the validation error if the program is statically defective.
    pub fn compile(program: FilterProgram) -> Result<Self, ValidateError> {
        Ok(Self::from_validated(ValidatedProgram::new(program)?))
    }

    /// Compiles an already-validated program.
    pub fn from_validated(validated: ValidatedProgram) -> Self {
        let ops = lower(&validated);
        CompiledFilter { validated, ops }
    }

    /// The validated program this was compiled from.
    pub fn validated(&self) -> &ValidatedProgram {
        &self.validated
    }

    /// The filter's priority.
    pub fn priority(&self) -> u8 {
        self.validated.priority()
    }

    /// Number of micro-ops after lowering and fusion.
    pub fn micro_ops(&self) -> usize {
        self.ops.len()
    }

    /// Evaluates against a packet; `true` means *accept*.
    pub fn eval(&self, packet: PacketView<'_>) -> bool {
        if packet.word_len() < self.validated.min_packet_words() {
            return interp::eval_words(
                self.validated.config(),
                self.validated.program().words(),
                packet,
            )
            .0;
        }
        self.eval_fast(packet)
    }

    fn eval_fast(&self, packet: PacketView<'_>) -> bool {
        // Zero-length filters accept everything (historical semantics).
        if self.ops.is_empty() && self.validated.program().is_empty() {
            return true;
        }
        let mut stack = [0u16; interp::STACK_SIZE];
        let mut depth = 0usize;

        macro_rules! pop2 {
            () => {{
                let t1 = stack[depth - 1];
                let t2 = stack[depth - 2];
                depth -= 2;
                (t2, t1)
            }};
        }
        macro_rules! push {
            ($v:expr) => {{
                stack[depth] = $v;
                depth += 1;
            }};
        }

        for op in &self.ops {
            match *op {
                MicroOp::PushConst(c) => push!(c),
                MicroOp::PushWord(n) => push!(packet.word(usize::from(n)).unwrap_or(0)),
                MicroOp::PushInd => {
                    let idx = usize::from(stack[depth - 1]);
                    match packet.word(idx) {
                        Some(v) => stack[depth - 1] = v,
                        None => return false,
                    }
                }
                MicroOp::Cmp(c) => {
                    let (t2, t1) = pop2!();
                    push!(u16::from(c.apply(t2, t1)));
                }
                MicroOp::BitAnd => {
                    let (t2, t1) = pop2!();
                    push!(t2 & t1);
                }
                MicroOp::BitOr => {
                    let (t2, t1) = pop2!();
                    push!(t2 | t1);
                }
                MicroOp::BitXor => {
                    let (t2, t1) = pop2!();
                    push!(t2 ^ t1);
                }
                MicroOp::Sc {
                    when,
                    verdict,
                    push,
                } => {
                    let (t2, t1) = pop2!();
                    let r = t2 == t1;
                    if r == when {
                        return verdict;
                    }
                    if push {
                        push!(u16::from(r));
                    }
                }
                MicroOp::WordCmpConst { word, lit, cmp } => {
                    let v = packet.word(usize::from(word)).unwrap_or(0);
                    push!(u16::from(cmp.apply(v, lit)));
                }
                MicroOp::WordScConst {
                    word,
                    lit,
                    when,
                    verdict,
                    push,
                } => {
                    let v = packet.word(usize::from(word)).unwrap_or(0);
                    let r = v == lit;
                    if r == when {
                        return verdict;
                    }
                    if push {
                        push!(u16::from(r));
                    }
                }
                MicroOp::Add => {
                    let (t2, t1) = pop2!();
                    push!(t2.wrapping_add(t1));
                }
                MicroOp::Sub => {
                    let (t2, t1) = pop2!();
                    push!(t2.wrapping_sub(t1));
                }
                MicroOp::Mul => {
                    let (t2, t1) = pop2!();
                    push!(t2.wrapping_mul(t1));
                }
                MicroOp::Div => {
                    let (t2, t1) = pop2!();
                    if t1 == 0 {
                        return false;
                    }
                    push!(t2 / t1);
                }
                MicroOp::Mod => {
                    let (t2, t1) = pop2!();
                    if t1 == 0 {
                        return false;
                    }
                    push!(t2 % t1);
                }
                MicroOp::Lsh => {
                    let (t2, t1) = pop2!();
                    push!(t2 << (t1 & 0xF));
                }
                MicroOp::Rsh => {
                    let (t2, t1) = pop2!();
                    push!(t2 >> (t1 & 0xF));
                }
            }
        }
        depth > 0 && stack[depth - 1] != 0
    }
}

/// Lowers a validated program to micro-ops, fusing the
/// `PUSHWORD; PUSHLIT|op` idiom.
fn lower(validated: &ValidatedProgram) -> Vec<MicroOp> {
    let words = validated.program().words();
    let paper_style = validated.config().short_circuit == crate::interp::ShortCircuitStyle::Paper;
    let mut ops: Vec<MicroOp> = Vec::new();
    let mut pc = 0usize;

    while pc < words.len() {
        let instr = Instr::decode(words[pc]).expect("validated program decodes");
        pc += 1;

        // Stack action.
        match instr.action {
            StackAction::NoPush => {}
            StackAction::PushLit => {
                let lit = words[pc];
                pc += 1;
                ops.push(MicroOp::PushConst(lit));
            }
            StackAction::PushZero => ops.push(MicroOp::PushConst(0)),
            StackAction::PushOne => ops.push(MicroOp::PushConst(1)),
            StackAction::PushFFFF => ops.push(MicroOp::PushConst(0xFFFF)),
            StackAction::PushFF00 => ops.push(MicroOp::PushConst(0xFF00)),
            StackAction::Push00FF => ops.push(MicroOp::PushConst(0x00FF)),
            StackAction::PushWord(n) => ops.push(MicroOp::PushWord(u16::from(n))),
            StackAction::PushInd => ops.push(MicroOp::PushInd),
        }

        // Binary operator, with peephole fusion against the just-emitted
        // pushes: `PushWord(n), PushConst(c), <cmp>` → `WordCmpConst`.
        if instr.op.pops() {
            let fused = try_fuse(&mut ops, instr.op, paper_style);
            if !fused {
                ops.push(match instr.op {
                    BinaryOp::Eq
                    | BinaryOp::Neq
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge => MicroOp::Cmp(Cmp::from_op(instr.op).expect("comparison op")),
                    BinaryOp::And => MicroOp::BitAnd,
                    BinaryOp::Or => MicroOp::BitOr,
                    BinaryOp::Xor => MicroOp::BitXor,
                    BinaryOp::Cor | BinaryOp::Cand | BinaryOp::Cnor | BinaryOp::Cnand => {
                        let (when, verdict) =
                            instr.op.short_circuit_rule().expect("short-circuit op");
                        MicroOp::Sc {
                            when,
                            verdict,
                            push: paper_style,
                        }
                    }
                    BinaryOp::Add => MicroOp::Add,
                    BinaryOp::Sub => MicroOp::Sub,
                    BinaryOp::Mul => MicroOp::Mul,
                    BinaryOp::Div => MicroOp::Div,
                    BinaryOp::Mod => MicroOp::Mod,
                    BinaryOp::Lsh => MicroOp::Lsh,
                    BinaryOp::Rsh => MicroOp::Rsh,
                    BinaryOp::Nop => unreachable!("NOP does not pop"),
                });
            }
        }
    }
    ops
}

/// Attempts to fuse the trailing `PushWord, PushConst` pair with `op`.
/// Returns `true` if a fused micro-op was emitted.
fn try_fuse(ops: &mut Vec<MicroOp>, op: BinaryOp, paper_style: bool) -> bool {
    let n = ops.len();
    if n < 2 {
        return false;
    }
    let (MicroOp::PushWord(word), MicroOp::PushConst(lit)) = (ops[n - 2], ops[n - 1]) else {
        return false;
    };
    if let Some(cmp) = Cmp::from_op(op) {
        ops.truncate(n - 2);
        ops.push(MicroOp::WordCmpConst { word, lit, cmp });
        return true;
    }
    if let Some((when, verdict)) = op.short_circuit_rule() {
        ops.truncate(n - 2);
        ops.push(MicroOp::WordScConst {
            word,
            lit,
            when,
            verdict,
            push: paper_style,
        });
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{CheckedInterpreter, Dialect, InterpConfig};
    use crate::program::Assembler;
    use crate::samples;

    #[test]
    fn matches_checked_on_paper_filters() {
        let checked = CheckedInterpreter::default();
        for f in [
            samples::fig_3_8_pup_type_range(),
            samples::fig_3_9_pup_socket_35(),
            samples::accept_all(1),
            samples::reject_all(1),
            samples::ethertype_filter(1, 2),
        ] {
            let c = CompiledFilter::compile(f.clone()).unwrap();
            for ethertype in [2u16, 3] {
                for sock in [35u16, 36, 0] {
                    for ptype in [0u8, 1, 100, 101] {
                        let pkt = samples::pup_packet_3mb(ethertype, 0, sock, ptype);
                        let view = PacketView::new(&pkt);
                        assert_eq!(checked.eval(&f, view), c.eval(view), "{f}");
                    }
                }
            }
        }
    }

    #[test]
    fn fusion_shrinks_fig_3_9() {
        // Fig 3-9 is three word-vs-literal tests: 6 instructions (8 words)
        // fuse to exactly 3 micro-ops.
        let c = CompiledFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        assert_eq!(c.micro_ops(), 3);
    }

    #[test]
    fn fusion_handles_comparisons() {
        let f = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Gt, 5)
            .finish();
        let c = CompiledFilter::compile(f).unwrap();
        assert_eq!(c.micro_ops(), 1);
        assert!(c.eval(PacketView::new(&[0x00, 0x06])));
        assert!(!c.eval(PacketView::new(&[0x00, 0x05])));
    }

    #[test]
    fn no_fusion_across_non_adjacent_pushes() {
        // PUSHZERO between the word push and the literal push: no fusion.
        let f = Assembler::new(0)
            .pushword(0)
            .pushzero()
            .op(BinaryOp::Or)
            .pushlit_op(BinaryOp::Eq, 0x1234)
            .finish();
        let c = CompiledFilter::compile(f).unwrap();
        assert!(c.eval(PacketView::new(&[0x12, 0x34])));
        assert!(!c.eval(PacketView::new(&[0x12, 0x35])));
    }

    #[test]
    fn short_packet_fallback() {
        let c = CompiledFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        assert!(!c.eval(PacketView::new(&[0x01, 0x02])));
    }

    #[test]
    fn extended_dialect_compiles() {
        let cfg = InterpConfig {
            dialect: Dialect::Extended,
            ..Default::default()
        };
        let f = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Add, 1)
            .pushlit_op(BinaryOp::Eq, 0x1235)
            .finish();
        let v = ValidatedProgram::with_config(f, cfg).unwrap();
        let c = CompiledFilter::from_validated(v);
        assert!(c.eval(PacketView::new(&[0x12, 0x34])));
        assert!(!c.eval(PacketView::new(&[0x12, 0x33])));
    }

    #[test]
    fn fused_short_circuit_terminates() {
        let c = CompiledFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        // Wrong socket low word: the fused CAND must reject.
        let pkt = samples::pup_packet_3mb(2, 0, 99, 1);
        assert!(!c.eval(PacketView::new(&pkt)));
    }

    #[test]
    fn empty_program_accepts() {
        let c = CompiledFilter::compile(FilterProgram::empty(0)).unwrap();
        assert!(c.eval(PacketView::new(&[1, 2])));
        assert_eq!(c.micro_ops(), 0);
    }
}
