//! Error types for filter validation and evaluation.

use core::fmt;

/// A static (bind-time) defect in a filter program.
///
/// The paper's implementation checked these conditions on every instruction
/// during evaluation; §7 observes that, because the language has no branch
/// instructions, they can all be verified once when the filter is bound
/// (except packet-bounds checks for indirect pushes). [`crate::validate`]
/// implements that ahead-of-time verification and reports these errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateError {
    /// The program is longer than [`crate::program::MAX_PROGRAM_WORDS`].
    TooLong {
        /// Number of 16-bit words in the offending program.
        words: usize,
    },
    /// A word decoded to a reserved stack-action or operator encoding.
    BadInstruction {
        /// Word offset of the undecodable instruction.
        offset: usize,
        /// The raw word.
        word: u16,
    },
    /// A `PUSHLIT` at the final program word has no following literal.
    MissingLiteral {
        /// Word offset of the `PUSHLIT` instruction.
        offset: usize,
    },
    /// A binary operator would pop from a stack with fewer than two words.
    StackUnderflow {
        /// Word offset of the offending instruction.
        offset: usize,
        /// Stack depth before the instruction executed.
        depth: usize,
    },
    /// A push would exceed [`crate::interp::STACK_SIZE`].
    StackOverflow {
        /// Word offset of the offending instruction.
        offset: usize,
    },
    /// The instruction uses an extended-dialect feature but the program was
    /// validated for the classic dialect.
    ExtendedInstruction {
        /// Word offset of the offending instruction.
        offset: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::TooLong { words } => {
                write!(f, "filter program too long ({words} words)")
            }
            ValidateError::BadInstruction { offset, word } => {
                write!(f, "undecodable instruction {word:#06x} at word {offset}")
            }
            ValidateError::MissingLiteral { offset } => {
                write!(f, "PUSHLIT at word {offset} has no following literal")
            }
            ValidateError::StackUnderflow { offset, depth } => write!(
                f,
                "operator at word {offset} underflows the stack (depth {depth})"
            ),
            ValidateError::StackOverflow { offset } => {
                write!(f, "push at word {offset} overflows the evaluation stack")
            }
            ValidateError::ExtendedInstruction { offset } => write!(
                f,
                "extended-dialect instruction at word {offset} not allowed in classic dialect"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// A runtime fault during filter evaluation.
///
/// Per §4 of the paper, a fault terminates evaluation and the packet is
/// *rejected* by this filter — faults are never fatal to the demultiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// A word decoded to a reserved encoding (checked interpreter only).
    BadInstruction {
        /// Word offset of the undecodable instruction.
        offset: usize,
        /// The raw word.
        word: u16,
    },
    /// A `PUSHLIT` at the final program word has no following literal.
    MissingLiteral {
        /// Word offset of the `PUSHLIT` instruction.
        offset: usize,
    },
    /// A binary operator popped from a stack with fewer than two words.
    StackUnderflow {
        /// Word offset of the offending instruction.
        offset: usize,
    },
    /// A push exceeded [`crate::interp::STACK_SIZE`].
    StackOverflow {
        /// Word offset of the offending instruction.
        offset: usize,
    },
    /// A `PUSHWORD`/`PUSHIND` referenced a word beyond the packet.
    OutOfPacket {
        /// Word offset of the offending instruction.
        offset: usize,
        /// The packet-word index that was requested.
        index: usize,
    },
    /// Extended-dialect instruction encountered while evaluating classic.
    ExtendedInstruction {
        /// Word offset of the offending instruction.
        offset: usize,
    },
    /// `DIV` or `MOD` with a zero divisor (extended dialect).
    DivideByZero {
        /// Word offset of the offending instruction.
        offset: usize,
    },
    /// Evaluation exceeded the caller-imposed instruction budget.
    BudgetExceeded {
        /// The budget, in instruction words.
        limit: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::BadInstruction { offset, word } => {
                write!(f, "undecodable instruction {word:#06x} at word {offset}")
            }
            RuntimeError::MissingLiteral { offset } => {
                write!(f, "PUSHLIT at word {offset} has no following literal")
            }
            RuntimeError::StackUnderflow { offset } => {
                write!(f, "stack underflow at word {offset}")
            }
            RuntimeError::StackOverflow { offset } => {
                write!(f, "stack overflow at word {offset}")
            }
            RuntimeError::OutOfPacket { offset, index } => write!(
                f,
                "reference to packet word {index} beyond packet end, at word {offset}"
            ),
            RuntimeError::ExtendedInstruction { offset } => write!(
                f,
                "extended-dialect instruction at word {offset} in classic evaluation"
            ),
            RuntimeError::DivideByZero { offset } => {
                write!(f, "division by zero at word {offset}")
            }
            RuntimeError::BudgetExceeded { limit } => {
                write!(f, "evaluation exceeded the {limit}-instruction budget")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ValidateError::BadInstruction {
            offset: 3,
            word: 0x3FF0,
        };
        assert!(e.to_string().contains("0x3ff0"));
        assert!(e.to_string().contains("word 3"));
        let e = RuntimeError::OutOfPacket {
            offset: 1,
            index: 99,
        };
        assert!(e.to_string().contains("99"));
    }
}
