//! The paper's worked examples, as reusable artifacts.
//!
//! Figure 3-7 gives the layout of a Pup packet on the 3 Mbit/s Experimental
//! Ethernet (4-byte data-link header, packet type in the second 16-bit
//! word); figures 3-8 and 3-9 give two filters over that layout. These are
//! used throughout the test suites and benchmarks, exactly as the paper
//! uses them.

use crate::program::{Assembler, FilterProgram};
use crate::word::{BinaryOp, StackAction};

/// Ethernet type code for Pup on the 3 Mbit/s Experimental Ethernet.
pub const PUP_ETHERTYPE_3MB: u16 = 2;

/// Word index of the Ethernet type field (figure 3-7).
pub const WORD_ETHERTYPE: u8 = 1;

/// Word index of the `HopCount | PupType` word (PupType in the low byte).
pub const WORD_PUPTYPE: u8 = 3;

/// Word index of the high half of the Pup destination socket.
pub const WORD_DSTSOCKET_HI: u8 = 7;

/// Word index of the low half of the Pup destination socket.
pub const WORD_DSTSOCKET_LO: u8 = 8;

/// Figure 3-8: accepts all Pup packets with Pup types between 1 and 100.
///
/// ```text
/// struct enfilter f = {
///     10, 12,                       /* priority and length */
///     PUSHWORD+1, PUSHLIT | EQ, 2,  /* packet type == PUP  */
///     PUSHWORD+3, PUSH00FF | AND,   /* mask low byte       */
///     PUSHZERO | GT,                /* PupType > 0         */
///     PUSHWORD+3, PUSH00FF | AND,   /* mask low byte       */
///     PUSHLIT | LE, 100,            /* PupType <= 100      */
///     AND,                          /* 0 < PupType <= 100  */
///     AND                           /* && packet type == PUP */
/// };
/// ```
pub fn fig_3_8_pup_type_range() -> FilterProgram {
    Assembler::new(10)
        .pushword(WORD_ETHERTYPE)
        .pushlit_op(BinaryOp::Eq, PUP_ETHERTYPE_3MB)
        .pushword(WORD_PUPTYPE)
        .push_op(StackAction::Push00FF, BinaryOp::And)
        .pushzero_op(BinaryOp::Gt)
        .pushword(WORD_PUPTYPE)
        .push_op(StackAction::Push00FF, BinaryOp::And)
        .pushlit_op(BinaryOp::Le, 100)
        .op(BinaryOp::And)
        .op(BinaryOp::And)
        .finish()
}

/// Figure 3-9: accepts Pup packets with destination socket 35, testing the
/// socket *before* the type field so the `CAND` short-circuits exit early
/// on the common mismatch.
///
/// ```text
/// struct enfilter f = {
///     10, 8,                          /* priority and length      */
///     PUSHWORD+8, PUSHLIT | CAND, 35, /* low word of socket == 35 */
///     PUSHWORD+7, PUSHZERO | CAND,    /* high word of socket == 0 */
///     PUSHWORD+1, PUSHLIT | EQ, 2     /* packet type == Pup       */
/// };
/// ```
pub fn fig_3_9_pup_socket_35() -> FilterProgram {
    pup_socket_filter(10, 0, 35)
}

/// A figure-3-9-style filter for an arbitrary 32-bit destination socket.
pub fn pup_socket_filter(priority: u8, socket_hi: u16, socket_lo: u16) -> FilterProgram {
    // Zero constants use PUSHZERO, exactly as the paper's figure does for
    // the high socket word ("PUSHWORD+7, PUSHZERO | CAND").
    fn push_cmp(a: Assembler, value: u16, op: BinaryOp) -> Assembler {
        if value == 0 {
            a.pushzero_op(op)
        } else {
            a.pushlit_op(op, value)
        }
    }
    let mut a = Assembler::new(priority).pushword(WORD_DSTSOCKET_LO);
    a = push_cmp(a, socket_lo, BinaryOp::Cand);
    a = a.pushword(WORD_DSTSOCKET_HI);
    a = push_cmp(a, socket_hi, BinaryOp::Cand);
    a.pushword(WORD_ETHERTYPE)
        .pushlit_op(BinaryOp::Eq, PUP_ETHERTYPE_3MB)
        .finish()
}

/// A figure-3-8-style *range* filter: accepts Pup packets whose low
/// destination-socket word lies in `[lo, hi]` (inclusive), guarded by the
/// ethertype test. The shape of a port-range rule — the case the paper's
/// exact-match demultiplexers cannot index and the geometric classifier
/// exists for. Each ordering compare feeds a `CNOR 0` ("reject
/// immediately if the comparison came out false"), so the range is a
/// *required*, early-exiting condition exactly like figure 3-9's CANDs.
pub fn socket_range_filter(priority: u8, lo: u16, hi: u16) -> FilterProgram {
    Assembler::new(priority)
        .pushword(WORD_DSTSOCKET_LO)
        .pushlit_op(BinaryOp::Ge, lo)
        .pushzero_op(BinaryOp::Cnor)
        .pushword(WORD_DSTSOCKET_LO)
        .pushlit_op(BinaryOp::Le, hi)
        .pushzero_op(BinaryOp::Cnor)
        .pushword(WORD_ETHERTYPE)
        .pushlit_op(BinaryOp::Eq, PUP_ETHERTYPE_3MB)
        .finish()
}

/// A filter matching a single data-link type word — the "crude" kernel
/// demultiplexing criterion of §2, expressed in the filter language.
pub fn ethertype_filter(priority: u8, ethertype: u16) -> FilterProgram {
    Assembler::new(priority)
        .pushword(WORD_ETHERTYPE)
        .pushlit_op(BinaryOp::Eq, ethertype)
        .finish()
}

/// A filter that accepts every packet (useful for promiscuous monitoring).
pub fn accept_all(priority: u8) -> FilterProgram {
    Assembler::new(priority).pushone().finish()
}

/// A filter that rejects every packet.
pub fn reject_all(priority: u8) -> FilterProgram {
    Assembler::new(priority).pushzero().finish()
}

/// A synthetic filter of exactly `instructions` instruction words that
/// accepts every packet — used for table 6-10 (cost of interpreting
/// filters of various lengths). Zero instructions yields the empty
/// program, which accepts everything with no interpretation work
/// (historical semantics), exactly the table's zero-length row.
pub fn padded_accept_filter(priority: u8, instructions: usize) -> FilterProgram {
    let mut a = Assembler::new(priority);
    if instructions == 0 {
        return a.finish();
    }
    if instructions == 1 {
        return a.pushone().finish();
    }
    // Pairs of PUSHONE / AND keep the stack shallow at any length.
    a = a.pushone();
    let mut remaining = instructions - 1;
    while remaining >= 2 {
        a = a.pushone().op(BinaryOp::And);
        remaining -= 2;
    }
    if remaining == 1 {
        a = a.op(BinaryOp::Nop);
    }
    a.finish()
}

/// Builds a Pup packet for the 3 Mbit/s Experimental Ethernet, figure 3-7
/// layout, with the given Ethernet type, destination socket and Pup type.
///
/// Fields not parameterized here (hosts, nets, identifier) get fixed,
/// recognizable values; `data` is appended after the 24-byte header.
pub fn pup_packet_3mb_with_data(
    ethertype: u16,
    pup_type: u8,
    dst_socket_hi: u16,
    dst_socket_lo: u16,
    hop_count: u8,
    data: &[u8],
) -> Vec<u8> {
    let length = 22u16 + data.len() as u16; // Pup length: header-after-type + data
    let mut p = Vec::with_capacity(24 + data.len());
    let mut word = |w: u16| {
        p.push((w >> 8) as u8);
        p.push((w & 0xFF) as u8);
    };
    word(0x0102); // word 0: EtherDst=1, EtherSrc=2
    word(ethertype); // word 1: EtherType
    word(length); // word 2: PupLength
    word(u16::from(hop_count) << 8 | u16::from(pup_type)); // word 3
    word(0xBEEF); // words 4-5: PupIdentifier
    word(0x0001);
    word(0x0A0B); // word 6: DstNet=10, DstHost=11
    word(dst_socket_hi); // word 7
    word(dst_socket_lo); // word 8
    word(0x0C0D); // word 9: SrcNet=12, SrcHost=13
    word(0x0000); // words 10-11: SrcSocket
    word(0x0099);
    p.extend_from_slice(data);
    p
}

/// Convenience form of [`pup_packet_3mb_with_data`] with one word of data.
pub fn pup_packet_3mb(
    ethertype: u16,
    dst_socket_hi: u16,
    dst_socket_lo: u16,
    pup_type: u8,
) -> Vec<u8> {
    pup_packet_3mb_with_data(
        ethertype,
        pup_type,
        dst_socket_hi,
        dst_socket_lo,
        1,
        &[0xDD, 0xDD],
    )
}

/// Convenience form with the Pup type listed before the socket, used where
/// the type is the varying parameter.
pub fn pup_packet_3mb_typed(
    ethertype: u16,
    pup_type: u8,
    dst_socket_hi: u16,
    dst_socket_lo: u16,
    hop_count: u8,
) -> Vec<u8> {
    pup_packet_3mb_with_data(
        ethertype,
        pup_type,
        dst_socket_hi,
        dst_socket_lo,
        hop_count,
        &[0xDD, 0xDD],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::CheckedInterpreter;
    use crate::packet::PacketView;

    #[test]
    fn packet_layout_matches_fig_3_7() {
        let p = pup_packet_3mb(2, 7, 35, 42);
        let v = PacketView::new(&p);
        assert_eq!(v.word(usize::from(WORD_ETHERTYPE)), Some(2));
        assert_eq!(
            v.word(usize::from(WORD_PUPTYPE)).map(|w| w & 0xFF),
            Some(42)
        );
        assert_eq!(v.word(usize::from(WORD_DSTSOCKET_HI)), Some(7));
        assert_eq!(v.word(usize::from(WORD_DSTSOCKET_LO)), Some(35));
    }

    #[test]
    fn ethertype_filter_matches_only_type() {
        let i = CheckedInterpreter::default();
        let f = ethertype_filter(10, 2);
        assert!(i.eval(&f, PacketView::new(&pup_packet_3mb(2, 0, 9, 1))));
        assert!(!i.eval(&f, PacketView::new(&pup_packet_3mb(3, 0, 9, 1))));
    }

    #[test]
    fn accept_and_reject_all() {
        let i = CheckedInterpreter::default();
        let pkt = [0u8; 16];
        assert!(i.eval(&accept_all(1), PacketView::new(&pkt)));
        assert!(!i.eval(&reject_all(1), PacketView::new(&pkt)));
    }

    #[test]
    fn padded_filters_have_requested_length_and_accept() {
        let i = CheckedInterpreter::default();
        let pkt = [0u8; 16];
        for n in [1usize, 2, 3, 9, 10, 21, 40] {
            let f = padded_accept_filter(1, n);
            assert_eq!(f.len_instructions(), n, "length {n}");
            assert!(i.eval(&f, PacketView::new(&pkt)), "length {n}");
        }
        assert!(i.eval(&padded_accept_filter(1, 0), PacketView::new(&pkt)));
    }
}
