//! 16-bit-word view of a received packet.
//!
//! The filter language addresses packets as a sequence of 16-bit words
//! (the paper notes this "bias towards 16-bit fields" as an accident of the
//! language's Alto/Pup history). Network byte order is big-endian, so word
//! `n` is built from bytes `2n` (high) and `2n + 1` (low).

/// A borrowed view of a packet as 16-bit big-endian words.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
///
/// let pkt = PacketView::new(&[0x12, 0x34, 0x56, 0x78]);
/// assert_eq!(pkt.word(0), Some(0x1234));
/// assert_eq!(pkt.word(1), Some(0x5678));
/// assert_eq!(pkt.word(2), None);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    bytes: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Wraps a byte slice (a complete packet, including data-link header).
    pub fn new(bytes: &'a [u8]) -> Self {
        PacketView { bytes }
    }

    /// The underlying bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Packet length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of addressable 16-bit words.
    ///
    /// A trailing odd byte still forms an (incomplete) word — see
    /// [`PacketView::word`] — matching a word-oriented data link where the
    /// final byte occupies the high half of the last word.
    pub fn word_len(&self) -> usize {
        self.bytes.len().div_ceil(2)
    }

    /// The `n`th 16-bit word, big-endian, or `None` past the end.
    ///
    /// If the packet has odd length, its final byte is returned as the high
    /// byte of the last word (low byte zero).
    pub fn word(&self, n: usize) -> Option<u16> {
        let hi = *self.bytes.get(n.checked_mul(2)?)?;
        let lo = self.bytes.get(n * 2 + 1).copied().unwrap_or(0);
        Some(u16::from(hi) << 8 | u16::from(lo))
    }

    /// The `n`th byte, or `None` past the end.
    pub fn byte(&self, n: usize) -> Option<u8> {
        self.bytes.get(n).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_words() {
        let p = PacketView::new(&[0xAB, 0xCD, 0x00, 0x01]);
        assert_eq!(p.word(0), Some(0xABCD));
        assert_eq!(p.word(1), Some(0x0001));
        assert_eq!(p.word(2), None);
        assert_eq!(p.word_len(), 2);
    }

    #[test]
    fn odd_length_final_byte_is_high_half() {
        let p = PacketView::new(&[0x11, 0x22, 0x33]);
        assert_eq!(p.word(0), Some(0x1122));
        assert_eq!(p.word(1), Some(0x3300));
        assert_eq!(p.word(2), None);
        assert_eq!(p.word_len(), 2);
    }

    #[test]
    fn empty_packet() {
        let p = PacketView::new(&[]);
        assert!(p.is_empty());
        assert_eq!(p.word(0), None);
        assert_eq!(p.word_len(), 0);
        assert_eq!(p.byte(0), None);
    }

    #[test]
    fn huge_index_does_not_overflow() {
        let p = PacketView::new(&[0u8; 4]);
        assert_eq!(p.word(usize::MAX), None);
        assert_eq!(p.word(usize::MAX / 2), None);
    }

    #[test]
    fn byte_access() {
        let p = PacketView::new(&[9, 8, 7]);
        assert_eq!(p.byte(0), Some(9));
        assert_eq!(p.byte(2), Some(7));
        assert_eq!(p.byte(3), None);
    }
}
