//! Compiling a *set* of active filters into a decision table.
//!
//! §7 of the paper: "Finally, with a redesigned filter language it might be
//! possible to compile the set of active filters into a decision table,
//! which should provide the best possible performance."
//!
//! [`FilterSet`] implements that proposal without redesigning the language:
//! a symbolic analyzer recognizes filters that are conjunctions of
//! *packet-word equals constant* tests — the overwhelmingly common shape in
//! practice (figure 3-9, every demultiplexing filter) — and folds them into
//! hash tables keyed by the tested words. Evaluating a packet then costs
//! one hash probe per distinct *shape* (set of tested word indices) instead
//! of one interpretation per filter. Filters the analyzer cannot convert
//! are kept on a sequential fallback list and interpreted as usual, so the
//! set accepts arbitrary programs and remains observationally identical to
//! priority-ordered sequential interpretation (a property test verifies
//! this).

use crate::interp::{self, InterpConfig};
use crate::packet::PacketView;
use crate::program::FilterProgram;
use crate::word::{BinaryOp, Instr, StackAction};
use std::collections::HashMap;

/// Identifier a caller associates with each filter in the set (a port
/// number, in the kernel's use).
pub type FilterId = u32;

/// A set of active filters compiled into decision tables.
///
/// Filters are applied "in order of decreasing priority" (§3.2); ties
/// break by insertion order, matching the kernel's stable ordering.
///
/// # Examples
///
/// ```
/// use pf_filter::dtree::FilterSet;
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
///
/// let mut set = FilterSet::new();
/// set.insert(7, samples::pup_socket_filter(10, 0, 35));
/// set.insert(9, samples::pup_socket_filter(10, 0, 44));
/// let pkt = samples::pup_packet_3mb(2, 0, 44, 1);
/// assert_eq!(set.first_match(PacketView::new(&pkt)), Some(9));
/// ```
#[derive(Debug, Default)]
pub struct FilterSet {
    /// Monotonic insertion counter for stable tie-breaking.
    next_seq: u64,
    /// Table-compiled filters, grouped by shape.
    shapes: Vec<Shape>,
    /// Filters the analyzer could not convert; interpreted sequentially.
    residual: Vec<Residual>,
    /// All members, for removal and introspection.
    members: HashMap<FilterId, MemberInfo>,
}

/// How a member is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberKind {
    /// Folded into a decision table.
    Table,
    /// Interpreted sequentially.
    Residual,
    /// Statically can never match (contradictory constraints); stored but
    /// never consulted.
    NeverMatches,
}

#[derive(Debug)]
struct MemberInfo {
    kind: MemberKind,
}

/// One decision table: all table-compiled filters that test exactly the
/// word indices in `words`.
#[derive(Debug)]
struct Shape {
    /// Sorted, deduplicated word indices this shape tests.
    words: Vec<u16>,
    /// Constraint values (in `words` order) → matching filters.
    table: HashMap<Vec<u16>, Vec<Entry>>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    id: FilterId,
    priority: u8,
    seq: u64,
}

#[derive(Debug)]
struct Residual {
    id: FilterId,
    priority: u8,
    seq: u64,
    program: FilterProgram,
}

impl FilterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FilterSet::default()
    }

    /// Number of filters in the set.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// How many filters were folded into decision tables.
    pub fn table_compiled(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.kind == MemberKind::Table)
            .count()
    }

    /// Number of distinct shapes (hash probes per packet).
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// How a given filter is executed, if present.
    pub fn member_kind(&self, id: FilterId) -> Option<MemberKind> {
        self.members.get(&id).map(|m| m.kind)
    }

    /// Inserts (or replaces) the filter for `id`.
    pub fn insert(&mut self, id: FilterId, program: FilterProgram) {
        self.remove(id);
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = program.priority();
        let kind = match analyze(&program) {
            Analysis::Conjunction(constraints) => {
                match normalize(constraints) {
                    Some(pairs) => {
                        self.insert_table(Entry { id, priority, seq }, pairs);
                        MemberKind::Table
                    }
                    // Contradictory constraints: never matches anything.
                    None => MemberKind::NeverMatches,
                }
            }
            Analysis::Disjunction(branches) => {
                // One table entry per satisfiable branch; `matches`
                // deduplicates ids so overlapping branches deliver once.
                let mut normalized: Vec<Vec<(u16, u16)>> =
                    branches.into_iter().filter_map(normalize).collect();
                normalized.sort();
                normalized.dedup();
                if normalized.is_empty() {
                    MemberKind::NeverMatches
                } else {
                    for pairs in normalized {
                        self.insert_table(Entry { id, priority, seq }, pairs);
                    }
                    MemberKind::Table
                }
            }
            Analysis::NeverMatches => MemberKind::NeverMatches,
            Analysis::Opaque => {
                self.residual.push(Residual {
                    id,
                    priority,
                    seq,
                    program,
                });
                MemberKind::Residual
            }
        };
        self.members.insert(id, MemberInfo { kind });
    }

    /// Removes the filter for `id`; returns whether it was present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let Some(info) = self.members.remove(&id) else {
            return false;
        };
        match info.kind {
            MemberKind::Residual => self.residual.retain(|r| r.id != id),
            MemberKind::Table => {
                for shape in &mut self.shapes {
                    shape.table.retain(|_, v| {
                        v.retain(|e| e.id != id);
                        !v.is_empty()
                    });
                }
                self.shapes.retain(|s| !s.table.is_empty());
            }
            MemberKind::NeverMatches => {}
        }
        true
    }

    fn insert_table(&mut self, entry: Entry, pairs: Vec<(u16, u16)>) {
        let words: Vec<u16> = pairs.iter().map(|p| p.0).collect();
        let values: Vec<u16> = pairs.iter().map(|p| p.1).collect();
        let shape = match self.shapes.iter_mut().find(|s| s.words == words) {
            Some(s) => s,
            None => {
                self.shapes.push(Shape {
                    words,
                    table: HashMap::new(),
                });
                self.shapes.last_mut().expect("just pushed")
            }
        };
        shape.table.entry(values).or_default().push(entry);
    }

    /// All matching filter ids, highest priority first (ties by insertion
    /// order) — the order the kernel's demultiplexing loop would deliver.
    pub fn matches(&self, packet: PacketView<'_>) -> Vec<FilterId> {
        let mut hits: Vec<(u8, u64, FilterId)> = Vec::new();

        for shape in &self.shapes {
            let mut key = Vec::with_capacity(shape.words.len());
            let mut complete = true;
            for &w in &shape.words {
                match packet.word(usize::from(w)) {
                    Some(v) => key.push(v),
                    None => {
                        // A packet too short for the tested word rejects in
                        // the interpreter too (out-of-packet fault).
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            if let Some(entries) = shape.table.get(&key) {
                hits.extend(entries.iter().map(|e| (e.priority, e.seq, e.id)));
            }
        }

        for r in &self.residual {
            if interp::eval_words(InterpConfig::default(), r.program.words(), packet).0 {
                hits.push((r.priority, r.seq, r.id));
            }
        }

        hits.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        // A disjunctive filter may match through several branches; it still
        // receives the packet once.
        let mut seen = std::collections::HashSet::new();
        hits.into_iter()
            .map(|(_, _, id)| id)
            .filter(|id| seen.insert(*id))
            .collect()
    }

    /// The highest-priority matching filter id, if any.
    pub fn first_match(&self, packet: PacketView<'_>) -> Option<FilterId> {
        // `matches` allocates; a dedicated scan would avoid that, but the
        // dominant cost (hash probes + residual interpretation) is shared.
        self.matches(packet).into_iter().next()
    }

    /// [`Self::matches`] over a batch of packets, shape-major: each shape's
    /// word list is walked once and probed for every packet before moving
    /// to the next shape, so the shape metadata and one key buffer stay
    /// hot across the batch. Returns per-packet id lists identical to
    /// calling `matches` on each packet in turn.
    pub fn matches_batch(&self, packets: &[PacketView<'_>]) -> Vec<Vec<FilterId>> {
        let mut hits: Vec<Vec<(u8, u64, FilterId)>> = vec![Vec::new(); packets.len()];
        let mut key: Vec<u16> = Vec::new();

        for shape in &self.shapes {
            for (p, packet) in packets.iter().enumerate() {
                key.clear();
                let mut complete = true;
                for &w in &shape.words {
                    match packet.word(usize::from(w)) {
                        Some(v) => key.push(v),
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                if let Some(entries) = shape.table.get(key.as_slice()) {
                    hits[p].extend(entries.iter().map(|e| (e.priority, e.seq, e.id)));
                }
            }
        }

        for r in &self.residual {
            for (p, packet) in packets.iter().enumerate() {
                if interp::eval_words(InterpConfig::default(), r.program.words(), *packet).0 {
                    hits[p].push((r.priority, r.seq, r.id));
                }
            }
        }

        hits.into_iter()
            .map(|mut h| {
                // Same stable order and dedup as the scalar path: shapes
                // append before residuals for every packet, so the sort
                // keys and tie-breaks line up exactly.
                h.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut seen = std::collections::HashSet::new();
                h.into_iter()
                    .map(|(_, _, id)| id)
                    .filter(|id| seen.insert(*id))
                    .collect()
            })
            .collect()
    }
}

/// Result of symbolically analyzing a program.
enum Analysis {
    /// Accepts exactly the packets satisfying all `(word, value)` equality
    /// constraints (unnormalized; may repeat or contradict).
    Conjunction(Vec<(u16, u16)>),
    /// Accepts exactly the packets satisfying *any* of the constraint
    /// lists (a `COR` chain, e.g. `type == 2 || type == 6`); each disjunct
    /// gets its own decision-table entry.
    Disjunction(Vec<Vec<(u16, u16)>>),
    /// Statically rejects every packet.
    NeverMatches,
    /// Not convertible; interpret it.
    Opaque,
}

/// Symbolic stack values for the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sym {
    /// A compile-time constant.
    Const(u16),
    /// The value of packet word `n`.
    Word(u16),
    /// A boolean that is TRUE iff all listed `(word, value)` equalities
    /// hold. The empty list is constant TRUE.
    Conj(Vec<(u16, u16)>),
}

/// Symbolically evaluates a program under paper-style short-circuit
/// semantics, recognizing pure conjunctions of word/constant equalities.
fn analyze(program: &FilterProgram) -> Analysis {
    let words = program.words();
    // Zero-length filters accept everything (historical semantics).
    if words.is_empty() {
        return Analysis::Conjunction(Vec::new());
    }
    let mut stack: Vec<Sym> = Vec::new();
    // Equalities implied by continuing past a CAND.
    let mut path: Vec<(u16, u16)> = Vec::new();
    // Alternatives accumulated from continuing past CORs: each would have
    // accepted on its own. Only tracked for pure COR chains (no CANDs).
    let mut alternatives: Vec<Vec<(u16, u16)>> = Vec::new();
    let mut pc = 0usize;

    while pc < words.len() {
        let Some(instr) = Instr::decode(words[pc]) else {
            return Analysis::Opaque;
        };
        pc += 1;
        if instr.is_extended() {
            return Analysis::Opaque;
        }

        match instr.action {
            StackAction::NoPush => {}
            StackAction::PushLit => {
                let Some(&lit) = words.get(pc) else {
                    return Analysis::Opaque;
                };
                pc += 1;
                stack.push(Sym::Const(lit));
            }
            StackAction::PushZero => stack.push(Sym::Const(0)),
            StackAction::PushOne => stack.push(Sym::Const(1)),
            StackAction::PushFFFF => stack.push(Sym::Const(0xFFFF)),
            StackAction::PushFF00 => stack.push(Sym::Const(0xFF00)),
            StackAction::Push00FF => stack.push(Sym::Const(0x00FF)),
            StackAction::PushWord(n) => stack.push(Sym::Word(u16::from(n))),
            StackAction::PushInd => return Analysis::Opaque,
        }

        if instr.op.pops() {
            if stack.len() < 2 {
                return Analysis::Opaque;
            }
            let t1 = stack.pop().expect("len checked");
            let t2 = stack.pop().expect("len checked");
            match instr.op {
                BinaryOp::Eq => match eq_test(&t2, &t1) {
                    Some(sym) => stack.push(sym),
                    None => return Analysis::Opaque,
                },
                BinaryOp::And => match conj_and(&t2, &t1) {
                    Some(sym) => stack.push(sym),
                    None => return Analysis::Opaque,
                },
                BinaryOp::Cand => {
                    if !alternatives.is_empty() {
                        // Mixed COR/CAND forms stay residual.
                        return Analysis::Opaque;
                    }
                    match eq_test(&t2, &t1) {
                        // Continuing past CAND implies the equality held;
                        // the paper style pushes TRUE.
                        Some(Sym::Conj(cs)) => {
                            path.extend(cs);
                            stack.push(Sym::Const(1));
                        }
                        Some(Sym::Const(0)) => return Analysis::NeverMatches,
                        Some(Sym::Const(_)) => stack.push(Sym::Const(1)),
                        _ => return Analysis::Opaque,
                    }
                }
                BinaryOp::Cor => {
                    if !path.is_empty() {
                        // A COR below CAND path constraints would need
                        // per-branch paths; keep such filters residual.
                        return Analysis::Opaque;
                    }
                    match eq_test(&t2, &t1) {
                        // Terminating accepts on the equality alone;
                        // continuing (paper style) pushes FALSE.
                        Some(Sym::Conj(cs)) => {
                            alternatives.push(cs);
                            stack.push(Sym::Const(0));
                        }
                        // A constant-TRUE COR accepts everything.
                        Some(Sym::Const(c)) if c != 0 => return Analysis::Conjunction(Vec::new()),
                        Some(Sym::Const(_)) => stack.push(Sym::Const(0)),
                        _ => return Analysis::Opaque,
                    }
                }
                _ => return Analysis::Opaque,
            }
        }
    }

    let final_conj = match stack.last() {
        None => None, // empty stack at exit rejects
        Some(Sym::Const(0)) => None,
        Some(Sym::Const(_)) => Some(path.clone()),
        Some(Sym::Conj(cs)) => {
            let mut all = path.clone();
            all.extend(cs.iter().copied());
            Some(all)
        }
        Some(Sym::Word(_)) => return Analysis::Opaque,
    };
    if alternatives.is_empty() {
        match final_conj {
            Some(c) => Analysis::Conjunction(c),
            None => Analysis::NeverMatches,
        }
    } else {
        // Accept if any COR alternative matched, or the final expression
        // does. (With alternatives present, `path` is empty by
        // construction.)
        if let Some(c) = final_conj {
            alternatives.push(c);
        }
        Analysis::Disjunction(alternatives)
    }
}

/// Symbolic `EQ`: word-vs-constant gives a `Conj`, constants fold.
fn eq_test(t2: &Sym, t1: &Sym) -> Option<Sym> {
    Some(match (t2, t1) {
        (Sym::Word(n), Sym::Const(c)) | (Sym::Const(c), Sym::Word(n)) => Sym::Conj(vec![(*n, *c)]),
        (Sym::Const(a), Sym::Const(b)) => Sym::Const(u16::from(a == b)),
        _ => return None,
    })
}

/// Symbolic bitwise `AND` restricted to boolean-valued operands.
fn conj_and(t2: &Sym, t1: &Sym) -> Option<Sym> {
    // Only sound when both sides are known to be 0/1-valued (Conj, or the
    // constants 0/1). Arbitrary constants would make `AND` bit-twiddling.
    fn as_bool(s: &Sym) -> Option<BoolSym> {
        match s {
            Sym::Conj(cs) => Some(BoolSym::Conj(cs.clone())),
            Sym::Const(0) => Some(BoolSym::False),
            Sym::Const(1) => Some(BoolSym::True),
            _ => None,
        }
    }
    enum BoolSym {
        True,
        False,
        Conj(Vec<(u16, u16)>),
    }
    let (a, b) = (as_bool(t2)?, as_bool(t1)?);
    Some(match (a, b) {
        (BoolSym::False, _) | (_, BoolSym::False) => Sym::Const(0),
        (BoolSym::True, BoolSym::True) => Sym::Const(1),
        (BoolSym::True, BoolSym::Conj(c)) | (BoolSym::Conj(c), BoolSym::True) => Sym::Conj(c),
        (BoolSym::Conj(mut c1), BoolSym::Conj(c2)) => {
            c1.extend(c2);
            Sym::Conj(c1)
        }
    })
}

/// Sorts and deduplicates constraints; `None` if contradictory.
fn normalize(mut constraints: Vec<(u16, u16)>) -> Option<Vec<(u16, u16)>> {
    constraints.sort_unstable();
    constraints.dedup();
    for pair in constraints.windows(2) {
        if pair[0].0 == pair[1].0 {
            return None; // same word constrained to two different values
        }
    }
    Some(constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::CheckedInterpreter;
    use crate::program::Assembler;
    use crate::samples;

    /// Reference semantics: priority-ordered sequential interpretation.
    fn sequential_matches(
        filters: &[(FilterId, FilterProgram)],
        packet: PacketView<'_>,
    ) -> Vec<FilterId> {
        let interp = CheckedInterpreter::default();
        let mut hits: Vec<(u8, usize, FilterId)> = filters
            .iter()
            .enumerate()
            .filter(|(_, (_, f))| interp.eval(f, packet))
            .map(|(seq, (id, f))| (f.priority(), seq, *id))
            .collect();
        hits.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        // A disjunctive filter may match through several branches; it still
        // receives the packet once.
        let mut seen = std::collections::HashSet::new();
        hits.into_iter()
            .map(|(_, _, id)| id)
            .filter(|id| seen.insert(*id))
            .collect()
    }

    #[test]
    fn socket_filters_are_table_compiled() {
        let mut set = FilterSet::new();
        for (i, sock) in [35u16, 44, 99].iter().enumerate() {
            set.insert(i as FilterId, samples::pup_socket_filter(10, 0, *sock));
        }
        assert_eq!(set.table_compiled(), 3);
        assert_eq!(set.shape_count(), 1, "same shape shares one table");
        let pkt = samples::pup_packet_3mb(2, 0, 44, 1);
        assert_eq!(set.matches(PacketView::new(&pkt)), vec![1]);
    }

    #[test]
    fn fig_3_8_is_residual() {
        // Range tests cannot go in an equality table.
        let mut set = FilterSet::new();
        set.insert(1, samples::fig_3_8_pup_type_range());
        assert_eq!(set.member_kind(1), Some(MemberKind::Residual));
        let pkt = samples::pup_packet_3mb(2, 0, 35, 50);
        assert_eq!(set.matches(PacketView::new(&pkt)), vec![1]);
    }

    #[test]
    fn reject_all_never_consulted() {
        let mut set = FilterSet::new();
        set.insert(1, samples::reject_all(10));
        assert_eq!(set.member_kind(1), Some(MemberKind::NeverMatches));
        assert!(set.matches(PacketView::new(&[0; 32])).is_empty());
    }

    #[test]
    fn accept_all_matches_everything() {
        let mut set = FilterSet::new();
        set.insert(1, samples::accept_all(10));
        assert_eq!(set.member_kind(1), Some(MemberKind::Table));
        assert_eq!(set.matches(PacketView::new(&[0; 4])), vec![1]);
        assert_eq!(set.matches(PacketView::new(&[])), vec![1]);
    }

    #[test]
    fn priority_orders_matches() {
        let mut set = FilterSet::new();
        set.insert(1, samples::ethertype_filter(5, 2));
        set.insert(2, samples::pup_socket_filter(20, 0, 35)); // higher prio
        set.insert(3, samples::accept_all(1));
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        assert_eq!(set.matches(PacketView::new(&pkt)), vec![2, 1, 3]);
        assert_eq!(set.first_match(PacketView::new(&pkt)), Some(2));
    }

    #[test]
    fn equal_priority_ties_break_by_insertion() {
        let mut set = FilterSet::new();
        set.insert(10, samples::ethertype_filter(5, 2));
        set.insert(11, samples::ethertype_filter(5, 2));
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        assert_eq!(set.matches(PacketView::new(&pkt)), vec![10, 11]);
    }

    #[test]
    fn batch_matches_equals_scalar_matches() {
        // Every member kind at once: table-compiled, residual (range
        // test), never-matches, and a wildcard; packets include matching,
        // non-matching, truncated, and empty frames.
        let mut set = FilterSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        set.insert(2, samples::fig_3_8_pup_type_range());
        set.insert(3, samples::reject_all(10));
        set.insert(4, samples::accept_all(1));
        set.insert(5, samples::ethertype_filter(5, 2));

        let full = samples::pup_packet_3mb(2, 0, 35, 50);
        let miss = samples::pup_packet_3mb(2, 0, 99, 1);
        let truncated = &full[..6];
        let frames: Vec<&[u8]> = vec![&full, &miss, truncated, &[], &[0x00, 0x02]];
        let views: Vec<PacketView<'_>> = frames.iter().map(|f| PacketView::new(f)).collect();

        let batched = set.matches_batch(&views);
        assert_eq!(batched.len(), views.len());
        for (i, v) in views.iter().enumerate() {
            assert_eq!(batched[i], set.matches(*v), "packet {i} diverged");
        }
    }

    #[test]
    fn remove_works_for_both_kinds() {
        let mut set = FilterSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        set.insert(2, samples::fig_3_8_pup_type_range());
        assert!(set.remove(1));
        assert!(set.remove(2));
        assert!(!set.remove(2));
        assert!(set.is_empty());
        assert_eq!(set.shape_count(), 0);
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        assert!(set.matches(PacketView::new(&pkt)).is_empty());
    }

    #[test]
    fn reinsert_replaces() {
        let mut set = FilterSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        set.insert(1, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(set.len(), 1);
        let pkt35 = samples::pup_packet_3mb(2, 0, 35, 1);
        let pkt44 = samples::pup_packet_3mb(2, 0, 44, 1);
        assert!(set.matches(PacketView::new(&pkt35)).is_empty());
        assert_eq!(set.matches(PacketView::new(&pkt44)), vec![1]);
    }

    #[test]
    fn contradictory_constraints_never_match() {
        // word0 == 1 AND word0 == 2.
        let f = Assembler::new(10)
            .pushword(0)
            .pushlit_op(BinaryOp::Cand, 1)
            .pushword(0)
            .pushlit_op(BinaryOp::Eq, 2)
            .finish();
        let mut set = FilterSet::new();
        set.insert(1, f);
        assert_eq!(set.member_kind(1), Some(MemberKind::NeverMatches));
    }

    #[test]
    fn and_combined_equalities_are_table_compiled() {
        // PUSHWORD/EQ pairs joined by trailing ANDs (fig 3-8 style but all
        // equality): still a conjunction.
        let f = Assembler::new(10)
            .pushword(1)
            .pushlit_op(BinaryOp::Eq, 2)
            .pushword(8)
            .pushlit_op(BinaryOp::Eq, 35)
            .op(BinaryOp::And)
            .finish();
        let mut set = FilterSet::new();
        set.insert(1, f.clone());
        assert_eq!(set.member_kind(1), Some(MemberKind::Table));
        for pkt in [
            samples::pup_packet_3mb(2, 0, 35, 1),
            samples::pup_packet_3mb(2, 0, 36, 1),
            samples::pup_packet_3mb(3, 0, 35, 1),
        ] {
            assert_eq!(
                set.matches(PacketView::new(&pkt)),
                sequential_matches(&[(1, f.clone())], PacketView::new(&pkt))
            );
        }
    }

    #[test]
    fn cor_disjunction_is_table_compiled() {
        // type == 2 || type == 6 || type == 8 — the builder's COR chain.
        use crate::builder::Expr;
        let f = Expr::word(1)
            .eq(2)
            .or(Expr::word(1).eq(6))
            .or(Expr::word(1).eq(8))
            .compile(10)
            .unwrap();
        let mut set = FilterSet::new();
        set.insert(1, f.clone());
        assert_eq!(set.member_kind(1), Some(MemberKind::Table));
        for (et, expect) in [(2u16, true), (6, true), (8, true), (7, false)] {
            let pkt = samples::pup_packet_3mb(et, 0, 35, 1);
            assert_eq!(
                set.matches(PacketView::new(&pkt)),
                sequential_matches(&[(1, f.clone())], PacketView::new(&pkt)),
                "ethertype {et}"
            );
            assert_eq!(!set.matches(PacketView::new(&pkt)).is_empty(), expect);
        }
    }

    #[test]
    fn overlapping_disjuncts_deliver_once() {
        // word0 == 1 || word1 == 2: a packet matching both branches still
        // reaches the filter exactly once.
        use crate::builder::Expr;
        let f = Expr::word(0)
            .eq(0x0102)
            .or(Expr::word(1).eq(2))
            .compile(10)
            .unwrap();
        let mut set = FilterSet::new();
        set.insert(1, f);
        let both = [0x01u8, 0x02, 0x00, 0x02];
        assert_eq!(set.matches(PacketView::new(&both)), vec![1]);
    }

    #[test]
    fn mixed_cor_cand_stays_residual() {
        // CAND path constraints under a COR need per-branch paths; such
        // filters must stay on the interpreted fallback (and still work).
        let f = Assembler::new(10)
            .pushword(0)
            .pushlit_op(BinaryOp::Cand, 7)
            .pushword(1)
            .pushlit_op(BinaryOp::Cor, 9)
            .pushword(2)
            .pushlit_op(BinaryOp::Eq, 3)
            .finish();
        let mut set = FilterSet::new();
        set.insert(1, f.clone());
        assert_eq!(set.member_kind(1), Some(MemberKind::Residual));
        for pkt in [
            [0x00u8, 0x07, 0x00, 0x09, 0x00, 0x00],
            [0x00, 0x07, 0x00, 0x08, 0x00, 0x03],
            [0x00, 0x06, 0x00, 0x09, 0x00, 0x03],
        ] {
            assert_eq!(
                set.matches(PacketView::new(&pkt)),
                sequential_matches(&[(1, f.clone())], PacketView::new(&pkt))
            );
        }
    }

    #[test]
    fn short_packets_reject_consistently() {
        let filters = vec![
            (1, samples::pup_socket_filter(10, 0, 35)),
            (2, samples::fig_3_8_pup_type_range()),
        ];
        let mut set = FilterSet::new();
        for (id, f) in &filters {
            set.insert(*id, f.clone());
        }
        let short = [0x01u8, 0x02, 0x00, 0x02]; // 2 words only
        assert_eq!(
            set.matches(PacketView::new(&short)),
            sequential_matches(&filters, PacketView::new(&short))
        );
    }

    #[test]
    fn mixed_set_equivalent_to_sequential() {
        let filters: Vec<(FilterId, FilterProgram)> = vec![
            (1, samples::pup_socket_filter(10, 0, 35)),
            (2, samples::pup_socket_filter(10, 0, 44)),
            (3, samples::fig_3_8_pup_type_range()),
            (4, samples::ethertype_filter(8, 3)),
            (5, samples::accept_all(1)),
            (6, samples::reject_all(30)),
        ];
        let mut set = FilterSet::new();
        for (id, f) in &filters {
            set.insert(*id, f.clone());
        }
        for et in [2u16, 3, 4] {
            for sock in [35u16, 44, 50] {
                for ptype in [0u8, 5, 200] {
                    let pkt = samples::pup_packet_3mb(et, 0, sock, ptype);
                    assert_eq!(
                        set.matches(PacketView::new(&pkt)),
                        sequential_matches(&filters, PacketView::new(&pkt)),
                        "et={et} sock={sock} ptype={ptype}"
                    );
                }
            }
        }
    }
}
