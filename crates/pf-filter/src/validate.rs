//! Bind-time filter validation and the fast (check-free) interpreter.
//!
//! §7 of the paper: "During evaluation of each filter instruction, the
//! interpreter verifies that the instruction is valid, that it doesn't
//! overflow or underflow the evaluation stack, and that it doesn't refer to
//! a field outside the current packet. Since the filter language does not
//! include branching instructions, all these tests can be performed ahead
//! of time (except for indirect-push instructions); this might significantly
//! speed filter evaluation."
//!
//! [`ValidatedProgram`] implements exactly that: binding a filter runs a
//! single linear static analysis (instruction validity, exact stack depths,
//! the maximum packet word referenced), after which per-packet evaluation
//! needs only one packet-length comparison up front. If a packet is too
//! short for the fast path — where the static analysis cannot promise the
//! bounds check — evaluation falls back to the checked interpreter so the
//! two engines are *observationally identical* (a property test in this
//! crate verifies this on arbitrary programs and packets).

use crate::error::ValidateError;
use crate::interp::{self, Dialect, InterpConfig, ShortCircuitStyle, STACK_SIZE};
use crate::packet::PacketView;
use crate::program::{FilterProgram, MAX_PROGRAM_WORDS};
use crate::word::{BinaryOp, Instr, StackAction};

/// A filter program that passed bind-time validation, with the metadata the
/// fast interpreter needs.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
/// use pf_filter::validate::ValidatedProgram;
///
/// let v = ValidatedProgram::new(samples::fig_3_9_pup_socket_35()).unwrap();
/// let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
/// assert!(v.eval(PacketView::new(&pkt)));
/// assert_eq!(v.min_packet_words(), 9); // touches words 1, 7, 8
/// ```
#[derive(Debug, Clone)]
pub struct ValidatedProgram {
    program: FilterProgram,
    config: InterpConfig,
    /// Packet length (in words) below which the fast path cannot run.
    min_packet_words: usize,
    /// Whether the program contains `PUSHIND` (dynamic bounds checks stay).
    uses_indirect: bool,
    /// Whether the program contains `DIV`/`MOD` (dynamic divisor checks stay).
    uses_division: bool,
    /// Maximum stack depth reached (exact; the language has no branches).
    max_stack_depth: usize,
    /// Number of instructions (excluding literal words).
    instructions: usize,
}

impl ValidatedProgram {
    /// Validates `program` for the classic dialect with paper-style
    /// short-circuit continuation.
    ///
    /// # Errors
    ///
    /// Returns the first static defect found, as a [`ValidateError`].
    pub fn new(program: FilterProgram) -> Result<Self, ValidateError> {
        Self::with_config(program, InterpConfig::default())
    }

    /// Validates `program` under an explicit interpreter configuration.
    ///
    /// The configuration matters: the stack-depth analysis depends on the
    /// short-circuit continuation style, and the dialect decides whether
    /// extended instructions are defects.
    ///
    /// # Errors
    ///
    /// Returns the first static defect found, as a [`ValidateError`].
    pub fn with_config(
        program: FilterProgram,
        config: InterpConfig,
    ) -> Result<Self, ValidateError> {
        let words = program.words();
        if words.len() > MAX_PROGRAM_WORDS {
            return Err(ValidateError::TooLong { words: words.len() });
        }

        let mut depth: usize = 0;
        let mut max_depth: usize = 0;
        let mut max_word: Option<usize> = None;
        let mut uses_indirect = false;
        let mut uses_division = false;
        let mut instructions = 0usize;

        let mut pc = 0usize;
        while pc < words.len() {
            let offset = pc;
            let raw = words[pc];
            pc += 1;
            let instr =
                Instr::decode(raw).ok_or(ValidateError::BadInstruction { offset, word: raw })?;
            instructions += 1;
            if config.dialect == Dialect::Classic && instr.is_extended() {
                return Err(ValidateError::ExtendedInstruction { offset });
            }

            // Stack action.
            match instr.action {
                StackAction::NoPush => {}
                StackAction::PushLit => {
                    if pc >= words.len() {
                        return Err(ValidateError::MissingLiteral { offset });
                    }
                    pc += 1;
                    if depth == STACK_SIZE {
                        return Err(ValidateError::StackOverflow { offset });
                    }
                    depth += 1;
                }
                StackAction::PushInd => {
                    if depth == 0 {
                        return Err(ValidateError::StackUnderflow { offset, depth });
                    }
                    uses_indirect = true;
                    // Pops the index, pushes the value: depth unchanged.
                }
                StackAction::PushWord(n) => {
                    if depth == STACK_SIZE {
                        return Err(ValidateError::StackOverflow { offset });
                    }
                    depth += 1;
                    let idx = usize::from(n);
                    max_word = Some(max_word.map_or(idx, |m| m.max(idx)));
                }
                _ => {
                    if depth == STACK_SIZE {
                        return Err(ValidateError::StackOverflow { offset });
                    }
                    depth += 1;
                }
            }
            max_depth = max_depth.max(depth);

            // Binary operator.
            if instr.op.pops() {
                if depth < 2 {
                    return Err(ValidateError::StackUnderflow { offset, depth });
                }
                depth -= 2;
                let continues_with_push = if instr.op.is_short_circuit() {
                    config.short_circuit == ShortCircuitStyle::Paper
                } else {
                    true
                };
                if continues_with_push {
                    depth += 1;
                }
                if matches!(instr.op, BinaryOp::Div | BinaryOp::Mod) {
                    uses_division = true;
                }
            }
        }

        Ok(ValidatedProgram {
            min_packet_words: max_word.map_or(0, |m| m + 1),
            program,
            config,
            uses_indirect,
            uses_division,
            max_stack_depth: max_depth,
            instructions,
        })
    }

    /// The underlying program.
    pub fn program(&self) -> &FilterProgram {
        &self.program
    }

    /// The filter's priority.
    pub fn priority(&self) -> u8 {
        self.program.priority()
    }

    /// The interpreter configuration this program was validated for.
    pub fn config(&self) -> InterpConfig {
        self.config
    }

    /// Minimum packet length (in 16-bit words) for the fast path. Shorter
    /// packets are evaluated via the checked fallback.
    pub fn min_packet_words(&self) -> usize {
        self.min_packet_words
    }

    /// Whether the program uses the extended indirect push.
    pub fn uses_indirect(&self) -> bool {
        self.uses_indirect
    }

    /// Whether the program uses `DIV`/`MOD` (divisor checks stay dynamic).
    pub fn uses_division(&self) -> bool {
        self.uses_division
    }

    /// Exact maximum evaluation-stack depth.
    pub fn max_stack_depth(&self) -> usize {
        self.max_stack_depth
    }

    /// Number of instructions (excluding literal words).
    pub fn instructions(&self) -> usize {
        self.instructions
    }

    /// Evaluates against a packet; `true` means *accept*.
    ///
    /// Runs the check-free inner loop when the packet is long enough for
    /// every static `PUSHWORD`; otherwise falls back to the checked
    /// interpreter (so short packets behave identically to §4's engine).
    /// `PUSHIND` and division keep their dynamic checks in all cases.
    pub fn eval(&self, packet: PacketView<'_>) -> bool {
        if packet.word_len() < self.min_packet_words {
            return interp::eval_words(self.config, self.program.words(), packet).0;
        }
        self.eval_fast(packet)
    }

    /// The check-free inner loop. Requires the packet to satisfy
    /// [`ValidatedProgram::min_packet_words`].
    fn eval_fast(&self, packet: PacketView<'_>) -> bool {
        debug_assert!(packet.word_len() >= self.min_packet_words);
        let words = self.program.words();
        // Zero-length filters accept everything (historical semantics).
        if words.is_empty() {
            return true;
        }
        let mut stack = [0u16; STACK_SIZE];
        let mut depth = 0usize;
        let mut pc = 0usize;
        let paper_style = self.config.short_circuit == ShortCircuitStyle::Paper;

        while pc < words.len() {
            let raw = words[pc];
            pc += 1;
            // Validation proved every word decodes.
            let instr = match Instr::decode(raw) {
                Some(i) => i,
                None => {
                    debug_assert!(false, "validated program failed to decode");
                    return false;
                }
            };

            match instr.action {
                StackAction::NoPush => {}
                StackAction::PushLit => {
                    let lit = words[pc];
                    pc += 1;
                    stack[depth] = lit;
                    depth += 1;
                }
                StackAction::PushZero => {
                    stack[depth] = 0;
                    depth += 1;
                }
                StackAction::PushOne => {
                    stack[depth] = 1;
                    depth += 1;
                }
                StackAction::PushFFFF => {
                    stack[depth] = 0xFFFF;
                    depth += 1;
                }
                StackAction::PushFF00 => {
                    stack[depth] = 0xFF00;
                    depth += 1;
                }
                StackAction::Push00FF => {
                    stack[depth] = 0x00FF;
                    depth += 1;
                }
                StackAction::PushWord(n) => {
                    // Bounds proven by the single up-front length check.
                    stack[depth] = packet.word(usize::from(n)).unwrap_or(0);
                    depth += 1;
                }
                StackAction::PushInd => {
                    // Dynamic index: the one check that cannot be hoisted.
                    let idx = usize::from(stack[depth - 1]);
                    match packet.word(idx) {
                        Some(v) => stack[depth - 1] = v,
                        None => return false,
                    }
                }
            }

            if instr.op.pops() {
                let t1 = stack[depth - 1];
                let t2 = stack[depth - 2];
                depth -= 2;
                let r: u16 = match instr.op {
                    BinaryOp::Eq => u16::from(t2 == t1),
                    BinaryOp::Neq => u16::from(t2 != t1),
                    BinaryOp::Lt => u16::from(t2 < t1),
                    BinaryOp::Le => u16::from(t2 <= t1),
                    BinaryOp::Gt => u16::from(t2 > t1),
                    BinaryOp::Ge => u16::from(t2 >= t1),
                    BinaryOp::And => t2 & t1,
                    BinaryOp::Or => t2 | t1,
                    BinaryOp::Xor => t2 ^ t1,
                    BinaryOp::Cor | BinaryOp::Cand | BinaryOp::Cnor | BinaryOp::Cnand => {
                        let r = t2 == t1;
                        let (when, verdict) =
                            instr.op.short_circuit_rule().expect("short-circuit op");
                        if r == when {
                            return verdict;
                        }
                        if paper_style {
                            stack[depth] = u16::from(r);
                            depth += 1;
                        }
                        continue;
                    }
                    BinaryOp::Add => t2.wrapping_add(t1),
                    BinaryOp::Sub => t2.wrapping_sub(t1),
                    BinaryOp::Mul => t2.wrapping_mul(t1),
                    BinaryOp::Div => {
                        if t1 == 0 {
                            return false;
                        }
                        t2 / t1
                    }
                    BinaryOp::Mod => {
                        if t1 == 0 {
                            return false;
                        }
                        t2 % t1
                    }
                    BinaryOp::Lsh => t2 << (t1 & 0xF),
                    BinaryOp::Rsh => t2 >> (t1 & 0xF),
                    BinaryOp::Nop => unreachable!("NOP does not pop"),
                };
                stack[depth] = r;
                depth += 1;
            }
        }

        depth > 0 && stack[depth - 1] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::CheckedInterpreter;
    use crate::program::Assembler;
    use crate::samples;

    #[test]
    fn validates_paper_examples() {
        for f in [
            samples::fig_3_8_pup_type_range(),
            samples::fig_3_9_pup_socket_35(),
            samples::accept_all(1),
            samples::reject_all(1),
        ] {
            ValidatedProgram::new(f).expect("paper example must validate");
        }
    }

    #[test]
    fn metadata_for_fig_3_9() {
        let v = ValidatedProgram::new(samples::fig_3_9_pup_socket_35()).unwrap();
        assert_eq!(v.min_packet_words(), 9);
        assert!(!v.uses_indirect());
        assert_eq!(v.instructions(), 6);
        // Depth trace (paper style, CAND pushes TRUE when continuing):
        // [w8] [w8,35] -> [1] -> [1,w7] [1,w7,0] -> [1,1] -> [1,1,w1]
        // [1,1,w1,2] -> [1,1,eq]; the maximum is 4.
        assert_eq!(v.max_stack_depth(), 4);
        assert_eq!(v.priority(), 10);
    }

    #[test]
    fn rejects_bad_instruction() {
        let p = FilterProgram::from_words(0, vec![15 << 6]);
        assert!(matches!(
            ValidatedProgram::new(p),
            Err(ValidateError::BadInstruction { offset: 0, .. })
        ));
    }

    #[test]
    fn rejects_underflow() {
        let p = Assembler::new(0).pushone().op(BinaryOp::And).finish();
        assert!(matches!(
            ValidatedProgram::new(p),
            Err(ValidateError::StackUnderflow {
                offset: 1,
                depth: 1
            })
        ));
    }

    #[test]
    fn rejects_overflow() {
        let mut a = Assembler::new(0);
        for _ in 0..=STACK_SIZE {
            a = a.pushone();
        }
        assert!(matches!(
            ValidatedProgram::new(a.finish()),
            Err(ValidateError::StackOverflow { .. })
        ));
    }

    #[test]
    fn rejects_missing_literal() {
        let p = Assembler::new(0).push(StackAction::PushLit).finish();
        assert!(matches!(
            ValidatedProgram::new(p),
            Err(ValidateError::MissingLiteral { offset: 0 })
        ));
    }

    #[test]
    fn rejects_extended_in_classic() {
        let p = Assembler::new(0)
            .pushone()
            .pushone()
            .op(BinaryOp::Add)
            .finish();
        assert!(matches!(
            ValidatedProgram::new(p.clone()),
            Err(ValidateError::ExtendedInstruction { offset: 2 })
        ));
        let cfg = InterpConfig {
            dialect: Dialect::Extended,
            ..Default::default()
        };
        assert!(ValidatedProgram::with_config(p, cfg).is_ok());
    }

    #[test]
    fn depth_analysis_depends_on_short_circuit_style() {
        // After a continuing CAND: Paper leaves one word, Historical zero.
        // The following bare AND then underflows only under Historical...
        // with one fewer word available.
        let p = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cand, 1)
            .pushone()
            .pushone()
            .op(BinaryOp::And)
            .op(BinaryOp::And)
            .finish();
        assert!(ValidatedProgram::new(p.clone()).is_ok());
        let hist = InterpConfig {
            short_circuit: ShortCircuitStyle::Historical,
            ..Default::default()
        };
        assert!(matches!(
            ValidatedProgram::with_config(p, hist),
            Err(ValidateError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn fast_eval_matches_checked_on_paper_filters() {
        let checked = CheckedInterpreter::default();
        for f in [
            samples::fig_3_8_pup_type_range(),
            samples::fig_3_9_pup_socket_35(),
        ] {
            let v = ValidatedProgram::new(f.clone()).unwrap();
            for ethertype in [2u16, 3] {
                for sock in [35u16, 36] {
                    for ptype in [0u8, 1, 50, 100, 101] {
                        let pkt = samples::pup_packet_3mb(ethertype, 0, sock, ptype);
                        let view = PacketView::new(&pkt);
                        assert_eq!(checked.eval(&f, view), v.eval(view));
                    }
                }
            }
        }
    }

    #[test]
    fn short_packet_falls_back_and_matches_checked() {
        let f = samples::fig_3_9_pup_socket_35();
        let v = ValidatedProgram::new(f.clone()).unwrap();
        let checked = CheckedInterpreter::default();
        // 4-byte packet: word 8 is out of bounds; both engines must reject.
        let pkt = [0x01u8, 0x02, 0x00, 0x02];
        let view = PacketView::new(&pkt);
        assert_eq!(checked.eval(&f, view), v.eval(view));
        assert!(!v.eval(view));
    }

    #[test]
    fn short_packet_short_circuit_accept_preserved() {
        // COR accepts before a later out-of-bounds PUSHWORD would fault:
        // the fallback must preserve that acceptance.
        let f = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 0x1111)
            .pushword(40)
            .finish();
        let v = ValidatedProgram::new(f.clone()).unwrap();
        let pkt = [0x11u8, 0x11]; // one word; word 40 would fault
        assert!(v.eval(PacketView::new(&pkt)));
        assert!(CheckedInterpreter::default().eval(&f, PacketView::new(&pkt)));
    }

    #[test]
    fn empty_program_accepts() {
        let v = ValidatedProgram::new(FilterProgram::empty(0)).unwrap();
        assert!(v.eval(PacketView::new(&[1, 2, 3])));
        assert_eq!(v.min_packet_words(), 0);
    }

    #[test]
    fn indirect_is_flagged_and_checked_dynamically() {
        let cfg = InterpConfig {
            dialect: Dialect::Extended,
            ..Default::default()
        };
        let p = Assembler::new(0)
            .pushword(0)
            .push(StackAction::PushInd)
            .pushlit_op(BinaryOp::Eq, 0xCAFE)
            .finish();
        let v = ValidatedProgram::with_config(p, cfg).unwrap();
        assert!(v.uses_indirect());
        assert!(v.eval(PacketView::new(&[0, 2, 0, 0, 0xCA, 0xFE])));
        assert!(!v.eval(PacketView::new(&[0, 99, 0, 0, 0xCA, 0xFE])));
    }

    #[test]
    fn too_long_program_rejected() {
        let words = vec![Instr::push(StackAction::PushZero).encode(); MAX_PROGRAM_WORDS + 1];
        assert!(matches!(
            ValidatedProgram::new(FilterProgram::from_words(0, words)),
            Err(ValidateError::TooLong { .. })
        ));
    }
}
