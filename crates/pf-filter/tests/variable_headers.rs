//! §7's motivating case for the indirect-push extension:
//!
//! "The filter language described in section 3 only allows the user to
//! specify packet fields at constant offsets from the beginning of a
//! packet. This has been adequate for protocols with fixed-format headers
//! (such as Pup), but many network protocols allow variable-format
//! headers. For example, since the IP header may include optional fields,
//! fields in higher layer protocol headers are not at constant offsets."
//!
//! These tests build IP packets whose header length (IHL) varies and show
//! that (a) a classic constant-offset filter for a TCP destination port
//! breaks as soon as IP options appear, while (b) an extended-dialect
//! filter computes the offset at evaluation time with `PUSHIND` and the
//! §7 arithmetic operators, and keeps matching.

use pf_filter::builder::{ArithOp, Expr};
use pf_filter::interp::CheckedInterpreter;
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;

/// Builds a 3 Mb-Ethernet frame carrying an IP packet with `opt_words`
/// 32-bit option words, then a TCP header whose destination port is
/// `dst_port`.
fn ip_tcp_frame(opt_words: usize, dst_port: u16) -> Vec<u8> {
    let mut f = Vec::new();
    // 4-byte experimental-Ethernet header (dst, src, type=0x0800).
    f.extend_from_slice(&[0x0B, 0x0A, 0x08, 0x00]);
    // IP header: version 4, IHL = 5 + options.
    let ihl = 5 + opt_words;
    f.push(0x40 | ihl as u8);
    f.push(0);
    let total = (ihl * 4 + 20) as u16;
    f.extend_from_slice(&total.to_be_bytes());
    f.extend_from_slice(&[0, 0, 0, 0]); // id, frag
    f.push(30); // ttl
    f.push(6); // TCP
    f.extend_from_slice(&[0, 0]); // checksum
    f.extend_from_slice(&10u32.to_be_bytes()); // src ip
    f.extend_from_slice(&11u32.to_be_bytes()); // dst ip
    f.extend_from_slice(&vec![0u8; opt_words * 4]); // options
                                                    // TCP header: src port, dst port, ...
    f.extend_from_slice(&4321u16.to_be_bytes());
    f.extend_from_slice(&dst_port.to_be_bytes());
    f.extend_from_slice(&[0u8; 16]);
    f
}

/// The classic filter: assumes no IP options — the TCP destination port
/// sits at a constant offset (Ethernet word 13: 4 B link + 20 B IP + 2 B
/// src port = byte 26).
fn classic_port_filter(port: u16) -> FilterProgram {
    Expr::word(1)
        .eq(0x0800)
        .and(Expr::word(13).eq(port))
        .compile(10)
        .expect("classic filter compiles")
}

/// The §7 extended filter: reads the IHL nibble, converts it to a word
/// offset, and fetches the port through `PUSHIND`.
///
/// Offset arithmetic (in 16-bit words): the IP header begins at word 2,
/// spans `2 × IHL` words, and the destination port is the second TCP
/// word: `port_word = 2 + 2·IHL + 1`.
fn extended_port_filter(port: u16) -> FilterProgram {
    // IHL = word 2's high byte, low nibble.
    let ihl = Expr::word(2).arith(ArithOp::Rsh, 8).mask(0x0F);
    let port_word = ihl.arith(ArithOp::Mul, 2).arith(ArithOp::Add, 3);
    Expr::word(1)
        .eq(0x0800)
        .and(Expr::word_at(port_word).eq(port))
        .compile_extended(10)
        .expect("extended filter compiles")
}

#[test]
fn classic_filter_works_only_without_options() {
    let interp = CheckedInterpreter::default();
    let f = classic_port_filter(23);
    assert!(
        interp.eval(&f, PacketView::new(&ip_tcp_frame(0, 23))),
        "no options: constant offset is right"
    );
    assert!(!interp.eval(&f, PacketView::new(&ip_tcp_frame(0, 25))));
    // Two option words shift the TCP header: the classic filter now reads
    // option bytes instead of the port and misses its packet.
    assert!(
        !interp.eval(&f, PacketView::new(&ip_tcp_frame(2, 23))),
        "§7: constant-offset filters break on variable-format headers"
    );
}

#[test]
fn extended_filter_tracks_the_moving_header() {
    let interp = CheckedInterpreter::extended();
    let f = extended_port_filter(23);
    for opt_words in [0usize, 1, 2, 5, 10] {
        assert!(
            interp.eval(&f, PacketView::new(&ip_tcp_frame(opt_words, 23))),
            "IHL {} words: indirect push finds the port",
            5 + opt_words
        );
        assert!(
            !interp.eval(&f, PacketView::new(&ip_tcp_frame(opt_words, 24))),
            "IHL {}: and still discriminates",
            5 + opt_words
        );
    }
}

#[test]
fn extended_filter_rejects_truncated_packets_safely() {
    // If the computed offset points past the packet, the filter rejects —
    // the PUSHIND bounds check is the one that cannot be hoisted (§7).
    let interp = CheckedInterpreter::extended();
    let f = extended_port_filter(23);
    let full = ip_tcp_frame(2, 23);
    let truncated = &full[..28]; // chops the TCP header off
    assert!(!interp.eval(&f, PacketView::new(truncated)));
}

#[test]
fn all_engines_agree_on_the_extended_filter() {
    use pf_filter::compile::CompiledFilter;
    use pf_filter::interp::{Dialect, InterpConfig};
    use pf_filter::validate::ValidatedProgram;
    let cfg = InterpConfig {
        dialect: Dialect::Extended,
        ..Default::default()
    };
    let f = extended_port_filter(23);
    let checked = CheckedInterpreter::new(cfg);
    let validated = ValidatedProgram::with_config(f.clone(), cfg).unwrap();
    let compiled = CompiledFilter::from_validated(validated.clone());
    for opt_words in 0..8 {
        for port in [22u16, 23, 24] {
            let pkt = ip_tcp_frame(opt_words, port);
            let view = PacketView::new(&pkt);
            let a = checked.eval(&f, view);
            assert_eq!(a, validated.eval(view));
            assert_eq!(a, compiled.eval(view));
        }
    }
}
