// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the filter language and its execution engines.
//!
//! The central invariant: every execution engine — checked interpreter,
//! validated fast interpreter, compiled micro-ops, and the decision-table
//! filter set — is observationally identical on *arbitrary* programs and
//! packets, and none of them ever panics, even on garbage bytes.

use pf_filter::builder::Expr;
use pf_filter::compile::CompiledFilter;
use pf_filter::dtree::FilterSet;
use pf_filter::interp::{CheckedInterpreter, Dialect, InterpConfig, ShortCircuitStyle};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_filter::validate::ValidatedProgram;
use pf_filter::word::{BinaryOp, Instr, StackAction};
use proptest::prelude::*;

/// Strategy: any stack action, biased toward the common ones.
fn any_stack_action() -> impl Strategy<Value = StackAction> {
    prop_oneof![
        Just(StackAction::NoPush),
        Just(StackAction::PushLit),
        Just(StackAction::PushZero),
        Just(StackAction::PushOne),
        Just(StackAction::PushFFFF),
        Just(StackAction::PushFF00),
        Just(StackAction::Push00FF),
        Just(StackAction::PushInd),
        (0u8..48).prop_map(StackAction::PushWord),
    ]
}

fn any_binary_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Nop),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Xor),
        Just(BinaryOp::Cor),
        Just(BinaryOp::Cand),
        Just(BinaryOp::Cnor),
        Just(BinaryOp::Cnand),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
        Just(BinaryOp::Lsh),
        Just(BinaryOp::Rsh),
    ]
}

/// Strategy: program words built from real instructions and literals, so a
/// useful fraction validates; plus raw-garbage cases below.
fn structured_words() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(
        prop_oneof![
            (any_stack_action(), any_binary_op()).prop_map(|(a, o)| Instr::new(a, o).encode()),
            any::<u16>(), // literals (and occasional garbage)
        ],
        0..40,
    )
}

fn packet_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..128)
}

proptest! {
    /// Instruction words round-trip through decode/encode.
    #[test]
    fn instr_decode_encode_round_trip(word in any::<u16>()) {
        if let Some(i) = Instr::decode(word) {
            prop_assert_eq!(i.encode(), word);
        }
    }

    /// The checked interpreter never panics, in either dialect or
    /// short-circuit style, on arbitrary program words and packets.
    #[test]
    fn checked_interpreter_total(words in structured_words(), pkt in packet_bytes()) {
        for dialect in [Dialect::Classic, Dialect::Extended] {
            for style in [ShortCircuitStyle::Paper, ShortCircuitStyle::Historical] {
                let interp = CheckedInterpreter::new(InterpConfig {
                    dialect,
                    short_circuit: style,
                });
                let prog = FilterProgram::from_words(10, words.clone());
                let _ = interp.eval_with_stats(&prog, PacketView::new(&pkt));
            }
        }
    }

    /// On raw garbage (not even instruction-shaped), nothing panics.
    #[test]
    fn checked_interpreter_total_on_garbage(
        words in prop::collection::vec(any::<u16>(), 0..64),
        pkt in packet_bytes(),
    ) {
        let prog = FilterProgram::from_words(0, words);
        let _ = CheckedInterpreter::extended().eval(&prog, PacketView::new(&pkt));
    }

    /// If a program validates, the fast interpreter and the compiled filter
    /// agree exactly with the checked interpreter on every packet.
    #[test]
    fn engines_agree(words in structured_words(), pkt in packet_bytes()) {
        for dialect in [Dialect::Classic, Dialect::Extended] {
            for style in [ShortCircuitStyle::Paper, ShortCircuitStyle::Historical] {
                let cfg = InterpConfig { dialect, short_circuit: style };
                let prog = FilterProgram::from_words(10, words.clone());
                let Ok(validated) = ValidatedProgram::with_config(prog.clone(), cfg) else {
                    continue;
                };
                let compiled = CompiledFilter::from_validated(validated.clone());
                let checked = CheckedInterpreter::new(cfg).eval(&prog, PacketView::new(&pkt));
                prop_assert_eq!(
                    validated.eval(PacketView::new(&pkt)),
                    checked,
                    "validated vs checked"
                );
                prop_assert_eq!(
                    compiled.eval(PacketView::new(&pkt)),
                    checked,
                    "compiled vs checked"
                );
            }
        }
    }

    /// Validation is sound: a validated classic program never reports a
    /// static-class runtime error (stack or decode faults) when evaluated.
    #[test]
    fn validation_soundness(words in structured_words(), pkt in packet_bytes()) {
        let prog = FilterProgram::from_words(10, words);
        if ValidatedProgram::new(prog.clone()).is_ok() {
            let (_, stats) =
                CheckedInterpreter::default().eval_with_stats(&prog, PacketView::new(&pkt));
            if let Some(e) = stats.error {
                // Only the dynamic packet-bounds fault may remain.
                prop_assert!(
                    matches!(e, pf_filter::RuntimeError::OutOfPacket { .. }),
                    "unexpected post-validation fault: {e}"
                );
            }
        }
    }

    /// The decision-table filter set is equivalent to sequential
    /// priority-ordered interpretation, on mixed (tableable + residual +
    /// garbage) filter populations.
    #[test]
    fn filter_set_equivalent_to_sequential(
        sockets in prop::collection::vec((0u16..4, 30u16..40, 0u8..30), 0..8),
        ethertypes in prop::collection::vec((0u16..6, 0u8..30), 0..4),
        disjunctions in prop::collection::vec(
            (prop::collection::vec(0u16..6, 1..4), 0u8..30),
            0..3,
        ),
        garbage in prop::collection::vec(structured_words(), 0..4),
        include_fig38 in any::<bool>(),
        pkt_ethertype in 0u16..6,
        pkt_sock in 28u16..42,
        pkt_ptype in 0u8..120,
    ) {
        let mut filters: Vec<(u32, FilterProgram)> = Vec::new();
        let mut id = 0u32;
        for (hi, lo, prio) in sockets {
            filters.push((id, samples::pup_socket_filter(prio, hi, lo)));
            id += 1;
        }
        for (et, prio) in ethertypes {
            filters.push((id, samples::ethertype_filter(prio, et)));
            id += 1;
        }
        for (ets, prio) in disjunctions {
            // A COR chain: ethertype ∈ {ets}.
            let mut e = Expr::word(1).eq(ets[0]);
            for &et in &ets[1..] {
                e = e.or(Expr::word(1).eq(et));
            }
            filters.push((id, e.compile(prio).expect("compiles")));
            id += 1;
        }
        for words in garbage {
            filters.push((id, FilterProgram::from_words(7, words)));
            id += 1;
        }
        if include_fig38 {
            filters.push((id, samples::fig_3_8_pup_type_range()));
        }

        let mut set = FilterSet::new();
        for (fid, f) in &filters {
            set.insert(*fid, f.clone());
        }

        let interp = CheckedInterpreter::default();
        let pkt = samples::pup_packet_3mb(pkt_ethertype, 0, pkt_sock, pkt_ptype);
        let view = PacketView::new(&pkt);

        let mut expected: Vec<(u8, usize, u32)> = filters
            .iter()
            .enumerate()
            .filter(|(_, (_, f))| interp.eval(f, view))
            .map(|(seq, (fid, f))| (f.priority(), seq, *fid))
            .collect();
        expected.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let expected: Vec<u32> = expected.into_iter().map(|(_, _, fid)| fid).collect();

        prop_assert_eq!(set.matches(view), expected);
    }
}

/// A bounded random predicate-expression tree plus a direct semantic
/// reference evaluator; compiled output must match the reference when run
/// by the checked interpreter. Packets are long enough (≥ 96 bytes) that
/// no out-of-packet faults can occur, keeping the reference simple.
mod builder_semantics {
    use super::*;

    /// Value-producing expression of bounded depth.
    fn value_expr(depth: u32) -> BoxedStrategy<Expr> {
        if depth == 0 {
            prop_oneof![
                (0u16..48).prop_map(Expr::Word),
                any::<u16>().prop_map(Expr::Lit),
            ]
            .boxed()
        } else {
            let sub = value_expr(depth - 1);
            prop_oneof![
                (0u16..48).prop_map(Expr::Word),
                any::<u16>().prop_map(Expr::Lit),
                (sub.clone(), sub.clone()).prop_map(|(a, b)| a.bitand(b)),
                (sub.clone(), sub.clone()).prop_map(|(a, b)| a.bitor(b)),
                (sub.clone(), sub).prop_map(|(a, b)| Expr::BitXor(Box::new(a), Box::new(b))),
            ]
            .boxed()
        }
    }

    /// Predicate-producing expression of bounded depth.
    fn pred_expr(depth: u32) -> BoxedStrategy<Expr> {
        let vals = value_expr(1);
        let cmp = (vals.clone(), vals, 0u8..6).prop_map(|(a, b, op)| match op {
            0 => a.eq(b),
            1 => a.ne(b),
            2 => a.lt(b),
            3 => a.le(b),
            4 => a.gt(b),
            _ => a.ge(b),
        });
        if depth == 0 {
            cmp.boxed()
        } else {
            let sub = pred_expr(depth - 1);
            prop_oneof![
                cmp,
                (sub.clone(), sub.clone()).prop_map(|(a, b)| a.and(b)),
                (sub.clone(), sub.clone()).prop_map(|(a, b)| a.or(b)),
                sub.prop_map(|a| a.not()),
            ]
            .boxed()
        }
    }

    /// Direct evaluation of a value expression (no faults possible: the
    /// packet covers every addressable word).
    fn eval_value(e: &Expr, pkt: &PacketView<'_>) -> u16 {
        match e {
            Expr::Word(n) => pkt.word(usize::from(*n)).expect("packet long enough"),
            Expr::Lit(v) => *v,
            Expr::BitAnd(a, b) => eval_value(a, pkt) & eval_value(b, pkt),
            Expr::BitOr(a, b) => eval_value(a, pkt) | eval_value(b, pkt),
            Expr::BitXor(a, b) => eval_value(a, pkt) ^ eval_value(b, pkt),
            Expr::Cmp(op, a, b) => {
                let (x, y) = (eval_value(a, pkt), eval_value(b, pkt));
                u16::from(match op {
                    pf_filter::builder::CmpOp::Eq => x == y,
                    pf_filter::builder::CmpOp::Ne => x != y,
                    pf_filter::builder::CmpOp::Lt => x < y,
                    pf_filter::builder::CmpOp::Le => x <= y,
                    pf_filter::builder::CmpOp::Gt => x > y,
                    pf_filter::builder::CmpOp::Ge => x >= y,
                })
            }
            Expr::And(a, b) => u16::from(eval_value(a, pkt) != 0 && eval_value(b, pkt) != 0),
            Expr::Or(a, b) => u16::from(eval_value(a, pkt) != 0 || eval_value(b, pkt) != 0),
            Expr::Not(a) => u16::from(eval_value(a, pkt) == 0),
            Expr::WordAt(_) | Expr::Arith(..) => unreachable!("not generated"),
        }
    }

    proptest! {
        #[test]
        fn compiled_expression_matches_reference(
            e in pred_expr(3),
            pkt in prop::collection::vec(any::<u8>(), 96..160),
            no_sc in any::<bool>(),
        ) {
            let opts = pf_filter::builder::CompileOptions {
                no_short_circuit: no_sc,
                ..Default::default()
            };
            // Deep random trees can exceed program or stack limits; those
            // outcomes are legitimate errors, not semantic failures.
            let Ok(prog) = e.compile_with(10, &opts) else { return Ok(()) };
            let view = PacketView::new(&pkt);
            let expected = eval_value(&e, &view) != 0;
            let got = CheckedInterpreter::default().eval(&prog, view);
            prop_assert_eq!(got, expected, "expr: {:?}\nprogram:\n{}", e, prog);
        }
    }
}

/// Chaos pin: the checked interpreter is total. On *arbitrary* word soup
/// — including every program the validator rejects — and arbitrary
/// packets, `eval` and `eval_budgeted` return a verdict instead of
/// panicking, and a rejecting verdict from the validator never implies
/// anything about runtime behavior beyond "the checked engine still
/// copes". This is the contract the kernel's quarantine path (serve
/// validation-rejected filters via the checked interpreter) stands on.
mod validator_rejects_checked_copes {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn checked_interpreter_never_panics_on_rejected_programs(
            words in prop::collection::vec(any::<u16>(), 0..48),
            pkt in prop::collection::vec(any::<u8>(), 0..160),
            budget in 1u32..64,
        ) {
            let prog = FilterProgram::from_words(10, words);
            let view = PacketView::new(&pkt);
            let interp = CheckedInterpreter::default();
            // Totality: a verdict, never a panic — rejected or not.
            let plain = interp.eval(&prog, view);
            let (budgeted, stats) = interp.eval_budgeted(&prog, view, budget);
            // A budget big enough to cover the whole evaluation is
            // invisible; an exhausted budget rejects.
            if stats.error.is_none() {
                prop_assert_eq!(budgeted, plain);
                prop_assert!(stats.instructions <= budget);
            }
            if ValidatedProgram::new(prog.clone()).is_err() {
                // The quarantine contract: the rejected program still got
                // a checked verdict above. Pin that the *fast* engines
                // refuse it instead of guessing.
                prop_assert!(CompiledFilter::compile(prog.clone()).is_err());
            }
        }
    }
}
