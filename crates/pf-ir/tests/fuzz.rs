// Structured fuzzing for the hostile-input surfaces: the word decoder,
// the validator, every execution engine (including the JIT and its
// fallback path when the `jit` feature is on), and the geometric
// classifier's insert/remove churn. Each target runs >= 10,000 seeded
// iterations, so the suite is slow enough to keep out of the default
// `cargo test` — gate it behind a feature and run it in its own CI lane:
//
//   cargo test -p pf-ir --release --features fuzz-tests
//   cargo test -p pf-ir --release --features "fuzz-tests jit"
//
// Like `tests/differential.rs` these are hermetic proptest-style loops:
// all randomness comes from the in-tree `pf_sim::rng::SplitMix64`, so a
// failure reproduces from the constant seed with no external crates.
#![cfg(feature = "fuzz-tests")]

use pf_filter::interp::{CheckedInterpreter, Dialect, InterpConfig, ShortCircuitStyle};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_filter::validate::ValidatedProgram;
use pf_filter::word::{BinaryOp, Instr, StackAction};
use pf_ir::engine::singleton_engines;
use pf_ir::GeomSet;
use pf_sim::rng::SplitMix64;

const ITERS: u32 = 10_000;

const CONFIGS: [InterpConfig; 4] = [
    InterpConfig {
        dialect: Dialect::Classic,
        short_circuit: ShortCircuitStyle::Paper,
    },
    InterpConfig {
        dialect: Dialect::Classic,
        short_circuit: ShortCircuitStyle::Historical,
    },
    InterpConfig {
        dialect: Dialect::Extended,
        short_circuit: ShortCircuitStyle::Paper,
    },
    InterpConfig {
        dialect: Dialect::Extended,
        short_circuit: ShortCircuitStyle::Historical,
    },
];

/// Raw word soup with a bias toward decodable instructions, so both the
/// reject path and the deep-execution path see real traffic.
fn fuzz_words(rng: &mut SplitMix64) -> Vec<u16> {
    let len = rng.below(48) as usize;
    (0..len)
        .map(|_| {
            if rng.chance(0.25) {
                rng.next_u64() as u16
            } else {
                let action = if rng.chance(0.3) {
                    // Full 6-bit field range (`encode` panics by design
                    // above MAX_PUSHWORD_INDEX; the raw-word arm covers
                    // reserved encodings instead).
                    StackAction::PushWord(rng.below(48) as u8)
                } else {
                    match rng.below(8) {
                        0 => StackAction::NoPush,
                        1 => StackAction::PushLit,
                        2 => StackAction::PushZero,
                        3 => StackAction::PushOne,
                        4 => StackAction::PushFFFF,
                        5 => StackAction::PushFF00,
                        6 => StackAction::Push00FF,
                        _ => StackAction::PushInd,
                    }
                };
                let op = match rng.below(21) {
                    0 => BinaryOp::Nop,
                    1 => BinaryOp::Eq,
                    2 => BinaryOp::Neq,
                    3 => BinaryOp::Lt,
                    4 => BinaryOp::Le,
                    5 => BinaryOp::Gt,
                    6 => BinaryOp::Ge,
                    7 => BinaryOp::And,
                    8 => BinaryOp::Or,
                    9 => BinaryOp::Xor,
                    10 => BinaryOp::Cor,
                    11 => BinaryOp::Cand,
                    12 => BinaryOp::Cnor,
                    13 => BinaryOp::Cnand,
                    14 => BinaryOp::Add,
                    15 => BinaryOp::Sub,
                    16 => BinaryOp::Mul,
                    17 => BinaryOp::Div,
                    18 => BinaryOp::Mod,
                    19 => BinaryOp::Lsh,
                    _ => BinaryOp::Rsh,
                };
                Instr::new(action, op).encode()
            }
        })
        .collect()
}

/// Stack-balanced word stream: pops never outrun pushes, so a large
/// fraction validates and the accepted-program paths (fast interpreter,
/// compiled engines, JIT) see deep execution rather than early rejects.
fn fuzz_balanced_words(rng: &mut SplitMix64) -> Vec<u16> {
    let n = 1 + rng.below(16);
    let mut depth = 0u64;
    let mut words = Vec::new();
    for _ in 0..n {
        let action = if depth == 0 || rng.chance(0.6) {
            match rng.below(6) {
                0 => StackAction::PushLit,
                1 => StackAction::PushZero,
                2 => StackAction::PushOne,
                3 => StackAction::PushFFFF,
                _ => StackAction::PushWord(rng.below(12) as u8),
            }
        } else {
            StackAction::NoPush
        };
        let mut d = depth + u64::from(action != StackAction::NoPush);
        let op = if d >= 2 && rng.chance(0.7) {
            d -= 1;
            const OPS: [BinaryOp; 13] = [
                BinaryOp::Eq,
                BinaryOp::Neq,
                BinaryOp::Lt,
                BinaryOp::Le,
                BinaryOp::Gt,
                BinaryOp::Ge,
                BinaryOp::And,
                BinaryOp::Or,
                BinaryOp::Xor,
                BinaryOp::Cor,
                BinaryOp::Cand,
                BinaryOp::Cnor,
                BinaryOp::Cnand,
            ];
            OPS[rng.below(13) as usize]
        } else {
            BinaryOp::Nop
        };
        words.push(Instr::new(action, op).encode());
        if action == StackAction::PushLit {
            words.push(rng.next_u64() as u16);
        }
        depth = d;
    }
    words
}

/// Hostile packet shapes: empty, single-byte, odd-length, and full
/// frames of pure noise.
fn fuzz_packet(rng: &mut SplitMix64) -> Vec<u8> {
    let len = match rng.below(10) {
        0 => 0,
        1 => 1,
        2 => 3,
        3..=5 => rng.below(24) as usize,
        _ => rng.below(160) as usize,
    };
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Target 1 — decoder totality: `Instr::decode` (and the action/op
/// decoders under it) must accept every possible `u16` without panicking,
/// and every decodable word must survive a decode -> encode -> decode
/// round trip unchanged.
#[test]
fn fuzz_decoder_total_and_roundtrip() {
    // Totality is small enough to prove exhaustively, not just sample.
    for word in 0..=u16::MAX {
        let instr = Instr::decode(word);
        let action = StackAction::decode(word & pf_filter::word::STACK_ACTION_MASK);
        let op = BinaryOp::decode(word >> pf_filter::word::STACK_ACTION_BITS);
        if let Some(i) = instr {
            assert_eq!(
                Instr::decode(i.encode()),
                Some(i),
                "roundtrip changed {word:#06x}"
            );
        }
        // A word decodes as an instruction exactly when both of its
        // fields decode.
        assert_eq!(
            instr.is_some(),
            action.is_some() && op.is_some(),
            "{word:#06x}"
        );
        if let Some(a) = action {
            assert_eq!(StackAction::decode(a.encode()), Some(a), "{word:#06x}");
        }
        if let Some(o) = op {
            assert_eq!(BinaryOp::decode(o.encode()), Some(o), "{word:#06x}");
        }
    }
    // And >= 10k sampled constructed instructions must encode into their
    // own decode image.
    let mut rng = SplitMix64::new(0xF022_DEC0);
    for case in 0..ITERS {
        let words = fuzz_words(&mut rng);
        for &w in &words {
            if let Some(i) = Instr::decode(w) {
                assert_eq!(Instr::decode(i.encode()), Some(i), "case {case}");
            }
        }
    }
}

/// Target 2 — validator totality and safety: `ValidatedProgram` must
/// reach a verdict on arbitrary word soup without panicking, in every
/// dialect x short-circuit configuration; and when it says Ok, the fast
/// interpreter must execute the program against hostile packets without
/// panicking and agree with the checked interpreter.
#[test]
fn fuzz_validator_verdicts_are_total_and_accepts_are_safe() {
    let mut rng = SplitMix64::new(0xF022_7A11);
    let mut accepted = 0u32;
    for case in 0..ITERS {
        // Half raw soup (reject-path totality), half balanced (accepted
        // programs whose execution must then be safe).
        let words = if case % 2 == 0 {
            fuzz_words(&mut rng)
        } else {
            fuzz_balanced_words(&mut rng)
        };
        let prio = rng.next_u64() as u8;
        let packets: [Vec<u8>; 2] = [fuzz_packet(&mut rng), fuzz_packet(&mut rng)];
        for cfg in CONFIGS {
            let prog = FilterProgram::from_words(prio, words.clone());
            let Ok(validated) = ValidatedProgram::with_config(prog.clone(), cfg) else {
                continue;
            };
            accepted += 1;
            let checked = CheckedInterpreter::new(cfg);
            for pkt in &packets {
                let view = PacketView::new(pkt);
                assert_eq!(
                    validated.eval(view),
                    checked.eval(&prog, view),
                    "case {case} cfg {cfg:?}"
                );
            }
        }
    }
    assert!(accepted > 2_000, "only {accepted} programs validated");
}

/// Target 3 — engine differential: on arbitrary (program, packet) pairs
/// every execution surface `singleton_engines` yields — with the `jit`
/// feature on, that includes the template JIT and exercises its
/// fall-back-to-interpreter path on programs it declines — must agree
/// with the checked interpreter bit for bit. Zero disagreements over
/// >= 10k pairs.
#[test]
fn fuzz_engines_agree_with_checked_interpreter() {
    let mut rng = SplitMix64::new(0xF022_E46E);
    let mut surfaces_run = 0u64;
    for case in 0..ITERS {
        let words = if case % 2 == 0 {
            fuzz_words(&mut rng)
        } else {
            fuzz_balanced_words(&mut rng)
        };
        let pkt = fuzz_packet(&mut rng);
        let cfg = CONFIGS[(case % 4) as usize];
        let prog = FilterProgram::from_words(10, words);
        let checked = CheckedInterpreter::new(cfg);
        let expect = checked.eval(&prog, PacketView::new(&pkt)).then_some(0);
        for engine in &mut singleton_engines(&prog, cfg) {
            assert_eq!(
                engine.matches(&pkt),
                expect,
                "{} vs checked: case {case} cfg {cfg:?}",
                engine.name()
            );
            surfaces_run += 1;
        }
    }
    // Every case runs at least the interpreter surfaces; validating
    // programs add the compiled ones.
    assert!(surfaces_run > u64::from(ITERS), "{surfaces_run} surfaces");
}

/// Target 4 — geometric classifier churn: a seeded insert/remove/eval
/// interleaving (mixed exact and range filters, including nested and
/// mutually shadowing ranges) must keep `GeomSet` equivalent to a
/// priority-ordered sequential walk, through tombstone accumulation and
/// compaction; and turning the candidate cap on must only ever shed
/// matches, never invent them.
#[test]
fn fuzz_geom_churn_agrees_with_sequential_walk() {
    let mut rng = SplitMix64::new(0xF022_6E03);
    let checked = CheckedInterpreter::default();
    let mut geom = GeomSet::new();
    let mut capped = GeomSet::new();
    capped.set_candidate_cap(Some(3));
    // Live reference population, insertion order preserved.
    let mut live: Vec<(u32, FilterProgram)> = Vec::new();
    let mut next_id = 0u32;
    for case in 0..ITERS {
        // Churn step: grow toward ~48 live filters, then hover.
        let grow = live.len() < 8 || (live.len() < 48 && rng.chance(0.55));
        if grow {
            let prio = rng.below(32) as u8;
            let f = match rng.below(4) {
                0 => samples::pup_socket_filter(prio, 0, 4000 + rng.below(64) as u16),
                1 => samples::ethertype_filter(prio, rng.below(8) as u16),
                _ => {
                    // Ranges that nest, overlap, and duplicate endpoints.
                    let lo = 4000 + rng.below(48) as u16;
                    let hi = lo + rng.below(48) as u16;
                    samples::socket_range_filter(prio, lo, hi)
                }
            };
            geom.insert(next_id, f.clone());
            capped.insert(next_id, f.clone());
            live.push((next_id, f));
            next_id += 1;
        } else {
            let victim = rng.below(live.len() as u64) as usize;
            let (id, _) = live.swap_remove(victim);
            assert!(geom.remove(id), "case {case}: live id {id} not in set");
            assert!(capped.remove(id), "case {case}: live id {id} not capped");
        }
        // Eval step: a packet aimed into the populated socket band, or
        // hostile noise.
        let pkt = if rng.chance(0.8) {
            samples::pup_packet_3mb(rng.below(8) as u16, 0, 3990 + rng.below(120) as u16, 1)
        } else {
            fuzz_packet(&mut rng)
        };
        let view = PacketView::new(&pkt);
        // Match order is priority descending, insertion order within a
        // priority; ids are handed out monotonically, so the id is the
        // insertion sequence (`live` itself is scrambled by swap_remove).
        let mut order: Vec<usize> = (0..live.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(live[i].1.priority()), live[i].0));
        let expect: Vec<u32> = order
            .iter()
            .filter(|&&i| checked.eval(&live[i].1, view))
            .map(|&i| live[i].0)
            .collect();
        assert_eq!(geom.matches(view), expect, "case {case}");
        // The cap prunes *candidates* (which include non-matching
        // filters), so it may legitimately shed any match — the invariant
        // is that the survivors are an order-preserving subsequence of
        // the uncapped result, never an invention or a reorder.
        let shed = capped.matches(view);
        let mut tail = expect.iter();
        assert!(
            shed.iter().all(|id| tail.any(|e| e == id)),
            "case {case}: capped result is not a subsequence of uncapped"
        );
    }
    assert!(
        geom.compaction_count() > 0,
        "churn never reached a compaction"
    );
    assert!(
        capped.candidates_capped() > 0,
        "cap never actually pruned a candidate"
    );
}
