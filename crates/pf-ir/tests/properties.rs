// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency. The deterministic
// in-tree version of these invariants runs unconditionally in
// `tests/differential.rs`.
#![cfg(feature = "proptest-tests")]

//! Property-based engine agreement: checked interpreter, validated fast
//! interpreter, compiled micro-ops, IR threaded code, the IR filter set,
//! and the geometric classifier are observationally identical on
//! arbitrary programs and packets.

use pf_filter::compile::CompiledFilter;
use pf_filter::interp::{CheckedInterpreter, Dialect, InterpConfig, ShortCircuitStyle};
use pf_filter::packet::PacketView;
use pf_filter::program::{Assembler, FilterProgram};
use pf_filter::validate::ValidatedProgram;
use pf_filter::word::{BinaryOp, Instr, StackAction};
use pf_ir::set::IrFilterSet;
use pf_ir::{GeomSet, IrFilter};
use proptest::prelude::*;

fn any_stack_action() -> impl Strategy<Value = StackAction> {
    prop_oneof![
        Just(StackAction::NoPush),
        Just(StackAction::PushLit),
        Just(StackAction::PushZero),
        Just(StackAction::PushOne),
        Just(StackAction::PushFFFF),
        Just(StackAction::PushFF00),
        Just(StackAction::Push00FF),
        Just(StackAction::PushInd),
        (0u8..48).prop_map(StackAction::PushWord),
    ]
}

fn any_binary_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Nop),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Xor),
        Just(BinaryOp::Cor),
        Just(BinaryOp::Cand),
        Just(BinaryOp::Cnor),
        Just(BinaryOp::Cnand),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
        Just(BinaryOp::Lsh),
        Just(BinaryOp::Rsh),
    ]
}

fn structured_words() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(
        prop_oneof![
            (any_stack_action(), any_binary_op()).prop_map(|(a, o)| Instr::new(a, o).encode()),
            any::<u16>(),
        ],
        0..40,
    )
}

fn packet_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..128)
}

/// A random figure-3-8-style *range* program: one to three
/// `lo <= packet[w] <= hi` constraints, each ordering compare feeding a
/// `CNOR 0` (reject immediately when false), closed by an equality
/// guard — the shape `samples::socket_range_filter` pins down, with
/// every word, bound, and literal randomized.
fn range_member() -> impl Strategy<Value = FilterProgram> {
    (
        prop::collection::vec((0u8..10, any::<u16>(), any::<u16>()), 1..4),
        0u8..10,
        any::<u16>(),
        0u8..30,
    )
        .prop_map(|(ranges, guard_word, guard_lit, prio)| {
            let mut a = Assembler::new(prio);
            for (w, x, y) in ranges {
                let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
                a = a
                    .pushword(w)
                    .pushlit_op(BinaryOp::Ge, lo)
                    .pushzero_op(BinaryOp::Cnor)
                    .pushword(w)
                    .pushlit_op(BinaryOp::Le, hi)
                    .pushzero_op(BinaryOp::Cnor);
            }
            a.pushword(guard_word)
                .pushlit_op(BinaryOp::Eq, guard_lit)
                .finish()
        })
}

proptest! {
    /// If a program validates, the IR engine (and everything below it)
    /// agrees with the checked interpreter; if it does not validate, the
    /// IR compiler rejects it too.
    #[test]
    fn five_engines_agree(words in structured_words(), pkt in packet_bytes()) {
        for dialect in [Dialect::Classic, Dialect::Extended] {
            for style in [ShortCircuitStyle::Paper, ShortCircuitStyle::Historical] {
                let cfg = InterpConfig { dialect, short_circuit: style };
                let prog = FilterProgram::from_words(10, words.clone());
                let Ok(validated) = ValidatedProgram::with_config(prog.clone(), cfg) else {
                    prop_assert!(IrFilter::compile_with_config(prog, cfg).is_err());
                    continue;
                };
                let compiled = CompiledFilter::from_validated(validated.clone());
                let ir = IrFilter::from_validated(&validated);
                let view = PacketView::new(&pkt);
                let checked = CheckedInterpreter::new(cfg).eval(&prog, view);
                prop_assert_eq!(validated.eval(view), checked, "validated vs checked");
                prop_assert_eq!(compiled.eval(view), checked, "compiled vs checked");
                prop_assert_eq!(ir.eval(view), checked, "ir vs checked");
            }
        }
    }

    /// The IR filter set (default configuration) is equivalent to checking
    /// each member independently, on arbitrary mixed populations.
    #[test]
    fn ir_set_equivalent_to_independent_eval(
        programs in prop::collection::vec((structured_words(), 0u8..30), 0..6),
        pkt in packet_bytes(),
    ) {
        let filters: Vec<(u32, FilterProgram)> = programs
            .into_iter()
            .enumerate()
            .map(|(i, (words, prio))| (i as u32, FilterProgram::from_words(prio, words)))
            .collect();
        let mut set = IrFilterSet::new();
        for (id, f) in &filters {
            set.insert(*id, f.clone());
        }
        let view = PacketView::new(&pkt);
        let checked = CheckedInterpreter::default();
        let mut order: Vec<usize> = (0..filters.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(filters[i].1.priority()));
        let expect: Vec<u32> = order
            .iter()
            .filter(|&&i| checked.eval(&filters[i].1, view))
            .map(|&i| filters[i].0)
            .collect();
        prop_assert_eq!(set.matches(view), expect);
    }

    /// The validator accepts the range-program shape, and the checked
    /// interpreter, the threaded code, and the geometric classifier all
    /// agree on it — scalar and batched, on arbitrary packets, including
    /// short ones that force the classifier's fallback.
    #[test]
    fn geom_agrees_on_random_range_programs(
        members in prop::collection::vec(range_member(), 1..6),
        pkts in prop::collection::vec(packet_bytes(), 1..8),
    ) {
        let checked = CheckedInterpreter::default();
        let mut set = GeomSet::new();
        for (i, f) in members.iter().enumerate() {
            prop_assert!(
                ValidatedProgram::new(f.clone()).is_ok(),
                "range shape validates"
            );
            let ir = IrFilter::compile(f.clone()).expect("validated, so compiles");
            set.insert(i as u32, f.clone());
            for p in &pkts {
                let view = PacketView::new(p);
                prop_assert_eq!(ir.eval(view), checked.eval(f, view), "ir vs checked");
            }
        }
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(members[i].priority()));
        let views: Vec<PacketView<'_>> = pkts.iter().map(|p| PacketView::new(p)).collect();
        let (batch, _) = set.matches_batch_with_stats(&views);
        for (p, batched) in pkts.iter().zip(batch) {
            let view = PacketView::new(p);
            let expect: Vec<u32> = order
                .iter()
                .filter(|&&i| checked.eval(&members[i], view))
                .map(|&i| i as u32)
                .collect();
            prop_assert_eq!(set.matches(view), expect.clone(), "geom scalar");
            prop_assert_eq!(batched, expect, "geom batch");
        }
    }
}
