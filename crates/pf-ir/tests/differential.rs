//! Deterministic differential verification: every execution surface in
//! the workspace — checked interpreter, validated fast interpreter,
//! compiled micro-ops, the decision-table set, the IR threaded-code
//! engine, the flat IR filter set, the sharded value-numbered set, the
//! geometric range classifier, and (feature `jit`) the template JIT —
//! must be observationally identical.
//! The surfaces come from [`pf_ir::engine::singleton_engines`], so a new
//! engine is pinned here by registering one [`pf_ir::FilterEngine`] impl.
//!
//! Unlike the proptest suites (feature-gated because the default build is
//! hermetic), this loop runs in every `cargo test`: programs and packets
//! come from the workspace's own [`pf_sim::rng::SplitMix64`], so the cases
//! are reproducible from the printed seed and need no external crates.

use pf_filter::dtree::FilterSet;
use pf_filter::interp::{CheckedInterpreter, Dialect, InterpConfig, ShortCircuitStyle};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::samples;
use pf_filter::validate::ValidatedProgram;
use pf_filter::word::{BinaryOp, Instr, StackAction};
use pf_ir::engine::{singleton_engines, singleton_surface_count};
use pf_ir::set::{IrFilterSet, ShardedVnSet};
use pf_ir::{GeomSet, IrFilter};
use pf_sim::rng::SplitMix64;

const ACTIONS: [StackAction; 8] = [
    StackAction::NoPush,
    StackAction::PushLit,
    StackAction::PushZero,
    StackAction::PushOne,
    StackAction::PushFFFF,
    StackAction::PushFF00,
    StackAction::Push00FF,
    StackAction::PushInd,
];

const OPS: [BinaryOp; 21] = [
    BinaryOp::Nop,
    BinaryOp::Eq,
    BinaryOp::Neq,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::Xor,
    BinaryOp::Cor,
    BinaryOp::Cand,
    BinaryOp::Cnor,
    BinaryOp::Cnand,
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Mod,
    BinaryOp::Lsh,
    BinaryOp::Rsh,
];

const CONFIGS: [InterpConfig; 4] = [
    InterpConfig {
        dialect: Dialect::Classic,
        short_circuit: ShortCircuitStyle::Paper,
    },
    InterpConfig {
        dialect: Dialect::Classic,
        short_circuit: ShortCircuitStyle::Historical,
    },
    InterpConfig {
        dialect: Dialect::Extended,
        short_circuit: ShortCircuitStyle::Paper,
    },
    InterpConfig {
        dialect: Dialect::Extended,
        short_circuit: ShortCircuitStyle::Historical,
    },
];

/// Random program words: mostly well-formed instructions (so a useful
/// fraction validates), some raw garbage.
fn random_words(rng: &mut SplitMix64) -> Vec<u16> {
    let len = rng.below(40) as usize;
    (0..len)
        .map(|_| {
            if rng.chance(0.15) {
                rng.next_u64() as u16 // literal or garbage
            } else {
                let action = if rng.chance(0.25) {
                    StackAction::PushWord(rng.below(48) as u8)
                } else {
                    ACTIONS[rng.below(ACTIONS.len() as u64) as usize]
                };
                let op = OPS[rng.below(OPS.len() as u64) as usize];
                Instr::new(action, op).encode()
            }
        })
        .collect()
}

/// Random *stack-balanced* program: depth is tracked so pops never
/// underflow, which makes most outputs validate (under the paper
/// short-circuit style's depth accounting at least) and gives the compiled
/// engines real work. Classic-dialect operators dominate; short-circuit
/// and extended operators are mixed in.
fn random_balanced_words(rng: &mut SplitMix64) -> Vec<u16> {
    let n = 1 + rng.below(14);
    let mut depth = 0u64;
    let mut words = Vec::new();
    for _ in 0..n {
        let action = if depth == 0 || rng.chance(0.6) {
            match rng.below(6) {
                0 => StackAction::PushLit,
                1 => StackAction::PushZero,
                2 => StackAction::PushOne,
                3 => StackAction::PushFFFF,
                _ => StackAction::PushWord(rng.below(10) as u8),
            }
        } else {
            StackAction::NoPush
        };
        let mut d = depth + u64::from(action != StackAction::NoPush);
        let op = if d >= 2 && rng.chance(0.7) {
            d -= 1;
            let r = rng.next_f64();
            if r < 0.70 {
                const CLASSIC: [BinaryOp; 9] = [
                    BinaryOp::Eq,
                    BinaryOp::Neq,
                    BinaryOp::Lt,
                    BinaryOp::Le,
                    BinaryOp::Gt,
                    BinaryOp::Ge,
                    BinaryOp::And,
                    BinaryOp::Or,
                    BinaryOp::Xor,
                ];
                CLASSIC[rng.below(9) as usize]
            } else if r < 0.90 {
                const SC: [BinaryOp; 4] = [
                    BinaryOp::Cor,
                    BinaryOp::Cand,
                    BinaryOp::Cnor,
                    BinaryOp::Cnand,
                ];
                SC[rng.below(4) as usize]
            } else {
                const EXT: [BinaryOp; 7] = [
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Div,
                    BinaryOp::Mod,
                    BinaryOp::Lsh,
                    BinaryOp::Rsh,
                ];
                EXT[rng.below(7) as usize]
            }
        } else {
            BinaryOp::Nop
        };
        words.push(Instr::new(action, op).encode());
        if action == StackAction::PushLit {
            words.push(rng.next_u64() as u16);
        }
        depth = d;
    }
    words
}

fn random_packet(rng: &mut SplitMix64) -> Vec<u8> {
    // Bias short so the fallback path is exercised, but cover full frames.
    let len = if rng.chance(0.3) {
        rng.below(24) as usize
    } else {
        rng.below(128) as usize
    };
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// The core pin: for every seeded (program, packet) pair, in all four
/// dialect × short-circuit configurations, every execution surface
/// [`singleton_engines`] yields — eight under the default configuration
/// with the `jit` feature on — agrees with the checked interpreter.
#[test]
fn all_engines_agree_on_seeded_pairs() {
    let mut rng = SplitMix64::new(0x5eed_0087);
    let mut validated_cases = 0u32;
    for case in 0..600 {
        // Half balanced (mostly validating), half unconstrained soup
        // (mostly exercising the must-also-reject path).
        let words = if case % 2 == 0 {
            random_balanced_words(&mut rng)
        } else {
            random_words(&mut rng)
        };
        let packets: Vec<Vec<u8>> = (0..3).map(|_| random_packet(&mut rng)).collect();
        for cfg in CONFIGS {
            let prog = FilterProgram::from_words(10, words.clone());
            let valid = ValidatedProgram::with_config(prog.clone(), cfg).is_ok();
            if valid {
                validated_cases += 1;
            } else {
                // The compiled surfaces must reject exactly the programs
                // validation rejects.
                assert!(
                    IrFilter::compile_with_config(prog.clone(), cfg).is_err(),
                    "case {case}: IR compiled a program validation rejects"
                );
                #[cfg(feature = "jit")]
                assert!(
                    pf_ir::JitFilter::compile_with_config(prog.clone(), cfg).is_err(),
                    "case {case}: JIT compiled a program validation rejects"
                );
            }
            let mut engines = singleton_engines(&prog, cfg);
            if valid {
                assert_eq!(
                    engines.len(),
                    singleton_surface_count(cfg),
                    "case {case}: missing surface under cfg {cfg:?}"
                );
            }
            let checked = CheckedInterpreter::new(cfg);
            for (pi, pkt) in packets.iter().enumerate() {
                let expect = checked.eval(&prog, PacketView::new(pkt)).then_some(0);
                for engine in &mut engines {
                    assert_eq!(
                        engine.matches(pkt),
                        expect,
                        "{} vs checked: case {case} packet {pi} cfg {cfg:?}",
                        engine.name()
                    );
                }
            }
        }
    }
    // The generator must actually exercise the compiled paths.
    assert!(
        validated_cases > 200,
        "only {validated_cases} validated cases"
    );
}

/// Set-level pin (default configuration): the flat IR set, the sharded
/// value-numbered set, and the decision-table set agree with a sequential
/// priority-ordered walk over mixed filter populations, including programs
/// that fail validation.
#[test]
fn set_engines_agree_on_seeded_populations() {
    let mut rng = SplitMix64::new(0xdeca_f00d);
    let checked = CheckedInterpreter::default();
    for case in 0..150 {
        // A population of well-known shapes plus random programs.
        let mut filters: Vec<(u32, FilterProgram)> = Vec::new();
        let mut id = 0u32;
        for _ in 0..rng.below(4) {
            let prio = rng.below(30) as u8;
            let sock = 30 + rng.below(8) as u16;
            filters.push((id, samples::pup_socket_filter(prio, 0, sock)));
            id += 1;
        }
        for _ in 0..rng.below(3) {
            let prio = rng.below(30) as u8;
            let et = rng.below(6) as u16;
            filters.push((id, samples::ethertype_filter(prio, et)));
            id += 1;
        }
        for _ in 0..rng.below(3) {
            filters.push((id, FilterProgram::from_words(7, random_words(&mut rng))));
            id += 1;
        }
        let mut ir_set = IrFilterSet::new();
        let mut sharded = ShardedVnSet::new();
        let mut table = FilterSet::new();
        for (fid, f) in &filters {
            ir_set.insert(*fid, f.clone());
            sharded.insert(*fid, f.clone());
            table.insert(*fid, f.clone());
        }
        for pi in 0..4 {
            let pkt = if rng.chance(0.7) {
                let et = rng.below(6) as u16;
                let sock = 28 + rng.below(12) as u16;
                samples::pup_packet_3mb(et, 0, sock, 1)
            } else {
                random_packet(&mut rng)
            };
            let view = PacketView::new(&pkt);
            // Reference: priority-descending, insertion-stable walk.
            let mut order: Vec<usize> = (0..filters.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(filters[i].1.priority()));
            let expect: Vec<u32> = order
                .iter()
                .filter(|&&i| checked.eval(&filters[i].1, view))
                .map(|&i| filters[i].0)
                .collect();
            let ctx = format!("case {case} packet {pi}");
            assert_eq!(ir_set.matches(view), expect, "ir set vs sequential: {ctx}");
            assert_eq!(
                sharded.matches(view),
                expect,
                "sharded vs sequential: {ctx}"
            );
            assert_eq!(table.matches(view), expect, "table vs sequential: {ctx}");
        }
    }
}

/// Batched evaluation pin: `eval_batch` must be bit-identical to looping
/// `matches`, for every surface, in all four dialect × short-circuit
/// configurations, over seeded programs and packet batches that mix full
/// frames with corrupted, truncated, and empty ones.
#[test]
fn eval_batch_agrees_with_scalar_on_seeded_pairs() {
    let mut rng = SplitMix64::new(0x0ba7_c4ed);
    for case in 0..250 {
        let words = if case % 2 == 0 {
            random_balanced_words(&mut rng)
        } else {
            random_words(&mut rng)
        };
        // A batch mixing normal frames with adversarial shapes: an empty
        // frame, a one-byte frame, and truncations of a full frame.
        let full = random_packet(&mut rng);
        let mut batch: Vec<Vec<u8>> = (0..3).map(|_| random_packet(&mut rng)).collect();
        batch.push(Vec::new());
        batch.push(vec![rng.next_u64() as u8]);
        for cut in [1, 3, 5] {
            batch.push(full[..full.len().min(cut)].to_vec());
        }
        batch.push(full.clone());
        let refs: Vec<&[u8]> = batch.iter().map(|p| p.as_slice()).collect();
        for cfg in CONFIGS {
            let prog = FilterProgram::from_words(10, words.clone());
            for engine in &mut singleton_engines(&prog, cfg) {
                let scalar: Vec<Option<u16>> = refs.iter().map(|p| engine.matches(p)).collect();
                let batched = engine.eval_batch(&refs);
                assert_eq!(
                    batched,
                    scalar,
                    "{} batch vs scalar: case {case} cfg {cfg:?}",
                    engine.name()
                );
            }
        }
    }
}

/// Set-level batch pin: the sharded and decision-table batch walks agree
/// with their own scalar walks over mixed populations — including after
/// removals, so the batch path sees remapped test tables and dead shards.
#[test]
fn set_batch_walks_agree_under_churn() {
    let mut rng = SplitMix64::new(0x0bea_d5e7);
    for case in 0..60 {
        let mut sharded = ShardedVnSet::new();
        let mut table = FilterSet::new();
        let mut ids = Vec::new();
        for id in 0..(4 + rng.below(12) as u32) {
            let prio = rng.below(30) as u8;
            let f = match rng.below(3) {
                0 => samples::pup_socket_filter(prio, 0, 30 + rng.below(8) as u16),
                1 => samples::ethertype_filter(prio, rng.below(6) as u16),
                _ => FilterProgram::from_words(prio, random_words(&mut rng)),
            };
            sharded.insert(id, f.clone());
            table.insert(id, f);
            ids.push(id);
        }
        // Churn: remove a random subset so the batch walk runs against
        // remapped (and possibly GC'd) state.
        for &id in ids.iter().filter(|_| rng.chance(0.3)) {
            sharded.remove(id);
            table.remove(id);
        }
        let batch: Vec<Vec<u8>> = (0..8)
            .map(|i| {
                let pkt =
                    samples::pup_packet_3mb(rng.below(6) as u16, 0, 28 + rng.below(12) as u16, 1);
                match i {
                    0 => Vec::new(),
                    1 => pkt[..5].to_vec(),
                    _ if rng.chance(0.2) => random_packet(&mut rng),
                    _ => pkt,
                }
            })
            .collect();
        let views: Vec<PacketView<'_>> = batch.iter().map(|p| PacketView::new(p)).collect();
        let scalar_sharded: Vec<Vec<u32>> = views.iter().map(|v| sharded.matches(*v)).collect();
        let (batched_sharded, _) = sharded.matches_batch_with_stats(&views);
        assert_eq!(batched_sharded, scalar_sharded, "sharded: case {case}");
        let scalar_table: Vec<Vec<u32>> = views.iter().map(|v| table.matches(*v)).collect();
        let batched_table = table.matches_batch(&views);
        assert_eq!(batched_table, scalar_table, "table: case {case}");
    }
}

/// Seeded churn: inserts and removals keep the IR set equivalent to a
/// from-scratch rebuild (interned tests and memo state never leak between
/// generations).
#[test]
fn ir_set_survives_churn() {
    let mut rng = SplitMix64::new(0xc0ffee);
    let mut live: Vec<(u32, FilterProgram)> = Vec::new();
    let mut set = IrFilterSet::new();
    for step in 0..200 {
        if !live.is_empty() && rng.chance(0.4) {
            let at = rng.below(live.len() as u64) as usize;
            let (fid, _) = live.remove(at);
            assert!(set.remove(fid));
        } else {
            let fid = step as u32;
            let f = match rng.below(3) {
                0 => samples::pup_socket_filter(rng.below(30) as u8, 0, 30 + rng.below(8) as u16),
                1 => samples::ethertype_filter(rng.below(30) as u8, rng.below(6) as u16),
                _ => FilterProgram::from_words(7, random_words(&mut rng)),
            };
            set.insert(fid, f.clone());
            live.push((fid, f));
        }
        if step % 20 != 0 {
            continue;
        }
        let mut fresh = IrFilterSet::new();
        for (fid, f) in &live {
            fresh.insert(*fid, f.clone());
        }
        assert_eq!(set.test_count(), fresh.test_count(), "step {step}");
        assert_eq!(set.shared_tests(), fresh.shared_tests(), "step {step}");
        let pkt = samples::pup_packet_3mb(rng.below(6) as u16, 0, 28 + rng.below(12) as u16, 1);
        let view = PacketView::new(&pkt);
        assert_eq!(set.matches(view), fresh.matches(view), "step {step}");
    }
}

/// Seeded churn for the sharded set: inserts and removals keep it
/// equivalent to a from-scratch rebuild, *and* keep the shared-table
/// bookkeeping and shard index identical to the fresh build — removals
/// must GC interned tests, not strand them.
#[test]
fn sharded_set_survives_churn() {
    let mut rng = SplitMix64::new(0xbead_5eed);
    let mut live: Vec<(u32, FilterProgram)> = Vec::new();
    let mut set = ShardedVnSet::new();
    for step in 0..200 {
        if !live.is_empty() && rng.chance(0.4) {
            let at = rng.below(live.len() as u64) as usize;
            let (fid, _) = live.remove(at);
            assert!(set.remove(fid));
        } else {
            let fid = step as u32;
            let f = match rng.below(3) {
                0 => samples::pup_socket_filter(rng.below(30) as u8, 0, 30 + rng.below(8) as u16),
                1 => samples::ethertype_filter(rng.below(30) as u8, rng.below(6) as u16),
                _ => FilterProgram::from_words(7, random_words(&mut rng)),
            };
            set.insert(fid, f.clone());
            live.push((fid, f));
        }
        if step % 20 != 0 {
            continue;
        }
        let mut fresh = ShardedVnSet::new();
        for (fid, f) in &live {
            fresh.insert(*fid, f.clone());
        }
        assert_eq!(set.test_count(), fresh.test_count(), "step {step}");
        assert_eq!(set.shared_tests(), fresh.shared_tests(), "step {step}");
        assert_eq!(set.shard_word(), fresh.shard_word(), "step {step}");
        assert_eq!(set.shard_count(), fresh.shard_count(), "step {step}");
        let pkt = samples::pup_packet_3mb(rng.below(6) as u16, 0, 28 + rng.below(12) as u16, 1);
        let view = PacketView::new(&pkt);
        assert_eq!(set.matches(view), fresh.matches(view), "step {step}");
    }
}

/// Seeded churn for the geometric classifier: a mixed exact/range
/// population under inserts, removals (tombstones), and the compactions
/// they trigger stays equivalent to the checked interpreter, to a
/// from-scratch rebuild, and to itself across the scalar and batched
/// entry points. Interval-tree surgery is where a stale tombstone or a
/// mis-merged segment would surface.
#[test]
fn geom_set_survives_churn() {
    let mut rng = SplitMix64::new(0x9e0_37a7e);
    let checked = CheckedInterpreter::default();
    let mut live: Vec<(u32, FilterProgram)> = Vec::new();
    let mut set = GeomSet::new();
    for step in 0..200u64 {
        if !live.is_empty() && rng.chance(0.4) {
            let at = rng.below(live.len() as u64) as usize;
            let (fid, _) = live.remove(at);
            assert!(set.remove(fid));
        } else {
            let fid = step as u32;
            let f = match rng.below(4) {
                0 => {
                    let lo = 20 + rng.below(30) as u16;
                    samples::socket_range_filter(rng.below(30) as u8, lo, lo + rng.below(20) as u16)
                }
                1 => samples::pup_socket_filter(rng.below(30) as u8, 0, 20 + rng.below(40) as u16),
                2 => samples::ethertype_filter(rng.below(30) as u8, rng.below(6) as u16),
                _ => FilterProgram::from_words(7, random_words(&mut rng)),
            };
            set.insert(fid, f.clone());
            live.push((fid, f));
        }
        assert_eq!(set.len(), live.len(), "step {step}");
        if step % 20 != 0 {
            continue;
        }
        let mut fresh = GeomSet::new();
        for (fid, f) in &live {
            fresh.insert(*fid, f.clone());
        }
        assert_eq!(set.tuple_count(), fresh.tuple_count(), "step {step}");
        assert_eq!(set.residue_len(), fresh.residue_len(), "step {step}");
        let batch: Vec<Vec<u8>> = (0..8)
            .map(|_| {
                samples::pup_packet_3mb(
                    rng.below(6) as u16,
                    0,
                    20 + rng.below(44) as u16,
                    rng.below(120) as u8,
                )
            })
            .collect();
        let views: Vec<PacketView<'_>> = batch.iter().map(|p| PacketView::new(p)).collect();
        let (batched, stats) = set.matches_batch_with_stats(&views);
        for (i, view) in views.iter().enumerate() {
            let expect: Vec<u32> = {
                let mut order: Vec<usize> = (0..live.len()).collect();
                order.sort_by_key(|&j| std::cmp::Reverse(live[j].1.priority()));
                order
                    .into_iter()
                    .filter(|&j| checked.eval(&live[j].1, *view))
                    .map(|j| live[j].0)
                    .collect()
            };
            assert_eq!(
                set.matches(*view),
                expect,
                "step {step} pkt {i}: vs checked"
            );
            assert_eq!(batched[i], expect, "step {step} pkt {i}: batch vs checked");
            assert_eq!(fresh.matches(*view), expect, "step {step} pkt {i}: fresh");
            assert!(
                stats[i].filters_evaluated as usize + stats[i].filters_skipped as usize
                    >= expect.len(),
                "step {step} pkt {i}: stats account for every match"
            );
        }
    }
    // Churn with a 40% removal rate must actually have exercised the
    // tombstone path and at least one compaction.
    assert!(set.compaction_count() > 0, "compaction never fired");
}

/// Re-inserting under a live id replaces the old program without leaking
/// its interned tests: both sets report the same table bookkeeping as a
/// from-scratch build of the final population.
#[test]
fn reinsert_replaces_without_leaking_tests() {
    let mut ir = IrFilterSet::new();
    let mut sharded = ShardedVnSet::new();
    for i in 0..4u16 {
        ir.insert(u32::from(i), samples::pup_socket_filter(10, 0, 30 + i));
        sharded.insert(u32::from(i), samples::pup_socket_filter(10, 0, 30 + i));
    }
    // Replace id 1: its socket test (8, 31) must die with it.
    ir.insert(1, samples::ethertype_filter(9, 5));
    sharded.insert(1, samples::ethertype_filter(9, 5));
    let mut ir_fresh = IrFilterSet::new();
    let mut sh_fresh = ShardedVnSet::new();
    for (fid, f) in [
        (0u32, samples::pup_socket_filter(10, 0, 30)),
        (2, samples::pup_socket_filter(10, 0, 32)),
        (3, samples::pup_socket_filter(10, 0, 33)),
        (1, samples::ethertype_filter(9, 5)),
    ] {
        ir_fresh.insert(fid, f.clone());
        sh_fresh.insert(fid, f);
    }
    assert_eq!(ir.len(), 4);
    assert_eq!(sharded.len(), 4);
    assert_eq!(ir.test_count(), ir_fresh.test_count());
    assert_eq!(ir.shared_tests(), ir_fresh.shared_tests());
    assert_eq!(sharded.test_count(), sh_fresh.test_count());
    assert_eq!(sharded.shared_tests(), sh_fresh.shared_tests());
    assert_eq!(sharded.shard_word(), sh_fresh.shard_word());
    for sock in [30u16, 31, 32, 33] {
        let pkt = samples::pup_packet_3mb(2, 0, sock, 1);
        let view = PacketView::new(&pkt);
        assert_eq!(ir.matches(view), ir_fresh.matches(view), "sock {sock}");
        assert_eq!(sharded.matches(view), sh_fresh.matches(view), "sock {sock}");
    }
}

/// Chaos differential: damaged packets — seeded single-bit corruptions
/// and *every* truncation prefix — get one verdict from every engine.
/// A filter's view of a short or bit-flipped packet exercises exactly
/// the out-of-range-word fallback paths the engines implement
/// separately, so this is where a divergence would hide.
#[test]
fn engines_agree_on_corrupted_and_truncated_packets() {
    let mut rng = SplitMix64::new(0xbadc_0de5);
    let checked = CheckedInterpreter::default();
    for case in 0..120 {
        let words = if case % 2 == 0 {
            random_balanced_words(&mut rng)
        } else {
            random_words(&mut rng)
        };
        let prog = FilterProgram::from_words(10, words);
        let mut engines = singleton_engines(&prog, InterpConfig::default());

        let base = samples::pup_packet_3mb(
            rng.below(6) as u16,
            rng.below(2) as u16,
            30 + rng.below(12) as u16,
            rng.below(120) as u8,
        );
        // Four independent single-bit corruptions, then every prefix
        // (including the empty packet).
        let mut damaged: Vec<Vec<u8>> = (0..4)
            .map(|_| {
                let mut m = base.clone();
                let at = rng.below(m.len() as u64) as usize;
                m[at] ^= 1u8 << rng.below(8);
                m
            })
            .collect();
        damaged.extend((0..=base.len()).map(|k| base[..k].to_vec()));

        for (pi, pkt) in damaged.iter().enumerate() {
            let expect = checked.eval(&prog, PacketView::new(pkt)).then_some(0);
            for engine in &mut engines {
                assert_eq!(
                    engine.matches(pkt),
                    expect,
                    "{} vs checked: case {case} damaged packet {pi} ({} bytes)",
                    engine.name(),
                    pkt.len()
                );
            }
        }
    }
}
