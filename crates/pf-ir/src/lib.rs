//! pf-ir: a control-flow-graph IR for packet filters, with optimizing
//! passes and a flat threaded-code execution engine.
//!
//! The paper's CSPF language (§3) is a stack machine: compact, trivially
//! safe, and — as §6 measures — expensive to interpret, because every
//! boolean connective pushes and pops intermediate truth values that a
//! conventional compiler would keep in registers or branch on directly.
//! This crate is the fifth and sixth rungs of the workspace's execution
//! ladder: it
//! *compiles* validated stack programs into a small SSA-ish register IR
//! ([`ir`]), optimizes the result ([`opt`]), and flattens it into threaded
//! code that evaluates with no operand stack at all ([`exec`]).
//!
//! The pipeline:
//!
//! 1. **Translate** ([`translate::translate`]) — stack traffic becomes
//!    virtual registers (exact depths are statically known, courtesy of
//!    [`pf_filter::validate::ValidatedProgram`]); short-circuit operators
//!    become conditional branches to shared accept/reject blocks.
//! 2. **Optimize** ([`opt::optimize`]) — constant folding, redundant-load
//!    and common-subexpression elimination, branch threading, dead-block
//!    and dead-code removal, dense register renumbering.
//! 3. **Lower** ([`exec::IrFilter`]) — blocks flatten into one threaded
//!    opcode vector; compare-and-branch sequences fuse into single
//!    `guard` opcodes, whose leading run doubles as the filter's
//!    *guard prefix* for cross-filter sharing.
//! 4. **Share** ([`set::IrFilterSet`]) — a demultiplexing set interns the
//!    guard prefixes of all members so each distinct `(word, literal)`
//!    test is evaluated once per packet, the same work-sharing the
//!    paper's §7 decision-table proposal targets, without restricting
//!    the filter language.
//! 5. **Shard** ([`set::ShardedVnSet`], the sixth rung) — a set-level
//!    value-numbering pass ([`vn`]) interns *every* equality test in
//!    every member (fused guards, mid-program branch windows, terminal
//!    compares) into one shared, per-packet lazily memoized test table,
//!    and a shard index keyed on each member's *required*
//!    discriminating-word literal lets a packet walk only the members
//!    its own bytes select.
//!
//! Semantics are pinned to the checked interpreter: translation consumes
//! only validated programs, runtime faults (out-of-bounds indirect loads,
//! zero divisors) reject exactly as the interpreter does, and packets
//! shorter than the validator's static minimum fall back to
//! [`pf_filter::interp::CheckedInterpreter`] verbatim. The differential
//! suites in `tests/` hold all six engines to one verdict.

pub mod exec;
pub mod ir;
pub mod opt;
pub mod set;
pub mod translate;
pub mod vn;

pub use exec::{IrEvalStats, IrFilter};
pub use set::{IrFilterSet, IrSetStats, ShardedVnSet};
pub use vn::VnSetStats;
