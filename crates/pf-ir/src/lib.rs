//! pf-ir: a control-flow-graph IR for packet filters, with optimizing
//! passes and a flat threaded-code execution engine.
//!
//! The paper's CSPF language (§3) is a stack machine: compact, trivially
//! safe, and — as §6 measures — expensive to interpret, because every
//! boolean connective pushes and pops intermediate truth values that a
//! conventional compiler would keep in registers or branch on directly.
//! This crate is rungs five through eight of the workspace's execution
//! ladder: it
//! *compiles* validated stack programs into a small SSA-ish register IR
//! ([`ir`]), optimizes the result ([`opt`]), flattens it into threaded
//! code that evaluates with no operand stack at all ([`exec`]), and —
//! behind the off-by-default `jit` cargo feature — emits straight-line
//! native machine code per CFG block (the `jit` module, rung eight).
//!
//! The pipeline:
//!
//! 1. **Translate** ([`translate::translate`]) — stack traffic becomes
//!    virtual registers (exact depths are statically known, courtesy of
//!    [`pf_filter::validate::ValidatedProgram`]); short-circuit operators
//!    become conditional branches to shared accept/reject blocks.
//! 2. **Optimize** ([`opt::optimize`]) — constant folding, redundant-load
//!    and common-subexpression elimination, branch threading, dead-block
//!    and dead-code removal, dense register renumbering.
//! 3. **Lower** ([`exec::IrFilter`]) — blocks flatten into one threaded
//!    opcode vector; compare-and-branch sequences fuse into single
//!    `guard` opcodes, whose leading run doubles as the filter's
//!    *guard prefix* for cross-filter sharing.
//! 4. **Share** ([`set::IrFilterSet`]) — a demultiplexing set interns the
//!    guard prefixes of all members so each distinct `(word, literal)`
//!    test is evaluated once per packet, the same work-sharing the
//!    paper's §7 decision-table proposal targets, without restricting
//!    the filter language.
//! 5. **Shard** ([`set::ShardedVnSet`], the sixth rung) — a set-level
//!    value-numbering pass ([`vn`]) interns *every* equality test in
//!    every member (fused guards, mid-program branch windows, terminal
//!    compares) into one shared, per-packet lazily memoized test table,
//!    and a shard index keyed on each member's *required*
//!    discriminating-word literal lets a packet walk only the members
//!    its own bytes select.
//! 6. **JIT** (`jit::JitFilter`, the eighth rung, cargo feature `jit`)
//!    — each threaded program's blocks are template-expanded into native
//!    x86-64 or aarch64 code in an mmap'd W^X buffer; programs or
//!    platforms the emitter cannot handle fall back to the threaded
//!    engine per filter, invisibly to callers.
//! 7. **Classify geometrically** ([`geom::GeomSet`], the ninth surface)
//!    — members are indexed by the *interval* constraints their compiled
//!    code provably requires (`packet[w] ∈ [lo,hi]`; equality is the
//!    degenerate case), partitioned into `(word, range-class)` tuples
//!    with a sparse segment tree per range tuple, so port-*range* rules —
//!    which have no equality literal to shard on — still demultiplex in
//!    O(#tuples · log U) index work instead of O(n) member walks.
//!
//! Semantics are pinned to the checked interpreter: translation consumes
//! only validated programs, runtime faults (out-of-bounds indirect loads,
//! zero divisors) reject exactly as the interpreter does, and packets
//! shorter than the validator's static minimum fall back to
//! [`pf_filter::interp::CheckedInterpreter`] verbatim. The differential
//! suites in `tests/` hold every execution surface — eight with the `jit`
//! feature on — to one verdict, iterating them generically through the
//! [`engine::FilterEngine`] trait and [`engine::singleton_engines`]
//! factory.

pub mod engine;
pub mod exec;
pub mod geom;
pub mod ir;
#[cfg(feature = "jit")]
pub mod jit;
pub mod opt;
pub mod set;
pub mod translate;
pub mod vn;

pub use engine::{singleton_engines, singleton_surface_count, FilterEngine};
pub use exec::{IrEvalStats, IrFilter};
pub use geom::{required_constraints, GeomSet, GeomStats, Interval};
#[cfg(feature = "jit")]
pub use jit::JitFilter;
pub use set::{IrFilterSet, IrSetStats, ShardedVnSet};
pub use vn::VnSetStats;
