//! Set-level value numbering: interning *every* word-equality test a
//! member performs — not just its leading guard run — into a shared,
//! lazily-memoized test table.
//!
//! [`crate::set::IrFilterSet`] shares only each member's *leading* guard
//! prefix: the common `EtherType == Pup`-style run the compiler isolates
//! at the head of the threaded code. But demultiplexing filters repeat
//! tests *everywhere*: figure 3-9 puts the per-port socket test first and
//! the shared ethertype test **last** (so the CANDs exit early on the
//! common mismatch), which the prefix scheme cannot share at all.
//!
//! This module generalizes the sharing to the paper's full §7 "decision
//! table" idea, grown from the IR rather than the dtree:
//!
//! * [`TestTable`] interns each distinct `(packet word, literal)`
//!   equality test across the whole set, with a generation-stamped memo
//!   so a test is evaluated **at most once per packet** — and, because
//!   evaluation is lazy, a test *no member reaches* is never evaluated
//!   at all.
//! * [`value_number`] rewrites a compiled member's threaded code so that
//!   every fused guard branch *and* the terminal load/compare/return
//!   pattern consult the shared table mid-program ([`VnOp::TestBr`],
//!   [`VnOp::TestRet`]), dropping the member's own duplicated
//!   load/constant/compare work — the set-level common-subexpression
//!   elimination ROADMAP asks for.
//! * [`required_tests`] computes which interned tests a member *must*
//!   pass to accept (on the compiled path): the analysis behind
//!   [`crate::set::ShardedVnSet`]'s guard-keyed shard index.
//!
//! Rewritten programs preserve the engine's semantics exactly: registers,
//! faults, and short-circuit behavior are untouched; only redundant
//! test computation is deduplicated.

use crate::exec::{IrFilter, TOp};
use crate::ir::IrBinOp;
use pf_filter::packet::PacketView;
use std::collections::HashMap;

/// Counters from one whole-set evaluation over value-numbered members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VnSetStats {
    /// Members whose programs (or checked fallbacks) were evaluated.
    pub filters_evaluated: u32,
    /// Members the shard index proved irrelevant without touching them.
    pub filters_skipped: u32,
    /// Interned tests evaluated fresh against the packet.
    pub tests_evaluated: u32,
    /// Interned tests answered from the per-packet memo.
    pub tests_memoized: u32,
    /// Threaded-code (or fallback interpreter) instructions executed,
    /// including one per fresh test; memoized tests are free.
    pub ops_executed: u32,
}

/// The shared table of interned `(packet word, literal)` equality tests,
/// with a per-packet lazy memo.
///
/// The memo is generation-stamped: [`TestTable::begin_packet`] bumps the
/// generation, and a stale stamp means "not yet evaluated for this
/// packet" — no per-packet clearing of any kind.
#[derive(Debug, Default)]
pub(crate) struct TestTable {
    tests: Vec<(u16, u16)>,
    ids: HashMap<(u16, u16), u32>,
    memo: Vec<(u64, bool)>,
    generation: u64,
}

impl TestTable {
    /// Number of distinct interned tests.
    pub(crate) fn len(&self) -> usize {
        self.tests.len()
    }

    /// The `(word, literal)` pair behind a test id.
    pub(crate) fn test(&self, id: u32) -> (u16, u16) {
        self.tests[id as usize]
    }

    /// Interns a test, returning its stable id.
    pub(crate) fn intern(&mut self, word: u16, lit: u16) -> u32 {
        if let Some(&t) = self.ids.get(&(word, lit)) {
            return t;
        }
        let t = self.tests.len() as u32;
        self.tests.push((word, lit));
        self.ids.insert((word, lit), t);
        self.memo.push((0, false));
        t
    }

    /// Starts a new packet: every memo entry becomes stale at once.
    pub(crate) fn begin_packet(&mut self) {
        self.generation += 1;
    }

    /// The test's verdict for the current packet, evaluating it at most
    /// once per [`TestTable::begin_packet`] generation.
    pub(crate) fn check(
        &mut self,
        test: u32,
        packet: PacketView<'_>,
        stats: &mut VnSetStats,
    ) -> bool {
        let (stamp, result) = self.memo[test as usize];
        if stamp == self.generation {
            stats.tests_memoized += 1;
            return result;
        }
        let (word, lit) = self.tests[test as usize];
        let r = packet.word(usize::from(word)) == Some(lit);
        self.memo[test as usize] = (self.generation, r);
        stats.tests_evaluated += 1;
        stats.ops_executed += 1;
        r
    }

    /// Drops every test not marked live, compacting ids. Returns the
    /// remap (`old id -> new id`; dead entries map to `u32::MAX`).
    pub(crate) fn compact(&mut self, live: &[bool]) -> Vec<u32> {
        let mut remap = vec![u32::MAX; self.tests.len()];
        let mut tests = Vec::new();
        let mut memo = Vec::new();
        self.ids.clear();
        for (old, &(word, lit)) in self.tests.iter().enumerate() {
            if live.get(old).copied().unwrap_or(false) {
                let id = tests.len() as u32;
                remap[old] = id;
                self.ids.insert((word, lit), id);
                tests.push((word, lit));
                // Stamp 0 is permanently stale: the generation counter
                // starts at 0 and begin_packet runs before any check.
                memo.push((0, false));
            }
        }
        self.tests = tests;
        self.memo = memo;
        remap
    }
}

/// One value-numbered threaded-code instruction: [`TOp`] with the fused
/// guard and terminal-compare patterns replaced by shared-table lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VnOp {
    /// `regs[dst] := value`.
    Const { dst: u16, value: u16 },
    /// `regs[dst] := packet[index]` (bounds proven up front).
    LoadWord { dst: u16, index: u16 },
    /// `regs[dst] := packet[regs[index]]`; out of bounds rejects.
    LoadInd { dst: u16, index: u16 },
    /// `regs[dst] := op(regs[a], regs[b])`; a fault rejects.
    Bin {
        op: IrBinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `regs[cond] != 0`, else fall through.
    BranchIf { cond: u16, target: u32 },
    /// Jump when `regs[cond] == 0`, else fall through.
    BranchIfNot { cond: u16, target: u32 },
    /// Memoized test branch: jump when the shared test's verdict equals
    /// `jump_on`, else fall through.
    TestBr {
        test: u32,
        target: u32,
        jump_on: bool,
    },
    /// Terminate accepting iff the shared test's verdict holds (the
    /// value-numbered `load / compare / return` tail).
    TestRet { test: u32 },
    /// Fused range branch carried through from the threaded code: jump
    /// when `packet[word] ∈ [lo, hi]` equals `jump_on_in`. Range tests are
    /// *not* interned — the table memoizes equality verdicts only — so
    /// this executes directly, exactly like the guard it came from.
    RangeBr {
        word: u16,
        lo: u16,
        hi: u16,
        target: u32,
        jump_on_in: bool,
    },
    /// Terminate with a fixed verdict.
    Return { accept: bool },
    /// Terminate accepting iff `regs[reg] != 0`.
    ReturnReg { reg: u16 },
}

/// A member program rewritten against a shared [`TestTable`].
#[derive(Debug, Clone)]
pub(crate) struct VnProgram {
    pub(crate) code: Vec<VnOp>,
    pub(crate) reg_count: usize,
}

impl VnProgram {
    /// Every distinct shared-table test this program consults.
    pub(crate) fn tests_used(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .code
            .iter()
            .filter_map(|op| match *op {
                VnOp::TestBr { test, .. } | VnOp::TestRet { test } => Some(test),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rewrites test ids through a [`TestTable::compact`] remap.
    pub(crate) fn remap_tests(&mut self, remap: &[u32]) {
        for op in &mut self.code {
            match op {
                VnOp::TestBr { test, .. } | VnOp::TestRet { test } => {
                    *test = remap[*test as usize];
                    debug_assert_ne!(*test, u32::MAX, "remapped a dead test");
                }
                _ => {}
            }
        }
    }
}

/// Per-register read counts over threaded code (definitions excluded).
fn use_counts(code: &[TOp], reg_count: usize) -> Vec<u32> {
    let mut uses = vec![0u32; reg_count];
    let mut bump = |r: u16| {
        if let Some(c) = uses.get_mut(usize::from(r)) {
            *c += 1;
        }
    };
    for op in code {
        match *op {
            TOp::LoadInd { index, .. } => bump(index),
            TOp::Bin { a, b, .. } => {
                bump(a);
                bump(b);
            }
            TOp::BranchIf { cond, .. } | TOp::BranchIfNot { cond, .. } => bump(cond),
            TOp::ReturnReg { reg } => bump(reg),
            _ => {}
        }
    }
    uses
}

/// The terminal `load / constant / compare / return` window ending at the
/// `ReturnReg` at `r`, if one exists:
/// `(window start, kept-constant index, word, literal)`.
fn tail_test_window(
    code: &[TOp],
    r: usize,
    uses: &[u32],
    const_val: &HashMap<u16, u16>,
) -> Option<(usize, Option<usize>, u16, u16)> {
    let TOp::ReturnReg { reg } = code[r] else {
        return None;
    };
    compare_window(code, r, reg, uses, const_val)
}

/// The conditional `load / constant / compare / branch` window ending at
/// the branch at `r`, if one exists: `(window start, kept-constant index,
/// word, literal, jump_on)`. These are the equality tests the compiler could *not* fuse
/// into guards — typically because the literal register is shared with a
/// later compare — so without this window they would stay opaque to the
/// table and to [`required_tests`].
fn branch_test_window(
    code: &[TOp],
    r: usize,
    uses: &[u32],
    const_val: &HashMap<u16, u16>,
) -> Option<(usize, Option<usize>, u16, u16, bool)> {
    let (cond, jump_on) = match code[r] {
        TOp::BranchIf { cond, .. } => (cond, true),
        TOp::BranchIfNot { cond, .. } => (cond, false),
        _ => return None,
    };
    let (start, keep, word, lit) = compare_window(code, r, cond, uses, const_val)?;
    Some((start, keep, word, lit, jump_on))
}

/// The `load / constant / compare` window feeding the single-use register
/// `reg` consumed by the op at `r`, with the compare at `r - 1`:
/// `(window start, word, literal)`.
fn compare_window(
    code: &[TOp],
    r: usize,
    reg: u16,
    uses: &[u32],
    const_val: &HashMap<u16, u16>,
) -> Option<(usize, Option<usize>, u16, u16)> {
    if uses[usize::from(reg)] != 1 || r < 2 {
        return None;
    }
    let TOp::Bin {
        op: IrBinOp::Eq,
        dst,
        a,
        b,
    } = code[r - 1]
    else {
        return None;
    };
    if dst != reg {
        return None;
    }
    let used_once = |r: u16| uses.get(usize::from(r)).is_some_and(|&c| c == 1);
    match code[r - 2] {
        // load; compare against a constant register (adjacent and
        // removable, or defined earlier — possibly shared — and kept).
        TOp::LoadWord { dst: rw, index } if used_once(rw) && (rw == a || rw == b) => {
            let other = if rw == a { b } else { a };
            let lit = *const_val.get(&other)?;
            let start = match (r >= 3).then(|| code[r - 3]) {
                Some(TOp::Const { dst: rc, .. }) if rc == other && used_once(rc) => r - 3,
                _ => r - 2,
            };
            Some((start, None, index, lit))
        }
        // constant between the load and the compare. A single-use
        // constant is swallowed with the window; a shared one is kept in
        // place (a later dead-constant sweep removes it if every reader
        // was rewritten away).
        TOp::Const { dst: rc, value } if (rc == a || rc == b) && r >= 3 => {
            let other = if rc == a { b } else { a };
            let TOp::LoadWord { dst: rw, index } = code[r - 3] else {
                return None;
            };
            if rw != other || !used_once(rw) {
                return None;
            }
            let keep = (!used_once(rc)).then_some(r - 2);
            Some((r - 3, keep, index, value))
        }
        _ => None,
    }
}

/// Rewrites a compiled filter's threaded code against the shared table:
/// fused guards become [`VnOp::TestBr`], and the terminal
/// load/compare/return pattern becomes [`VnOp::TestRet`] with its feeding
/// instructions dropped. Each distinct test is interned exactly once
/// set-wide, so members built against one table share ids (and therefore
/// per-packet memoized verdicts) wherever their tests coincide.
pub(crate) fn value_number(filter: &IrFilter, table: &mut TestTable) -> VnProgram {
    let code = filter.code();
    let uses = use_counts(code, filter.reg_count());
    // Branch-target map: rewriting may only swallow instructions nothing
    // jumps into (a target at a window *start* is fine — the whole window
    // is equivalent to the test op replacing it).
    let mut targeted = vec![false; code.len()];
    // Statically known register values (single assignment makes this
    // global), for compares against a shared constant.
    let mut const_val: HashMap<u16, u16> = HashMap::new();
    for op in code {
        match *op {
            TOp::Jump { target }
            | TOp::BranchIf { target, .. }
            | TOp::BranchIfNot { target, .. }
            | TOp::GuardEqBr { target, .. }
            | TOp::GuardNeBr { target, .. }
            | TOp::GuardInBr { target, .. }
            | TOp::GuardOutBr { target, .. } => targeted[target as usize] = true,
            TOp::Const { dst, value } => {
                const_val.insert(dst, value);
            }
            _ => {}
        }
    }

    // Pass 1: find compare windows (terminal and conditional) whose
    // interiors are unjumped.
    let mut drop = vec![false; code.len()];
    let mut tail: HashMap<usize, u32> = HashMap::new();
    let mut branch: HashMap<usize, (u32, bool)> = HashMap::new();
    for r in 0..code.len() {
        if let Some((start, keep, word, lit)) = tail_test_window(code, r, &uses, &const_val) {
            if targeted[start + 1..=r].iter().any(|&t| t) {
                continue;
            }
            drop[start..r].fill(true);
            if let Some(k) = keep {
                drop[k] = false;
            }
            tail.insert(r, table.intern(word, lit));
        } else if let Some((start, keep, word, lit, jump_on)) =
            branch_test_window(code, r, &uses, &const_val)
        {
            if targeted[start + 1..=r].iter().any(|&t| t) {
                continue;
            }
            drop[start..r].fill(true);
            if let Some(k) = keep {
                drop[k] = false;
            }
            branch.insert(r, (table.intern(word, lit), jump_on));
        }
    }

    // Dead-constant sweep: a constant every reader of which was rewritten
    // into a table test has no remaining consumer; ops rewritten to
    // TestBr/TestRet no longer read their condition register.
    let mut read_by_kept = vec![false; filter.reg_count()];
    for (i, op) in code.iter().enumerate() {
        if drop[i] || tail.contains_key(&i) || branch.contains_key(&i) {
            continue;
        }
        match *op {
            TOp::LoadInd { index, .. } => read_by_kept[usize::from(index)] = true,
            TOp::Bin { a, b, .. } => {
                read_by_kept[usize::from(a)] = true;
                read_by_kept[usize::from(b)] = true;
            }
            TOp::BranchIf { cond, .. } | TOp::BranchIfNot { cond, .. } => {
                read_by_kept[usize::from(cond)] = true;
            }
            TOp::ReturnReg { reg } => read_by_kept[usize::from(reg)] = true,
            _ => {}
        }
    }
    for (i, op) in code.iter().enumerate() {
        if let TOp::Const { dst, .. } = *op {
            if !drop[i] && !read_by_kept[usize::from(dst)] {
                drop[i] = true;
            }
        }
    }

    // Pass 2: emit, mapping old instruction indices to new.
    let mut new_index = vec![0u32; code.len()];
    let mut out: Vec<VnOp> = Vec::with_capacity(code.len());
    for (i, op) in code.iter().enumerate() {
        new_index[i] = out.len() as u32;
        if drop[i] {
            continue;
        }
        out.push(match *op {
            TOp::Const { dst, value } => VnOp::Const { dst, value },
            TOp::LoadWord { dst, index } => VnOp::LoadWord { dst, index },
            TOp::LoadInd { dst, index } => VnOp::LoadInd { dst, index },
            TOp::Bin { op, dst, a, b } => VnOp::Bin { op, dst, a, b },
            TOp::Jump { target } => VnOp::Jump { target },
            TOp::BranchIf { cond, target } => match branch.get(&i) {
                Some(&(test, jump_on)) => VnOp::TestBr {
                    test,
                    target,
                    jump_on,
                },
                None => VnOp::BranchIf { cond, target },
            },
            TOp::BranchIfNot { cond, target } => match branch.get(&i) {
                Some(&(test, jump_on)) => VnOp::TestBr {
                    test,
                    target,
                    jump_on,
                },
                None => VnOp::BranchIfNot { cond, target },
            },
            TOp::GuardEqBr { word, lit, target } => VnOp::TestBr {
                test: table.intern(word, lit),
                target,
                jump_on: true,
            },
            TOp::GuardNeBr { word, lit, target } => VnOp::TestBr {
                test: table.intern(word, lit),
                target,
                jump_on: false,
            },
            TOp::GuardInBr {
                word,
                lo,
                hi,
                target,
            } => VnOp::RangeBr {
                word,
                lo,
                hi,
                target,
                jump_on_in: true,
            },
            TOp::GuardOutBr {
                word,
                lo,
                hi,
                target,
            } => VnOp::RangeBr {
                word,
                lo,
                hi,
                target,
                jump_on_in: false,
            },
            TOp::Return { accept } => VnOp::Return { accept },
            TOp::ReturnReg { reg } => match tail.get(&i) {
                Some(&test) => VnOp::TestRet { test },
                None => VnOp::ReturnReg { reg },
            },
        });
    }
    for op in &mut out {
        match op {
            VnOp::Jump { target }
            | VnOp::BranchIf { target, .. }
            | VnOp::BranchIfNot { target, .. }
            | VnOp::TestBr { target, .. }
            | VnOp::RangeBr { target, .. } => *target = new_index[*target as usize],
            _ => {}
        }
    }
    VnProgram {
        code: out,
        reg_count: filter.reg_count(),
    }
}

/// Executes a value-numbered program, answering shared tests through the
/// table's lazy per-packet memo.
///
/// The caller must have checked the packet against the member's
/// `min_packet_words` (short packets take the checked fallback instead,
/// exactly like [`IrFilter::eval_with_stats`]).
pub(crate) fn eval_vn(
    prog: &VnProgram,
    packet: PacketView<'_>,
    table: &mut TestTable,
    stats: &mut VnSetStats,
) -> bool {
    let mut small = [0u16; 32];
    let mut big;
    let regs: &mut [u16] = if prog.reg_count <= small.len() {
        &mut small
    } else {
        big = vec![0u16; prog.reg_count];
        &mut big
    };
    let mut pc = 0usize;
    loop {
        match prog.code[pc] {
            VnOp::Const { dst, value } => {
                regs[usize::from(dst)] = value;
                stats.ops_executed += 1;
                pc += 1;
            }
            VnOp::LoadWord { dst, index } => {
                regs[usize::from(dst)] = packet.word(usize::from(index)).unwrap_or(0);
                stats.ops_executed += 1;
                pc += 1;
            }
            VnOp::LoadInd { dst, index } => {
                stats.ops_executed += 1;
                let idx = usize::from(regs[usize::from(index)]);
                match packet.word(idx) {
                    Some(v) => regs[usize::from(dst)] = v,
                    None => return false,
                }
                pc += 1;
            }
            VnOp::Bin { op, dst, a, b } => {
                stats.ops_executed += 1;
                match op.apply(regs[usize::from(a)], regs[usize::from(b)]) {
                    Some(v) => regs[usize::from(dst)] = v,
                    None => return false,
                }
                pc += 1;
            }
            VnOp::Jump { target } => {
                stats.ops_executed += 1;
                pc = target as usize;
            }
            VnOp::BranchIf { cond, target } => {
                stats.ops_executed += 1;
                pc = if regs[usize::from(cond)] != 0 {
                    target as usize
                } else {
                    pc + 1
                };
            }
            VnOp::BranchIfNot { cond, target } => {
                stats.ops_executed += 1;
                pc = if regs[usize::from(cond)] == 0 {
                    target as usize
                } else {
                    pc + 1
                };
            }
            VnOp::TestBr {
                test,
                target,
                jump_on,
            } => {
                let r = table.check(test, packet, stats);
                pc = if r == jump_on {
                    target as usize
                } else {
                    pc + 1
                };
            }
            VnOp::RangeBr {
                word,
                lo,
                hi,
                target,
                jump_on_in,
            } => {
                stats.ops_executed += 1;
                let inside = packet
                    .word(usize::from(word))
                    .is_some_and(|v| lo <= v && v <= hi);
                pc = if inside == jump_on_in {
                    target as usize
                } else {
                    pc + 1
                };
            }
            VnOp::TestRet { test } => return table.check(test, packet, stats),
            VnOp::Return { accept } => {
                stats.ops_executed += 1;
                return accept;
            }
            VnOp::ReturnReg { reg } => {
                stats.ops_executed += 1;
                return regs[usize::from(reg)] != 0;
            }
        }
    }
}

/// The tests a member *must* pass to accept on the compiled path: test
/// `t` is required iff no accepting return is reachable when `t` is
/// pinned false. Sound and register-blind (a [`VnOp::ReturnReg`] is
/// conservatively treated as a possible accept).
///
/// This is the shard-index soundness argument: if a member requires
/// `packet[d] == lit` and the packet's word `d` is something else, the
/// member cannot match, so a demultiplexer may skip it entirely —
/// *provided* the packet is long enough for the compiled path (short
/// packets take the checked fallback, whose verdict this analysis says
/// nothing about).
pub(crate) fn required_tests(prog: &VnProgram) -> Vec<u32> {
    prog.tests_used()
        .into_iter()
        .filter(|&t| !accept_reachable_without(prog, t))
        .collect()
}

/// Whether any accepting return is reachable with test `t` pinned false.
fn accept_reachable_without(prog: &VnProgram, t: u32) -> bool {
    let mut visited = vec![false; prog.code.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if visited[pc] {
            continue;
        }
        visited[pc] = true;
        match prog.code[pc] {
            VnOp::Const { .. }
            | VnOp::LoadWord { .. }
            | VnOp::LoadInd { .. }
            | VnOp::Bin { .. } => stack.push(pc + 1),
            VnOp::Jump { target } => stack.push(target as usize),
            VnOp::BranchIf { target, .. }
            | VnOp::BranchIfNot { target, .. }
            | VnOp::RangeBr { target, .. } => {
                stack.push(target as usize);
                stack.push(pc + 1);
            }
            VnOp::TestBr {
                test,
                target,
                jump_on,
            } => {
                if test == t {
                    // Verdict is false: jump iff the op jumps on false.
                    stack.push(if jump_on { pc + 1 } else { target as usize });
                } else {
                    stack.push(target as usize);
                    stack.push(pc + 1);
                }
            }
            VnOp::TestRet { test } => {
                if test != t {
                    return true;
                }
            }
            VnOp::Return { accept } => {
                if accept {
                    return true;
                }
            }
            VnOp::ReturnReg { .. } => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::program::Assembler;
    use pf_filter::samples;
    use pf_filter::word::BinaryOp;

    fn vn(program: pf_filter::program::FilterProgram) -> (VnProgram, TestTable) {
        let mut table = TestTable::default();
        let f = IrFilter::compile(program).expect("validates");
        let prog = value_number(&f, &mut table);
        (prog, table)
    }

    /// A socket literal colliding with another literal in the same filter
    /// (here `lo = 2`, also the ethertype) defeats the compiler's guard
    /// fusion, leaving a raw load/shared-constant/compare/branch window.
    /// The branch-window rewrite must still intern it — otherwise the
    /// socket test is invisible to [`required_tests`] and the member can
    /// never be sharded on it.
    #[test]
    fn shared_literal_branch_window_is_interned() {
        let (prog, table) = vn(samples::pup_socket_filter(10, 0, 2));
        assert!(
            prog.code.iter().all(|op| !matches!(
                op,
                VnOp::Bin { .. } | VnOp::BranchIf { .. } | VnOp::BranchIfNot { .. }
            )),
            "every compare should be a table test: {:?}",
            prog.code
        );
        let req: Vec<(u16, u16)> = required_tests(&prog)
            .into_iter()
            .map(|t| table.test(t))
            .collect();
        assert!(req.contains(&(8, 2)), "socket test required: {req:?}");
        assert!(req.contains(&(1, 2)), "ethertype test required: {req:?}");
    }

    #[test]
    fn fig_3_9_interns_all_three_tests() {
        // Socket-lo and socket-hi guards *plus* the trailing
        // `EtherType == Pup` compare-return, which the prefix scheme
        // cannot share.
        let (prog, table) = vn(samples::fig_3_9_pup_socket_35());
        assert_eq!(table.len(), 3, "{prog:?}");
        assert_eq!(prog.tests_used().len(), 3);
        assert!(
            prog.code
                .iter()
                .any(|op| matches!(op, VnOp::TestRet { .. })),
            "tail compare value-numbered: {prog:?}"
        );
        // The load/const/compare feeding the old ReturnReg are gone.
        assert!(
            !prog.code.iter().any(|op| matches!(op, VnOp::Bin { .. })),
            "no residual compare: {prog:?}"
        );
    }

    #[test]
    fn members_share_ids_across_one_table() {
        let mut table = TestTable::default();
        let a = IrFilter::compile(samples::pup_socket_filter(10, 0, 35)).unwrap();
        let b = IrFilter::compile(samples::pup_socket_filter(10, 0, 44)).unwrap();
        let pa = value_number(&a, &mut table);
        let pb = value_number(&b, &mut table);
        // Distinct socket tests, shared socket-hi and ethertype tests.
        assert_eq!(table.len(), 4);
        let shared: Vec<u32> = pa
            .tests_used()
            .into_iter()
            .filter(|t| pb.tests_used().contains(t))
            .collect();
        assert_eq!(shared.len(), 2, "hi-word and ethertype shared");
    }

    #[test]
    fn rewritten_program_evaluates_identically() {
        let shapes = [
            samples::fig_3_9_pup_socket_35(),
            samples::fig_3_8_pup_type_range(),
            samples::ethertype_filter(10, 2),
            samples::accept_all(10),
            samples::reject_all(10),
        ];
        for program in shapes {
            let f = IrFilter::compile(program.clone()).unwrap();
            let mut table = TestTable::default();
            let prog = value_number(&f, &mut table);
            for et in [2u16, 3] {
                for sock in [35u16, 44] {
                    let pkt = samples::pup_packet_3mb(et, 0, sock, 1);
                    let view = PacketView::new(&pkt);
                    table.begin_packet();
                    let mut stats = VnSetStats::default();
                    assert_eq!(
                        eval_vn(&prog, view, &mut table, &mut stats),
                        f.eval(view),
                        "et={et} sock={sock} {prog:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn memo_answers_second_consult_for_free() {
        let (prog, mut table) = vn(samples::fig_3_9_pup_socket_35());
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        let view = PacketView::new(&pkt);
        table.begin_packet();
        let mut stats = VnSetStats::default();
        assert!(eval_vn(&prog, view, &mut table, &mut stats));
        assert_eq!(stats.tests_evaluated, 3);
        assert_eq!(stats.tests_memoized, 0);
        // Same packet generation: everything is memoized.
        let mut again = VnSetStats::default();
        assert!(eval_vn(&prog, view, &mut table, &mut again));
        assert_eq!(again.tests_evaluated, 0);
        assert_eq!(again.tests_memoized, 3);
    }

    #[test]
    fn required_tests_cover_cand_chain_and_tail() {
        let (prog, table) = vn(samples::fig_3_9_pup_socket_35());
        let req: Vec<(u16, u16)> = required_tests(&prog)
            .into_iter()
            .map(|t| table.test(t))
            .collect();
        // All three tests are conjunctive: each is required.
        assert_eq!(req.len(), 3, "{req:?}");
        assert!(req.contains(&(8, 35)));
        assert!(req.contains(&(7, 0)));
        assert!(req.contains(&(1, 2)));
    }

    #[test]
    fn cor_alternative_is_not_required() {
        // `word0 == 5 COR word1 == 7`: either test alone can accept, so
        // neither is required.
        let p = Assembler::new(10)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 5)
            .pushword(1)
            .pushlit_op(BinaryOp::Eq, 7)
            .finish();
        let (prog, _table) = vn(p);
        assert_eq!(required_tests(&prog), Vec::<u32>::new(), "{prog:?}");
    }

    #[test]
    fn compact_remaps_surviving_tests() {
        let mut table = TestTable::default();
        let a = table.intern(1, 2);
        let b = table.intern(8, 35);
        let c = table.intern(7, 0);
        let mut live = vec![false; 3];
        live[b as usize] = true;
        live[c as usize] = true;
        let remap = table.compact(&live);
        assert_eq!(table.len(), 2);
        assert_eq!(remap[a as usize], u32::MAX);
        assert_eq!(table.test(remap[b as usize]), (8, 35));
        assert_eq!(table.test(remap[c as usize]), (7, 0));
        // Re-interning a dropped test allocates a fresh id.
        assert_eq!(table.intern(1, 2), 2);
    }

    #[test]
    fn lazy_memo_skips_unreached_tests() {
        let (prog, mut table) = vn(samples::fig_3_9_pup_socket_35());
        // Wrong socket: the leading guard fails, so the hi-word and
        // ethertype tests are never evaluated.
        let pkt = samples::pup_packet_3mb(2, 0, 99, 1);
        table.begin_packet();
        let mut stats = VnSetStats::default();
        assert!(!eval_vn(
            &prog,
            PacketView::new(&pkt),
            &mut table,
            &mut stats
        ));
        assert_eq!(stats.tests_evaluated, 1, "only the socket guard ran");
    }
}
