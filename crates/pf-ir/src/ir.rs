//! The register-based control-flow-graph IR for packet predicates.
//!
//! A CSPF stack program is straight-line code whose only control transfer
//! is the short-circuit operators' early exit. Lowered into this IR, stack
//! traffic becomes virtual registers ([`Reg`]) and each short-circuit
//! operator becomes an explicit conditional [`Terminator::Branch`] between
//! basic blocks — the representation every optimization in [`crate::opt`]
//! works on, and the one [`crate::exec`] flattens into threaded code.
//!
//! Registers are single-assignment: the translator allocates a fresh
//! register for every value it defines, and the optimizer only ever
//! *aliases* one register to an equivalent earlier one. Several passes rely
//! on this (liveness needs no reaching-definitions analysis).

use core::fmt;
use pf_filter::word::BinaryOp;

/// A virtual register holding one 16-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a basic block within an [`IrProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A pure (or checked) two-operand operator over 16-bit words.
///
/// The operand order follows the stack language: `a` is `T2` (pushed
/// first), `b` is `T1` (top of stack). The four short-circuit operators do
/// not appear here — the translator rewrites them into an `Eq` plus a
/// [`Terminator::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrBinOp {
    /// `1` if `a == b`, else `0`.
    Eq,
    /// `1` if `a != b`, else `0`.
    Neq,
    /// `1` if `a < b` (unsigned), else `0`.
    Lt,
    /// `1` if `a <= b` (unsigned), else `0`.
    Le,
    /// `1` if `a > b` (unsigned), else `0`.
    Gt,
    /// `1` if `a >= b` (unsigned), else `0`.
    Ge,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition (extended dialect).
    Add,
    /// Wrapping subtraction (extended dialect).
    Sub,
    /// Wrapping multiplication (extended dialect).
    Mul,
    /// Unsigned division; a zero divisor is a runtime fault → reject.
    Div,
    /// Unsigned remainder; a zero divisor is a runtime fault → reject.
    Mod,
    /// Left shift, count masked to 0–15 (extended dialect).
    Lsh,
    /// Right shift, count masked to 0–15 (extended dialect).
    Rsh,
}

impl IrBinOp {
    /// The IR operator for a stack-language binary operator, or `None` for
    /// `NOP` and the short-circuit operators (which do not map one-to-one).
    pub fn from_stack_op(op: BinaryOp) -> Option<Self> {
        Some(match op {
            BinaryOp::Eq => IrBinOp::Eq,
            BinaryOp::Neq => IrBinOp::Neq,
            BinaryOp::Lt => IrBinOp::Lt,
            BinaryOp::Le => IrBinOp::Le,
            BinaryOp::Gt => IrBinOp::Gt,
            BinaryOp::Ge => IrBinOp::Ge,
            BinaryOp::And => IrBinOp::And,
            BinaryOp::Or => IrBinOp::Or,
            BinaryOp::Xor => IrBinOp::Xor,
            BinaryOp::Add => IrBinOp::Add,
            BinaryOp::Sub => IrBinOp::Sub,
            BinaryOp::Mul => IrBinOp::Mul,
            BinaryOp::Div => IrBinOp::Div,
            BinaryOp::Mod => IrBinOp::Mod,
            BinaryOp::Lsh => IrBinOp::Lsh,
            BinaryOp::Rsh => IrBinOp::Rsh,
            BinaryOp::Nop | BinaryOp::Cor | BinaryOp::Cand | BinaryOp::Cnor | BinaryOp::Cnand => {
                return None
            }
        })
    }

    /// Applies the operator; `None` is a runtime fault (zero divisor),
    /// which rejects the packet like every other fault in the language.
    pub fn apply(self, a: u16, b: u16) -> Option<u16> {
        Some(match self {
            IrBinOp::Eq => u16::from(a == b),
            IrBinOp::Neq => u16::from(a != b),
            IrBinOp::Lt => u16::from(a < b),
            IrBinOp::Le => u16::from(a <= b),
            IrBinOp::Gt => u16::from(a > b),
            IrBinOp::Ge => u16::from(a >= b),
            IrBinOp::And => a & b,
            IrBinOp::Or => a | b,
            IrBinOp::Xor => a ^ b,
            IrBinOp::Add => a.wrapping_add(b),
            IrBinOp::Sub => a.wrapping_sub(b),
            IrBinOp::Mul => a.wrapping_mul(b),
            IrBinOp::Div => {
                if b == 0 {
                    return None;
                }
                a / b
            }
            IrBinOp::Mod => {
                if b == 0 {
                    return None;
                }
                a % b
            }
            IrBinOp::Lsh => a << (b & 0xF),
            IrBinOp::Rsh => a >> (b & 0xF),
        })
    }

    /// Whether [`IrBinOp::apply`] can fault (and therefore must never be
    /// removed as dead code).
    pub fn can_fault(self) -> bool {
        matches!(self, IrBinOp::Div | IrBinOp::Mod)
    }
}

impl fmt::Display for IrBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrBinOp::Eq => "eq",
            IrBinOp::Neq => "neq",
            IrBinOp::Lt => "lt",
            IrBinOp::Le => "le",
            IrBinOp::Gt => "gt",
            IrBinOp::Ge => "ge",
            IrBinOp::And => "and",
            IrBinOp::Or => "or",
            IrBinOp::Xor => "xor",
            IrBinOp::Add => "add",
            IrBinOp::Sub => "sub",
            IrBinOp::Mul => "mul",
            IrBinOp::Div => "div",
            IrBinOp::Mod => "mod",
            IrBinOp::Lsh => "lsh",
            IrBinOp::Rsh => "rsh",
        };
        f.write_str(s)
    }
}

/// One non-terminating IR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `dst := value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant.
        value: u16,
    },
    /// `dst := packet[index]`; the static packet-length check performed
    /// once per evaluation proves this in bounds.
    LoadWord {
        /// Destination register.
        dst: Reg,
        /// Packet word index.
        index: u16,
    },
    /// `dst := packet[regs[index]]`, dynamically bounds-checked; out of
    /// bounds is a runtime fault → reject.
    LoadInd {
        /// Destination register.
        dst: Reg,
        /// Register holding the packet word index.
        index: Reg,
    },
    /// `dst := op(a, b)` with `a = T2`, `b = T1`.
    Bin {
        /// Destination register.
        dst: Reg,
        /// The operator.
        op: IrBinOp,
        /// Left operand (`T2`).
        a: Reg,
        /// Right operand (`T1`, top of stack).
        b: Reg,
    },
}

impl Op {
    /// The register this operation defines.
    pub fn dst(&self) -> Reg {
        match *self {
            Op::Const { dst, .. }
            | Op::LoadWord { dst, .. }
            | Op::LoadInd { dst, .. }
            | Op::Bin { dst, .. } => dst,
        }
    }

    /// Whether executing this operation can fault (terminate evaluation
    /// with *reject*). Faulting operations are never dead code.
    pub fn can_fault(&self) -> bool {
        match *self {
            Op::LoadInd { .. } => true,
            Op::Bin { op, .. } => op.can_fault(),
            Op::Const { .. } | Op::LoadWord { .. } => false,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Const { dst, value } => write!(f, "{dst} = {value:#06x}"),
            Op::LoadWord { dst, index } => write!(f, "{dst} = pkt[{index}]"),
            Op::LoadInd { dst, index } => write!(f, "{dst} = pkt[{index}]!"),
            Op::Bin { dst, op, a, b } => write!(f, "{dst} = {op} {a}, {b}"),
        }
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional transfer.
    Jump(BlockId),
    /// Two-way transfer on `cond != 0`.
    Branch {
        /// The condition register.
        cond: Reg,
        /// Successor when `cond != 0`.
        if_true: BlockId,
        /// Successor when `cond == 0`.
        if_false: BlockId,
    },
    /// Terminate with a fixed verdict (`true` = accept).
    Return(bool),
    /// Terminate accepting iff the register is non-zero (the stack
    /// language's "top of stack non-zero" rule).
    ReturnReg(Reg),
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Terminator::Jump(t) => write!(f, "jump {t}"),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                write!(f, "br {cond} ? {if_true} : {if_false}")
            }
            Terminator::Return(true) => write!(f, "accept"),
            Terminator::Return(false) => write!(f, "reject"),
            Terminator::ReturnReg(r) => write!(f, "ret {r}"),
        }
    }
}

impl Terminator {
    /// The blocks this terminator can transfer to.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match *self {
            Terminator::Jump(t) => (Some(t), None),
            Terminator::Branch {
                if_true, if_false, ..
            } => (Some(if_true), Some(if_false)),
            Terminator::Return(_) | Terminator::ReturnReg(_) => (None, None),
        };
        a.into_iter().chain(b)
    }
}

/// A basic block: straight-line operations plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The operations, in execution order.
    pub ops: Vec<Op>,
    /// How the block ends.
    pub term: Terminator,
}

/// A whole predicate as a CFG. Entry is always block 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrProgram {
    /// The basic blocks; [`BlockId`]s index this vector.
    pub blocks: Vec<Block>,
    /// Number of virtual registers (register indices are `0..reg_count`).
    pub reg_count: u32,
}

impl IrProgram {
    /// Total operation count across all blocks (terminators excluded).
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }
}

impl fmt::Display for IrProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "b{i}:")?;
            for op in &b.ops {
                writeln!(f, "  {op}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        Ok(())
    }
}
