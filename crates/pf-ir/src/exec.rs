//! The flat threaded-code execution engine.
//!
//! After optimization the CFG is flattened into one dense instruction
//! array ([`TOp`]): blocks are laid out in order, branch targets become
//! instruction indices, and a transfer to the next instruction costs
//! nothing (fallthrough). A peephole pass then fuses the dominant
//! demultiplexing shape — *load packet word, load constant, compare,
//! branch* — into single guard instructions, so a figure 3-9 style filter
//! executes as a couple of fused word-equality tests with no register
//! traffic at all.
//!
//! Short packets take the same route as [`ValidatedProgram::eval`]: when
//! the packet is shorter than the validator's `min_packet_words`, the
//! whole evaluation falls back to the checked interpreter, preserving the
//! paper's §4 semantics exactly (a short-circuit accept can legitimately
//! precede an out-of-bounds load).

use crate::ir::{BlockId, IrBinOp, IrProgram, Terminator};
use crate::opt::optimize;
use crate::translate::translate;
use pf_filter::error::ValidateError;
use pf_filter::interp::{CheckedInterpreter, InterpConfig};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::validate::ValidatedProgram;
use std::collections::HashMap;

/// One threaded-code instruction. Register and target fields are plain
/// indices; the engine's inner loop is a single `match` over this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TOp {
    /// `regs[dst] := value`.
    Const { dst: u16, value: u16 },
    /// `regs[dst] := packet[index]` (bounds proven up front).
    LoadWord { dst: u16, index: u16 },
    /// `regs[dst] := packet[regs[index]]`; out of bounds rejects.
    LoadInd { dst: u16, index: u16 },
    /// `regs[dst] := op(regs[a], regs[b])`; a fault rejects.
    Bin {
        op: IrBinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `regs[cond] != 0`, else fall through.
    BranchIf { cond: u16, target: u32 },
    /// Jump when `regs[cond] == 0`, else fall through.
    BranchIfNot { cond: u16, target: u32 },
    /// Fused guard: jump when `packet[word] == lit`, else fall through.
    GuardEqBr { word: u16, lit: u16, target: u32 },
    /// Fused guard: jump when `packet[word] != lit`, else fall through.
    GuardNeBr { word: u16, lit: u16, target: u32 },
    /// Fused range guard: jump when `lo <= packet[word] <= hi`
    /// (unsigned), else fall through. Produced by fusing an ordering
    /// compare (`Lt`/`Le`/`Gt`/`Ge`) against a constant, and by merging
    /// two adjacent one-sided tests into one two-sided `InRange` check.
    GuardInBr {
        word: u16,
        lo: u16,
        hi: u16,
        target: u32,
    },
    /// Fused range guard: jump when `packet[word]` falls *outside*
    /// `[lo, hi]`, else fall through. The reject-edge dual of
    /// [`TOp::GuardInBr`], the shape a CAND chain of range tests lowers to.
    GuardOutBr {
        word: u16,
        lo: u16,
        hi: u16,
        target: u32,
    },
    /// Terminate with a fixed verdict.
    Return { accept: bool },
    /// Terminate accepting iff `regs[reg] != 0`.
    ReturnReg { reg: u16 },
}

/// Counters from one IR-engine evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IrEvalStats {
    /// Threaded-code instructions executed (or, on the fallback path, the
    /// checked interpreter's instruction count).
    pub ops_executed: u32,
    /// Whether a short packet routed evaluation to the checked fallback.
    pub fell_back: bool,
}

/// A filter compiled to optimized threaded code.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
/// use pf_ir::exec::IrFilter;
///
/// let f = IrFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
/// let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
/// assert!(f.eval(PacketView::new(&pkt)));
/// ```
#[derive(Debug, Clone)]
pub struct IrFilter {
    /// The source program, kept for the short-packet checked fallback.
    program: FilterProgram,
    config: InterpConfig,
    min_packet_words: usize,
    reg_count: usize,
    code: Vec<TOp>,
    /// Leading `(word, lit)` equality guards that must *all* hold for the
    /// filter to accept; failing any jumps straight to a reject.
    prefix: Vec<(u16, u16)>,
    /// Code index of the first instruction after the guard prefix.
    body_start: usize,
}

impl IrFilter {
    /// Validates and compiles under the default configuration (classic
    /// dialect, paper-style short circuits).
    ///
    /// # Errors
    ///
    /// Returns the validator's verdict on a malformed program.
    pub fn compile(program: FilterProgram) -> Result<Self, ValidateError> {
        Self::compile_with_config(program, InterpConfig::default())
    }

    /// Validates and compiles under an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns the validator's verdict on a malformed program.
    pub fn compile_with_config(
        program: FilterProgram,
        config: InterpConfig,
    ) -> Result<Self, ValidateError> {
        Ok(Self::from_validated(&ValidatedProgram::with_config(
            program, config,
        )?))
    }

    /// Compiles an already-validated program: translate to the CFG IR, run
    /// the optimization pipeline, flatten to threaded code.
    pub fn from_validated(validated: &ValidatedProgram) -> Self {
        let mut ir = translate(validated);
        optimize(&mut ir);
        let code = lower(&ir);
        let (prefix, body_start) = guard_prefix(&code);
        IrFilter {
            program: validated.program().clone(),
            config: validated.config(),
            min_packet_words: validated.min_packet_words(),
            reg_count: ir.reg_count as usize,
            code,
            prefix,
            body_start,
        }
    }

    /// The source program.
    pub fn program(&self) -> &FilterProgram {
        &self.program
    }

    /// The filter's priority.
    pub fn priority(&self) -> u8 {
        self.program.priority()
    }

    /// The configuration the filter was compiled under.
    pub fn config(&self) -> InterpConfig {
        self.config
    }

    /// Packet length (in words) below which evaluation falls back to the
    /// checked interpreter.
    pub fn min_packet_words(&self) -> usize {
        self.min_packet_words
    }

    /// Number of threaded-code instructions.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The threaded code itself, for set-level rewriting ([`crate::vn`]).
    pub(crate) fn code(&self) -> &[TOp] {
        &self.code
    }

    /// Live registers after optimization.
    pub fn reg_count(&self) -> usize {
        self.reg_count
    }

    /// The leading word-equality guards: `(packet word, literal)` pairs
    /// that must all hold for the filter to accept. [`crate::set::IrFilterSet`]
    /// shares and memoizes these across filters.
    pub fn guard_prefix(&self) -> &[(u16, u16)] {
        &self.prefix
    }

    /// Evaluates against a packet; `true` means *accept*.
    pub fn eval(&self, packet: PacketView<'_>) -> bool {
        self.eval_with_stats(packet).0
    }

    /// Evaluates and reports execution counters.
    pub fn eval_with_stats(&self, packet: PacketView<'_>) -> (bool, IrEvalStats) {
        if packet.word_len() < self.min_packet_words {
            let (accept, stats) =
                CheckedInterpreter::new(self.config).eval_with_stats(&self.program, packet);
            return (
                accept,
                IrEvalStats {
                    ops_executed: stats.instructions,
                    fell_back: true,
                },
            );
        }
        let (accept, ops) = self.exec(0, packet);
        (
            accept,
            IrEvalStats {
                ops_executed: ops,
                fell_back: false,
            },
        )
    }

    /// Evaluates the post-prefix body only. The caller must have checked
    /// the packet against [`IrFilter::min_packet_words`] and every
    /// [`IrFilter::guard_prefix`] test.
    pub(crate) fn eval_body(&self, packet: PacketView<'_>) -> (bool, u32) {
        self.exec(self.body_start, packet)
    }

    /// The threaded-code inner loop.
    fn exec(&self, start: usize, packet: PacketView<'_>) -> (bool, u32) {
        // Register file: stack storage for typical filters, heap beyond.
        let mut small = [0u16; 32];
        let mut big;
        let regs: &mut [u16] = if self.reg_count <= small.len() {
            &mut small
        } else {
            big = vec![0u16; self.reg_count];
            &mut big
        };

        let mut pc = start;
        let mut ops = 0u32;
        loop {
            ops += 1;
            match self.code[pc] {
                TOp::Const { dst, value } => {
                    regs[usize::from(dst)] = value;
                    pc += 1;
                }
                TOp::LoadWord { dst, index } => {
                    // In bounds by the min_packet_words precondition.
                    regs[usize::from(dst)] = packet.word(usize::from(index)).unwrap_or(0);
                    pc += 1;
                }
                TOp::LoadInd { dst, index } => {
                    let idx = usize::from(regs[usize::from(index)]);
                    match packet.word(idx) {
                        Some(v) => regs[usize::from(dst)] = v,
                        None => return (false, ops),
                    }
                    pc += 1;
                }
                TOp::Bin { op, dst, a, b } => {
                    match op.apply(regs[usize::from(a)], regs[usize::from(b)]) {
                        Some(v) => regs[usize::from(dst)] = v,
                        None => return (false, ops),
                    }
                    pc += 1;
                }
                TOp::Jump { target } => pc = target as usize,
                TOp::BranchIf { cond, target } => {
                    pc = if regs[usize::from(cond)] != 0 {
                        target as usize
                    } else {
                        pc + 1
                    };
                }
                TOp::BranchIfNot { cond, target } => {
                    pc = if regs[usize::from(cond)] == 0 {
                        target as usize
                    } else {
                        pc + 1
                    };
                }
                TOp::GuardEqBr { word, lit, target } => {
                    pc = if packet.word(usize::from(word)) == Some(lit) {
                        target as usize
                    } else {
                        pc + 1
                    };
                }
                TOp::GuardNeBr { word, lit, target } => {
                    pc = if packet.word(usize::from(word)) == Some(lit) {
                        pc + 1
                    } else {
                        target as usize
                    };
                }
                TOp::GuardInBr {
                    word,
                    lo,
                    hi,
                    target,
                } => {
                    let inside = packet
                        .word(usize::from(word))
                        .is_some_and(|v| lo <= v && v <= hi);
                    pc = if inside { target as usize } else { pc + 1 };
                }
                TOp::GuardOutBr {
                    word,
                    lo,
                    hi,
                    target,
                } => {
                    let inside = packet
                        .word(usize::from(word))
                        .is_some_and(|v| lo <= v && v <= hi);
                    pc = if inside { pc + 1 } else { target as usize };
                }
                TOp::Return { accept } => return (accept, ops),
                TOp::ReturnReg { reg } => return (regs[usize::from(reg)] != 0, ops),
            }
        }
    }

    /// Disassembles the threaded code (debugging and tests).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.code.iter().enumerate() {
            out.push_str(&format!("{i:3}: {op:?}\n"));
        }
        out
    }
}

/// Flattens an optimized CFG into threaded code with fused guards.
fn lower(ir: &IrProgram) -> Vec<TOp> {
    // Emit per-block instruction lists with BlockId-valued targets, fuse
    // within each block, then concatenate and patch targets.
    let n = ir.blocks.len();
    let mut chunks: Vec<Vec<TOp>> = Vec::with_capacity(n);
    for (i, block) in ir.blocks.iter().enumerate() {
        let mut out: Vec<TOp> = Vec::with_capacity(block.ops.len() + 2);
        for op in &block.ops {
            out.push(match *op {
                crate::ir::Op::Const { dst, value } => TOp::Const { dst: dst.0, value },
                crate::ir::Op::LoadWord { dst, index } => TOp::LoadWord { dst: dst.0, index },
                crate::ir::Op::LoadInd { dst, index } => TOp::LoadInd {
                    dst: dst.0,
                    index: index.0,
                },
                crate::ir::Op::Bin { dst, op, a, b } => TOp::Bin {
                    op,
                    dst: dst.0,
                    a: a.0,
                    b: b.0,
                },
            });
        }
        let next = BlockId((i + 1) as u32);
        match block.term {
            Terminator::Return(accept) => out.push(TOp::Return { accept }),
            Terminator::ReturnReg(r) => out.push(TOp::ReturnReg { reg: r.0 }),
            Terminator::Jump(t) => {
                if t != next {
                    out.push(TOp::Jump { target: t.0 });
                }
            }
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                if if_false == next {
                    out.push(TOp::BranchIf {
                        cond: cond.0,
                        target: if_true.0,
                    });
                } else if if_true == next {
                    out.push(TOp::BranchIfNot {
                        cond: cond.0,
                        target: if_false.0,
                    });
                } else {
                    out.push(TOp::BranchIf {
                        cond: cond.0,
                        target: if_true.0,
                    });
                    out.push(TOp::Jump { target: if_false.0 });
                }
            }
        }
        chunks.push(out);
    }

    fuse_guards(&mut chunks, ir);

    // Concatenate and patch BlockId targets to instruction indices.
    let mut starts = Vec::with_capacity(n);
    let mut len = 0u32;
    for c in &chunks {
        starts.push(len);
        len += c.len() as u32;
    }
    let mut code = Vec::with_capacity(len as usize);
    for c in chunks {
        for mut op in c {
            match &mut op {
                TOp::Jump { target }
                | TOp::BranchIf { target, .. }
                | TOp::BranchIfNot { target, .. }
                | TOp::GuardEqBr { target, .. }
                | TOp::GuardNeBr { target, .. }
                | TOp::GuardInBr { target, .. }
                | TOp::GuardOutBr { target, .. } => {
                    *target = starts[*target as usize];
                }
                _ => {}
            }
            code.push(op);
        }
    }
    loop {
        let before = code.len();
        merge_range_guards(&mut code);
        if code.len() == before {
            break;
        }
    }
    code
}

/// Merges an adjacent pair of same-word, same-target `GuardOutBr`s into a
/// single two-sided range check — the shape a `GE cand LE` chain lowers
/// to: each one-sided test becomes its own out-of-range bail, and the
/// intersection of the two intervals is the `InRange` window. Only fires
/// when no branch lands between the two (merging would change that path).
fn merge_range_guards(code: &mut Vec<TOp>) {
    use std::collections::HashSet;
    let mut targets: HashSet<u32> = HashSet::new();
    for op in code.iter() {
        match *op {
            TOp::Jump { target }
            | TOp::BranchIf { target, .. }
            | TOp::BranchIfNot { target, .. }
            | TOp::GuardEqBr { target, .. }
            | TOp::GuardNeBr { target, .. }
            | TOp::GuardInBr { target, .. }
            | TOp::GuardOutBr { target, .. } => {
                targets.insert(target);
            }
            _ => {}
        }
    }
    // Collapse pairs, recording how many instructions were dropped before
    // each original index so surviving targets can be re-patched.
    let mut out: Vec<TOp> = Vec::with_capacity(code.len());
    let mut new_index = vec![0u32; code.len() + 1];
    let mut i = 0usize;
    while i < code.len() {
        new_index[i] = out.len() as u32;
        if let TOp::GuardOutBr {
            word,
            lo,
            hi,
            target,
        } = code[i]
        {
            if let Some(&TOp::GuardOutBr {
                word: w2,
                lo: lo2,
                hi: hi2,
                target: t2,
            }) = code.get(i + 1)
            {
                if w2 == word && t2 == target && !targets.contains(&((i + 1) as u32)) {
                    let lo = lo.max(lo2);
                    let hi = hi.min(hi2);
                    new_index[i + 1] = out.len() as u32;
                    if lo <= hi {
                        out.push(TOp::GuardOutBr {
                            word,
                            lo,
                            hi,
                            target,
                        });
                    } else {
                        // Empty intersection: always out of range.
                        out.push(TOp::Jump { target });
                    }
                    i += 2;
                    continue;
                }
            }
        }
        out.push(code[i]);
        i += 1;
    }
    new_index[code.len()] = out.len() as u32;
    for op in out.iter_mut() {
        match op {
            TOp::Jump { target }
            | TOp::BranchIf { target, .. }
            | TOp::BranchIfNot { target, .. }
            | TOp::GuardEqBr { target, .. }
            | TOp::GuardNeBr { target, .. }
            | TOp::GuardInBr { target, .. }
            | TOp::GuardOutBr { target, .. } => {
                *target = new_index[*target as usize];
            }
            _ => {}
        }
    }
    *code = out;
}

/// Fuses the `LoadWord / Const / eq / branch` tail of a block into a
/// single guard instruction when the intermediate registers have no other
/// consumers.
fn fuse_guards(chunks: &mut [Vec<TOp>], ir: &IrProgram) {
    let uses = register_use_counts(ir);
    let used_once = |r: u16| uses.get(usize::from(r)).is_some_and(|&c| c == 1);
    // Registers with statically known values, and registers holding a
    // packet word (single assignment makes both maps global); lets a
    // CSE-shared constant or a CSE-shared load fuse without being removed
    // — the dead-definition sweep below reclaims either once every
    // consumer has been fused away.
    let mut const_val: HashMap<u16, u16> = HashMap::new();
    let mut load_val: HashMap<u16, u16> = HashMap::new();
    for chunk in chunks.iter() {
        for op in chunk {
            match *op {
                TOp::Const { dst, value } => {
                    const_val.insert(dst, value);
                }
                TOp::LoadWord { dst, index } => {
                    load_val.insert(dst, index);
                }
                _ => {}
            }
        }
    }
    for chunk in chunks.iter_mut() {
        let k = chunk.len();
        if k < 3 {
            continue;
        }
        let (cond, target, jump_on_cond) = match chunk[k - 1] {
            TOp::BranchIf { cond, target } => (cond, target, true),
            TOp::BranchIfNot { cond, target } => (cond, target, false),
            _ => continue,
        };
        if !used_once(cond) {
            continue;
        }
        let TOp::Bin { op, dst, a, b } = chunk[k - 2] else {
            continue;
        };
        if dst != cond
            || !matches!(
                op,
                IrBinOp::Eq | IrBinOp::Lt | IrBinOp::Le | IrBinOp::Gt | IrBinOp::Ge
            )
        {
            continue;
        }
        // The compare's operands: one register holding a packet word, one
        // holding a constant (each either single-use and removable, or
        // shared and kept — kept definitions that lose their last
        // consumer are reclaimed by the sweep below). `word_is_left`
        // records whether the packet word was `T2` — the ordering
        // operators are not symmetric.
        let (word, lit, word_is_left) = match (
            load_val.get(&a),
            const_val.get(&b),
            load_val.get(&b),
            const_val.get(&a),
        ) {
            (Some(&w), Some(&l), _, _) => (w, l, true),
            (_, _, Some(&w), Some(&l)) => (w, l, false),
            _ => continue,
        };
        let fused = match op {
            IrBinOp::Eq => {
                if jump_on_cond {
                    TOp::GuardEqBr { word, lit, target }
                } else {
                    TOp::GuardNeBr { word, lit, target }
                }
            }
            _ => {
                // Rewrite the ordering compare as an inclusive interval on
                // the packet word. Literal-edge cases (a constantly-false
                // compare) are left unfused; they are rare and correct as-is.
                let interval = match (op, word_is_left) {
                    (IrBinOp::Lt, true) | (IrBinOp::Gt, false) => {
                        lit.checked_sub(1).map(|h| (0, h))
                    }
                    (IrBinOp::Le, true) | (IrBinOp::Ge, false) => Some((0, lit)),
                    (IrBinOp::Gt, true) | (IrBinOp::Lt, false) => {
                        lit.checked_add(1).map(|l| (l, u16::MAX))
                    }
                    (IrBinOp::Ge, true) | (IrBinOp::Le, false) => Some((lit, u16::MAX)),
                    _ => unreachable!("ordering ops only"),
                };
                let Some((lo, hi)) = interval else {
                    continue;
                };
                if jump_on_cond {
                    TOp::GuardInBr {
                        word,
                        lo,
                        hi,
                        target,
                    }
                } else {
                    TOp::GuardOutBr {
                        word,
                        lo,
                        hi,
                        target,
                    }
                }
            }
        };
        // Drop the compare and branch; peel the trailing single-use
        // definitions that fed only this window.
        let mut keep = k - 2;
        while keep > 0 {
            match chunk[keep - 1] {
                TOp::Const { dst, .. } | TOp::LoadWord { dst, .. }
                    if (dst == a || dst == b) && used_once(dst) =>
                {
                    keep -= 1;
                }
                _ => break,
            }
        }
        chunk.truncate(keep);
        chunk.push(fused);
    }
    sweep_dead_definitions(chunks);
}

/// Removes `Const`/`LoadWord` definitions no surviving instruction reads
/// (to fixpoint): a load shared by several compares goes dead only once
/// guard fusion has rewritten *every* consumer. Sound because both ops
/// are pure and registers are single-assignment.
fn sweep_dead_definitions(chunks: &mut [Vec<TOp>]) {
    loop {
        let mut read = std::collections::HashSet::new();
        for chunk in chunks.iter() {
            for op in chunk {
                match *op {
                    TOp::LoadInd { index, .. } => {
                        read.insert(index);
                    }
                    TOp::Bin { a, b, .. } => {
                        read.insert(a);
                        read.insert(b);
                    }
                    TOp::BranchIf { cond, .. } | TOp::BranchIfNot { cond, .. } => {
                        read.insert(cond);
                    }
                    TOp::ReturnReg { reg } => {
                        read.insert(reg);
                    }
                    _ => {}
                }
            }
        }
        let mut removed = false;
        for chunk in chunks.iter_mut() {
            chunk.retain(|op| match *op {
                TOp::Const { dst, .. } | TOp::LoadWord { dst, .. } => {
                    let live = read.contains(&dst);
                    removed |= !live;
                    live
                }
                _ => true,
            });
        }
        if !removed {
            break;
        }
    }
}

/// Per-register consumer counts (operand positions only, definitions
/// excluded), including terminator uses.
fn register_use_counts(ir: &IrProgram) -> Vec<u32> {
    let mut uses = vec![0u32; ir.reg_count as usize];
    let bump = |r: crate::ir::Reg, uses: &mut Vec<u32>| {
        uses[usize::from(r.0)] += 1;
    };
    for b in &ir.blocks {
        for op in &b.ops {
            match *op {
                crate::ir::Op::LoadInd { index, .. } => bump(index, &mut uses),
                crate::ir::Op::Bin { a, b, .. } => {
                    bump(a, &mut uses);
                    bump(b, &mut uses);
                }
                _ => {}
            }
        }
        match b.term {
            Terminator::Branch { cond, .. } => bump(cond, &mut uses),
            Terminator::ReturnReg(r) => bump(r, &mut uses),
            _ => {}
        }
    }
    uses
}

/// Extracts the leading run of `GuardNeBr`-to-reject tests: the common
/// CAND-chain prefix [`crate::set::IrFilterSet`] shares across filters.
fn guard_prefix(code: &[TOp]) -> (Vec<(u16, u16)>, usize) {
    let mut prefix = Vec::new();
    let mut i = 0usize;
    while let Some(&TOp::GuardNeBr { word, lit, target }) = code.get(i) {
        if !matches!(
            code.get(target as usize),
            Some(TOp::Return { accept: false })
        ) {
            break;
        }
        prefix.push((word, lit));
        i += 1;
    }
    (prefix, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::program::Assembler;
    use pf_filter::samples;
    use pf_filter::word::BinaryOp;

    #[test]
    fn fig_3_9_fuses_to_guards() {
        let f = IrFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        // Two CAND guards fuse; the final EQ feeds the verdict directly.
        let guards = f
            .code
            .iter()
            .filter(|o| matches!(o, TOp::GuardNeBr { .. } | TOp::GuardEqBr { .. }))
            .count();
        assert_eq!(guards, 2, "{}", f.disassemble());
        assert_eq!(f.guard_prefix(), &[(8, 35), (7, 0)]);
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        assert!(f.eval(PacketView::new(&pkt)));
        let pkt = samples::pup_packet_3mb(2, 0, 36, 1);
        assert!(!f.eval(PacketView::new(&pkt)));
    }

    #[test]
    fn range_filter_fuses_to_single_merged_interval_guard() {
        // GE 100 and LE 200 each fuse to a one-sided GuardOutBr; the
        // post-lower peephole intersects them into one InRange check.
        let f = IrFilter::compile(samples::socket_range_filter(10, 100, 200)).unwrap();
        let outs: Vec<TOp> = f
            .code
            .iter()
            .copied()
            .filter(|o| matches!(o, TOp::GuardOutBr { .. } | TOp::GuardInBr { .. }))
            .collect();
        assert_eq!(outs.len(), 1, "{}", f.disassemble());
        let TOp::GuardOutBr { word, lo, hi, .. } = outs[0] else {
            panic!("expected GuardOutBr: {}", f.disassemble());
        };
        assert_eq!((word, lo, hi), (8, 100, 200), "{}", f.disassemble());
        let checked = CheckedInterpreter::default();
        let prog = samples::socket_range_filter(10, 100, 200);
        for et in [2u16, 3] {
            for sock in [0u16, 99, 100, 150, 200, 201, 65535] {
                let pkt = samples::pup_packet_3mb(et, 0, sock, 1);
                let view = PacketView::new(&pkt);
                assert_eq!(
                    f.eval(view),
                    checked.eval(&prog, view),
                    "et={et} sock={sock}"
                );
                assert_eq!(f.eval(view), et == 2 && (100..=200).contains(&sock));
            }
        }
    }

    #[test]
    fn short_packet_falls_back_to_checked() {
        let f = IrFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        let (accept, stats) = f.eval_with_stats(PacketView::new(&[0x11, 0x22]));
        assert!(!accept);
        assert!(stats.fell_back);
    }

    #[test]
    fn short_circuit_accept_survives_short_packet() {
        // COR accepts before the out-of-bounds load; fallback preserves it.
        let p = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 0x1111)
            .pushword(40)
            .finish();
        let f = IrFilter::compile(p).unwrap();
        assert!(f.eval(PacketView::new(&[0x11, 0x11])));
    }

    #[test]
    fn empty_program_accepts() {
        let f = IrFilter::compile(pf_filter::program::FilterProgram::empty(0)).unwrap();
        assert!(f.eval(PacketView::new(&[])));
        assert!(f.eval(PacketView::new(&[1, 2, 3])));
    }

    #[test]
    fn constant_filter_compiles_to_single_return() {
        let p = Assembler::new(0)
            .pushlit(5)
            .pushlit_op(BinaryOp::Eq, 5)
            .finish();
        let f = IrFilter::compile(p).unwrap();
        assert_eq!(f.code_len(), 1, "{}", f.disassemble());
        assert!(f.eval(PacketView::new(&[])));
    }

    #[test]
    fn fig_3_8_matches_checked_interpreter() {
        let prog = samples::fig_3_8_pup_type_range();
        let f = IrFilter::compile(prog.clone()).unwrap();
        let checked = CheckedInterpreter::default();
        for ethertype in [2u16, 3] {
            for ptype in [0u8, 1, 50, 100, 101] {
                let pkt = samples::pup_packet_3mb_typed(ethertype, ptype, 0, 35, 1);
                let view = PacketView::new(&pkt);
                assert_eq!(checked.eval(&prog, view), f.eval(view));
            }
        }
    }
}
