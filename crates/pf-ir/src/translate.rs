//! Translation from validated CSPF stack programs to the CFG IR.
//!
//! The stack language has no branches, so at every instruction the stack
//! depth is statically exact — [`ValidatedProgram`] already proved it. That
//! makes translation a single forward pass with a *symbolic* stack of
//! registers: each push allocates a fresh register, each operator pops two
//! registers and defines one.
//!
//! The interesting part is the short-circuit operators. `T2 op-sc T1`
//! computes `r := (T2 == T1)` and either terminates the whole filter with a
//! fixed verdict or continues. Here that becomes an `eq` plus a
//! conditional branch: one side goes to a shared accept/reject return
//! block, the other to a fresh continuation block. When evaluation
//! *continues*, `r`'s value is statically known (a continuing `COR` implies
//! `r = 0`, a continuing `CAND` implies `r = 1`), so the paper-style
//! continuation push is emitted as a **constant** — which is what lets the
//! optimizer fold the dead `TRUE`s a CAND chain leaves behind.
//!
//! Both [`ShortCircuitStyle`]s are supported: `Historical` simply pushes
//! nothing on continuation, exactly like the reference interpreters.

use crate::ir::{Block, BlockId, IrBinOp, IrProgram, Op, Reg, Terminator};
use pf_filter::interp::ShortCircuitStyle;
use pf_filter::validate::ValidatedProgram;
use pf_filter::word::{Instr, StackAction};

/// Placeholder id for the shared accept block, patched at the end so the
/// return blocks sort after every chain block in layout order.
const ACCEPT: BlockId = BlockId(u32::MAX - 1);
/// Placeholder id for the shared reject block.
const REJECT: BlockId = BlockId(u32::MAX);

/// Translates a validated program into an (unoptimized) CFG.
///
/// Translation cannot fail: validation already rejected every program whose
/// stack traffic or encoding is malformed, and the dynamic faults that
/// remain (indirect loads out of bounds, zero divisors) are represented as
/// checked IR operations.
///
/// The caller is responsible for the short-packet precondition: the
/// generated `LoadWord`s are only safe when
/// `packet.word_len() >= validated.min_packet_words()` (the execution
/// engine falls back to the checked interpreter below that, exactly like
/// [`ValidatedProgram::eval`]).
pub fn translate(validated: &ValidatedProgram) -> IrProgram {
    let words = validated.program().words();
    let paper = validated.config().short_circuit == ShortCircuitStyle::Paper;

    // The historical "zero-length filter accepts everything" rule.
    if words.is_empty() {
        return IrProgram {
            blocks: vec![Block {
                ops: Vec::new(),
                term: Terminator::Return(true),
            }],
            reg_count: 0,
        };
    }

    let mut blocks: Vec<Block> = Vec::new();
    let mut ops: Vec<Op> = Vec::new();
    let mut stack: Vec<Reg> = Vec::new();
    let mut next_reg: u32 = 0;
    let fresh = |next_reg: &mut u32| {
        let r = Reg(u16::try_from(*next_reg).expect("register count fits u16"));
        *next_reg += 1;
        r
    };

    let mut pc = 0usize;
    while pc < words.len() {
        let instr = Instr::decode(words[pc]).expect("validated program decodes");
        pc += 1;

        match instr.action {
            StackAction::NoPush => {}
            StackAction::PushLit => {
                let lit = words[pc];
                pc += 1;
                let dst = fresh(&mut next_reg);
                ops.push(Op::Const { dst, value: lit });
                stack.push(dst);
            }
            StackAction::PushZero
            | StackAction::PushOne
            | StackAction::PushFFFF
            | StackAction::PushFF00
            | StackAction::Push00FF => {
                let value = match instr.action {
                    StackAction::PushZero => 0,
                    StackAction::PushOne => 1,
                    StackAction::PushFFFF => 0xFFFF,
                    StackAction::PushFF00 => 0xFF00,
                    StackAction::Push00FF => 0x00FF,
                    _ => unreachable!(),
                };
                let dst = fresh(&mut next_reg);
                ops.push(Op::Const { dst, value });
                stack.push(dst);
            }
            StackAction::PushWord(n) => {
                let dst = fresh(&mut next_reg);
                ops.push(Op::LoadWord {
                    dst,
                    index: u16::from(n),
                });
                stack.push(dst);
            }
            StackAction::PushInd => {
                let index = stack.pop().expect("validated stack depth");
                let dst = fresh(&mut next_reg);
                ops.push(Op::LoadInd { dst, index });
                stack.push(dst);
            }
        }

        if instr.op.pops() {
            let b = stack.pop().expect("validated stack depth");
            let a = stack.pop().expect("validated stack depth");
            if let Some((terminate_when, verdict)) = instr.op.short_circuit_rule() {
                // r := (T2 == T1); terminate with `verdict` when
                // r == terminate_when, else fall into the continuation.
                let r = fresh(&mut next_reg);
                ops.push(Op::Bin {
                    dst: r,
                    op: IrBinOp::Eq,
                    a,
                    b,
                });
                let exit = if verdict { ACCEPT } else { REJECT };
                let cont = BlockId(blocks.len() as u32 + 1);
                let term = if terminate_when {
                    Terminator::Branch {
                        cond: r,
                        if_true: exit,
                        if_false: cont,
                    }
                } else {
                    Terminator::Branch {
                        cond: r,
                        if_true: cont,
                        if_false: exit,
                    }
                };
                blocks.push(Block {
                    ops: std::mem::take(&mut ops),
                    term,
                });
                if paper {
                    // Continuing implies r == !terminate_when, a constant.
                    let dst = fresh(&mut next_reg);
                    ops.push(Op::Const {
                        dst,
                        value: u16::from(!terminate_when),
                    });
                    stack.push(dst);
                }
            } else {
                let op = IrBinOp::from_stack_op(instr.op).expect("non-NOP operator");
                let dst = fresh(&mut next_reg);
                ops.push(Op::Bin { dst, op, a, b });
                stack.push(dst);
            }
        }
    }

    // End of program: accept iff a non-empty stack's top is non-zero.
    let term = match stack.last() {
        Some(&top) => Terminator::ReturnReg(top),
        None => Terminator::Return(false),
    };
    blocks.push(Block { ops, term });

    patch_return_blocks(&mut blocks);
    IrProgram {
        blocks,
        reg_count: next_reg,
    }
}

/// Replaces the `ACCEPT`/`REJECT` placeholders with real blocks appended
/// after the chain, so layout order keeps continuations as fallthroughs.
fn patch_return_blocks(blocks: &mut Vec<Block>) {
    let mut accept: Option<BlockId> = None;
    let mut reject: Option<BlockId> = None;
    let mut resolve = |placeholder: BlockId, blocks: &mut Vec<Block>| -> BlockId {
        let slot = if placeholder == ACCEPT {
            &mut accept
        } else {
            &mut reject
        };
        *slot.get_or_insert_with(|| {
            let id = BlockId(blocks.len() as u32);
            blocks.push(Block {
                ops: Vec::new(),
                term: Terminator::Return(placeholder == ACCEPT),
            });
            id
        })
    };
    for i in 0..blocks.len() {
        let term = blocks[i].term;
        if let Terminator::Branch {
            cond,
            if_true,
            if_false,
        } = term
        {
            let if_true = if if_true >= ACCEPT {
                resolve(if_true, blocks)
            } else {
                if_true
            };
            let if_false = if if_false >= ACCEPT {
                resolve(if_false, blocks)
            } else {
                if_false
            };
            blocks[i].term = Terminator::Branch {
                cond,
                if_true,
                if_false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::interp::{Dialect, InterpConfig};
    use pf_filter::program::{Assembler, FilterProgram};
    use pf_filter::samples;
    use pf_filter::word::BinaryOp;

    fn ir_of(program: FilterProgram) -> IrProgram {
        let v = ValidatedProgram::new(program).unwrap();
        translate(&v)
    }

    #[test]
    fn empty_program_is_single_accept() {
        let ir = ir_of(FilterProgram::empty(0));
        assert_eq!(ir.blocks.len(), 1);
        assert_eq!(ir.blocks[0].term, Terminator::Return(true));
    }

    #[test]
    fn straight_line_program_is_one_block() {
        let ir = ir_of(samples::fig_3_8_pup_type_range());
        // No short-circuit operators → a single block ending in ret.
        assert_eq!(ir.blocks.len(), 1);
        assert!(matches!(ir.blocks[0].term, Terminator::ReturnReg(_)));
    }

    #[test]
    fn cand_chain_creates_branches_to_shared_reject() {
        let ir = ir_of(samples::fig_3_9_pup_socket_35());
        // Two CANDs → two chain blocks + final block + one shared reject.
        assert_eq!(ir.blocks.len(), 4);
        let branches: Vec<_> = ir
            .blocks
            .iter()
            .filter_map(|b| match b.term {
                Terminator::Branch { if_false, .. } => Some(if_false),
                _ => None,
            })
            .collect();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0], branches[1], "reject block is shared");
        let reject = branches[0];
        assert_eq!(ir.blocks[reject.0 as usize].term, Terminator::Return(false));
    }

    #[test]
    fn paper_continuation_pushes_known_constant() {
        // A continuing CAND pushes TRUE under paper style; the continuation
        // block must therefore start with `Const 1`.
        let p = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cand, 7)
            .finish();
        let ir = ir_of(p);
        let cont = &ir.blocks[1];
        assert!(
            matches!(cont.ops[0], Op::Const { value: 1, .. }),
            "continuation starts with Const 1, got {:?}",
            cont.ops
        );
        // And the verdict is that constant.
        assert!(matches!(cont.term, Terminator::ReturnReg(_)));
    }

    #[test]
    fn historical_continuation_pushes_nothing() {
        let cfg = InterpConfig {
            short_circuit: pf_filter::interp::ShortCircuitStyle::Historical,
            ..Default::default()
        };
        let p = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cand, 7)
            .finish();
        let v = ValidatedProgram::with_config(p, cfg).unwrap();
        let ir = translate(&v);
        let cont = &ir.blocks[1];
        assert!(cont.ops.is_empty());
        // Empty stack at exit rejects.
        assert_eq!(cont.term, Terminator::Return(false));
    }

    #[test]
    fn indirect_push_becomes_checked_load() {
        let cfg = InterpConfig {
            dialect: Dialect::Extended,
            ..Default::default()
        };
        let p = Assembler::new(0)
            .pushword(0)
            .push(StackAction::PushInd)
            .finish();
        let v = ValidatedProgram::with_config(p, cfg).unwrap();
        let ir = translate(&v);
        assert!(ir.blocks[0]
            .ops
            .iter()
            .any(|o| matches!(o, Op::LoadInd { .. })));
    }
}
