//! A set of IR-compiled filters with cross-filter common-prefix merging.
//!
//! Demultiplexing filters overwhelmingly share structure: every BSP port's
//! filter starts with the same `EtherType == Pup` and `DstSocketHi == 0`
//! guards before the per-port socket test. Compiled independently, a set of
//! N such filters re-executes the shared guards N times per packet.
//!
//! [`IrFilterSet`] exploits the compiler's [`IrFilter::guard_prefix`]: the
//! leading word-equality guards of every member are *interned* into a
//! shared test table, and per packet each distinct `(word, literal)` test
//! is evaluated **once** — a generation-stamped memo keeps results across
//! members without any per-packet clearing. Members then run only their
//! post-prefix bodies. Filters whose prefixes overlap (the common case)
//! thus share work exactly where the paper's decision-table proposal (§7)
//! shares it, while arbitrary filters — including programs that fail
//! validation, whose runtime behavior the checked interpreter defines —
//! remain fully supported.
//!
//! Match results are priority-ordered with insertion-order ties, exactly
//! like sequential demultiplexing and [`pf_filter::dtree::FilterSet`].
//!
//! [`ShardedVnSet`] goes further on both axes: members are rewritten by
//! the [`crate::vn`] value-numbering pass (sharing *every* word-equality
//! test, not just leading guards) and indexed by a guard-keyed shard map,
//! so a packet walks only the members whose required discriminating test
//! its first distinguishing word selects.

use crate::exec::IrFilter;
use crate::vn::{eval_vn, required_tests, value_number, TestTable, VnProgram, VnSetStats};
use pf_filter::dtree::FilterId;
use pf_filter::interp::{CheckedInterpreter, InterpConfig};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use std::collections::{HashMap, HashSet};

/// Counters from one whole-set evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IrSetStats {
    /// Members whose bodies (or fallbacks) were evaluated.
    pub filters_evaluated: u32,
    /// Interned prefix tests evaluated fresh against the packet.
    pub tests_evaluated: u32,
    /// Interned prefix tests answered from the per-packet memo.
    pub tests_memoized: u32,
    /// Threaded-code (or fallback interpreter) instructions executed,
    /// including one per fresh prefix test.
    pub ops_executed: u32,
}

/// How a member is executed.
#[derive(Debug)]
enum MemberKind {
    /// Compiled to threaded code; `prefix` indexes the shared test table.
    Compiled {
        filter: IrFilter,
        prefix: Vec<usize>,
    },
    /// Failed validation; the checked interpreter defines its behavior
    /// (it may still accept packets — a short-circuit accept can precede
    /// the defect).
    Checked(FilterProgram),
}

#[derive(Debug)]
struct Member {
    id: FilterId,
    priority: u8,
    seq: u64,
    kind: MemberKind,
}

/// A set of active filters compiled to the IR engine.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
/// use pf_ir::set::IrFilterSet;
///
/// let mut set = IrFilterSet::new();
/// set.insert(7, samples::pup_socket_filter(10, 0, 35));
/// set.insert(9, samples::pup_socket_filter(10, 0, 44));
/// let pkt = samples::pup_packet_3mb(2, 0, 44, 1);
/// assert_eq!(set.first_match(PacketView::new(&pkt)), Some(9));
/// // The two filters share their `DstSocketHi == 0` guard.
/// assert_eq!(set.shared_tests(), 1);
/// ```
#[derive(Debug, Default)]
pub struct IrFilterSet {
    config: InterpConfig,
    next_seq: u64,
    /// Members sorted by (priority desc, seq asc) — match order.
    members: Vec<Member>,
    /// Interned `(word, literal)` equality tests.
    tests: Vec<(u16, u16)>,
    test_ids: HashMap<(u16, u16), usize>,
    /// Per-test memo: (generation, result). A stale generation means
    /// "not yet evaluated for this packet".
    memo: Vec<(u64, bool)>,
    generation: u64,
    /// Reused match-result buffer: evaluating a packet allocates nothing.
    scratch: Vec<FilterId>,
}

impl IrFilterSet {
    /// An empty set under the default configuration (classic dialect,
    /// paper-style short circuits) — the kernel device's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set under an explicit interpreter configuration.
    pub fn with_config(config: InterpConfig) -> Self {
        IrFilterSet {
            config,
            ..Default::default()
        }
    }

    /// Number of filters in the set.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of distinct interned prefix tests.
    pub fn test_count(&self) -> usize {
        self.tests.len()
    }

    /// Number of interned tests used by more than one member — the
    /// cross-filter work the set shares per packet.
    pub fn shared_tests(&self) -> usize {
        let mut counts = vec![0u32; self.tests.len()];
        for m in &self.members {
            if let MemberKind::Compiled { prefix, .. } = &m.kind {
                for &t in prefix {
                    counts[t] += 1;
                }
            }
        }
        counts.iter().filter(|&&c| c > 1).count()
    }

    /// How many members compiled to threaded code (the rest run on the
    /// checked interpreter).
    pub fn compiled(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m.kind, MemberKind::Compiled { .. }))
            .count()
    }

    /// Inserts (or replaces) the filter for `id`.
    pub fn insert(&mut self, id: FilterId, program: FilterProgram) {
        self.remove(id);
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = program.priority();
        let kind = match IrFilter::compile_with_config(program.clone(), self.config) {
            Ok(filter) => {
                let prefix = filter
                    .guard_prefix()
                    .iter()
                    .map(|&test| self.intern(test))
                    .collect();
                MemberKind::Compiled { filter, prefix }
            }
            Err(_) => MemberKind::Checked(program),
        };
        let member = Member {
            id,
            priority,
            seq,
            kind,
        };
        let at = self.members.partition_point(|m| {
            (m.priority, std::cmp::Reverse(m.seq)) >= (priority, std::cmp::Reverse(seq))
        });
        self.members.insert(at, member);
    }

    /// Removes the filter for `id`; `true` if it was present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let before = self.members.len();
        self.members.retain(|m| m.id != id);
        let removed = before != self.members.len();
        if removed {
            self.gc_tests();
        }
        removed
    }

    /// Rebuilds the interned test table from the surviving members, so
    /// churn never strands dead tests (`test_count` always matches what a
    /// fresh rebuild would intern).
    fn gc_tests(&mut self) {
        let old_tests = std::mem::take(&mut self.tests);
        let Self {
            members,
            tests,
            test_ids,
            memo,
            ..
        } = self;
        test_ids.clear();
        memo.clear();
        for m in members {
            if let MemberKind::Compiled { prefix, .. } = &mut m.kind {
                for t in prefix.iter_mut() {
                    let test = old_tests[*t];
                    *t = *test_ids.entry(test).or_insert_with(|| {
                        tests.push(test);
                        // Stamp 0 is permanently stale: the generation
                        // counter increments before every evaluation, so
                        // it is at least 1 by the first memo check.
                        memo.push((0, false));
                        tests.len() - 1
                    });
                }
            }
        }
    }

    fn intern(&mut self, test: (u16, u16)) -> usize {
        if let Some(&t) = self.test_ids.get(&test) {
            return t;
        }
        let t = self.tests.len();
        self.tests.push(test);
        self.test_ids.insert(test, t);
        self.memo.push((0, false));
        t
    }

    /// Ids of every filter accepting the packet, in match order (priority
    /// descending, insertion order within a priority).
    ///
    /// Takes `&mut self` because the per-packet test memo lives in the set.
    pub fn matches(&mut self, packet: PacketView<'_>) -> Vec<FilterId> {
        self.matches_with_stats(packet).0.to_vec()
    }

    /// The first (highest-priority) accepting filter, if any.
    pub fn first_match(&mut self, packet: PacketView<'_>) -> Option<FilterId> {
        let Self {
            members,
            tests,
            memo,
            generation,
            config,
            ..
        } = self;
        *generation += 1;
        let mut stats = IrSetStats::default();
        members
            .iter()
            .find(|m| eval_member(m, packet, tests, memo, *generation, *config, &mut stats))
            .map(|m| m.id)
    }

    /// [`IrFilterSet::matches`] plus execution counters. The returned
    /// slice borrows the set's reused scratch buffer — no per-packet
    /// allocation — and is valid until the next evaluation.
    pub fn matches_with_stats(&mut self, packet: PacketView<'_>) -> (&[FilterId], IrSetStats) {
        let Self {
            members,
            tests,
            memo,
            generation,
            config,
            scratch,
            ..
        } = self;
        *generation += 1;
        scratch.clear();
        let mut stats = IrSetStats::default();
        scratch.extend(
            members
                .iter()
                .filter(|m| eval_member(m, packet, tests, memo, *generation, *config, &mut stats))
                .map(|m| m.id),
        );
        (scratch, stats)
    }
}

/// Evaluates one member, sharing prefix-test results through the memo.
fn eval_member(
    m: &Member,
    packet: PacketView<'_>,
    tests: &[(u16, u16)],
    memo: &mut [(u64, bool)],
    generation: u64,
    config: InterpConfig,
    stats: &mut IrSetStats,
) -> bool {
    stats.filters_evaluated += 1;
    match &m.kind {
        MemberKind::Checked(program) => {
            let (accept, s) = CheckedInterpreter::new(config).eval_with_stats(program, packet);
            stats.ops_executed += s.instructions;
            accept
        }
        MemberKind::Compiled { filter, prefix } => {
            if packet.word_len() < filter.min_packet_words() {
                // Short packet: the member's own checked fallback defines
                // the semantics; prefix sharing does not apply.
                let (accept, s) = filter.eval_with_stats(packet);
                stats.ops_executed += s.ops_executed;
                return accept;
            }
            for &t in prefix {
                let (stamp, result) = memo[t];
                let pass = if stamp == generation {
                    stats.tests_memoized += 1;
                    result
                } else {
                    let (word, lit) = tests[t];
                    let r = packet.word(usize::from(word)) == Some(lit);
                    memo[t] = (generation, r);
                    stats.tests_evaluated += 1;
                    stats.ops_executed += 1;
                    r
                };
                if !pass {
                    return false;
                }
            }
            let (accept, ops) = filter.eval_body(packet);
            stats.ops_executed += ops;
            accept
        }
    }
}

/// How a sharded-set member is executed.
#[derive(Debug)]
enum VnMemberKind {
    /// Value-numbered against the set's shared [`TestTable`]. `required`
    /// holds the resolved `(word, literal)` tests the compiled path must
    /// pass to accept — the shard index's soundness witness.
    Compiled {
        filter: IrFilter,
        code: VnProgram,
        required: Vec<(u16, u16)>,
    },
    /// Failed validation; the checked interpreter defines its behavior.
    Checked(FilterProgram),
}

#[derive(Debug)]
struct VnMember {
    id: FilterId,
    priority: u8,
    seq: u64,
    kind: VnMemberKind,
}

/// A sharded, value-numbered demultiplexing set: set-level cross-filter
/// CSE plus a guard-keyed shard index.
///
/// Two mechanisms compose:
///
/// * **Value numbering** ([`crate::vn`]): every member's word-equality
///   tests — leading guards *and* mid-program/terminal compares — are
///   interned into one shared, lazily-memoized table, so each distinct
///   `(word, literal)` test runs at most once per packet set-wide.
/// * **Sharding**: members are partitioned by their required test on the
///   set's most discriminating packet word (chosen automatically — the
///   word the most members require, e.g. the destination socket across a
///   figure 3-9 population, or the ethertype across a protocol mix).
///   A packet walks only the shard its word selects plus the unsharded
///   residue, skipping every other member outright.
///
/// Skipping is sound because a skipped member's compiled path *requires*
/// `packet[word] == lit` for some other literal ([`crate::vn::required_tests`]);
/// packets too short for every sharded member's compiled path take a slow
/// path that walks all members, preserving the checked-fallback semantics
/// for short packets.
///
/// Match results are priority-ordered with insertion-order ties, exactly
/// like every other engine.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
/// use pf_ir::set::ShardedVnSet;
///
/// let mut set = ShardedVnSet::new();
/// set.insert(7, samples::pup_socket_filter(10, 0, 35));
/// set.insert(9, samples::pup_socket_filter(10, 0, 44));
/// let pkt = samples::pup_packet_3mb(2, 0, 44, 1);
/// assert_eq!(set.first_match(PacketView::new(&pkt)), Some(9));
/// // The socket word discriminates: each member sits in its own shard.
/// assert_eq!(set.shard_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ShardedVnSet {
    config: InterpConfig,
    next_seq: u64,
    /// Members sorted by (priority desc, seq asc) — match order.
    members: Vec<VnMember>,
    table: TestTable,
    /// The discriminating packet word the shard index keys on.
    shard_word: Option<u16>,
    /// Literal → member indices (ascending, i.e. match order).
    shards: HashMap<u16, Vec<usize>>,
    /// Member indices walked for every packet (ascending).
    residue: Vec<usize>,
    /// word → (members requiring a test on it, literal → refcount):
    /// the exact shard-word statistic, maintained incrementally so an
    /// insert or remove re-scores one member, not the whole population.
    word_stats: HashMap<u16, (u32, HashMap<u16, u32>)>,
    /// Full index repartitions performed (see
    /// [`ShardedVnSet::repartition_count`]).
    repartitions: u64,
    /// Packets shorter than this (in words) take the slow path that walks
    /// all members: a sharded member's compiled-path requirement says
    /// nothing about its short-packet checked fallback.
    fast_min_words: usize,
    /// Reused match-result buffer: evaluating a packet allocates nothing.
    scratch: Vec<FilterId>,
    /// Reused merged-walk-order buffer for the batch path.
    idx_scratch: Vec<usize>,
    /// Table compactions performed (see [`ShardedVnSet::gc_count`]).
    gc_count: u64,
}

/// Below this table size a compaction is too cheap to be worth deferring;
/// GC runs eagerly so tiny sets never carry dead tests.
const GC_MIN_TABLE: usize = 16;

impl ShardedVnSet {
    /// An empty set under the default configuration (classic dialect,
    /// paper-style short circuits) — the kernel device's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set under an explicit interpreter configuration.
    pub fn with_config(config: InterpConfig) -> Self {
        ShardedVnSet {
            config,
            ..Default::default()
        }
    }

    /// Number of filters in the set.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of distinct interned tests still consulted by some member.
    ///
    /// Removals defer table compaction (see [`ShardedVnSet::remove`]), so
    /// this counts *live* tests; [`ShardedVnSet::raw_test_count`] exposes
    /// the physical table size including not-yet-collected dead entries.
    pub fn test_count(&self) -> usize {
        self.live_tests().iter().filter(|&&l| l).count()
    }

    /// Physical size of the interned test table, dead entries included.
    pub fn raw_test_count(&self) -> usize {
        self.table.len()
    }

    /// How many deferred table compactions removals have triggered.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    /// Liveness bitmap over the interned test table.
    fn live_tests(&self) -> Vec<bool> {
        let mut live = vec![false; self.table.len()];
        for m in &self.members {
            if let VnMemberKind::Compiled { code, .. } = &m.kind {
                for t in code.tests_used() {
                    live[t as usize] = true;
                }
            }
        }
        live
    }

    /// Number of interned tests used by more than one member — the
    /// cross-filter work value numbering shares per packet.
    pub fn shared_tests(&self) -> usize {
        let mut counts = vec![0u32; self.table.len()];
        for m in &self.members {
            if let VnMemberKind::Compiled { code, .. } = &m.kind {
                for t in code.tests_used() {
                    counts[t as usize] += 1;
                }
            }
        }
        counts.iter().filter(|&&c| c > 1).count()
    }

    /// How many members compiled to value-numbered threaded code (the
    /// rest run on the checked interpreter, in the residue).
    pub fn compiled(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m.kind, VnMemberKind::Compiled { .. }))
            .count()
    }

    /// The packet word the shard index keys on, if any.
    pub fn shard_word(&self) -> Option<u16> {
        self.shard_word
    }

    /// Number of shards (distinct literals of the discriminating word).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Members in no shard, walked for every packet.
    pub fn residue_len(&self) -> usize {
        self.residue.len()
    }

    /// Full index repartitions performed. A repartition re-homes every
    /// member and happens only when the *discriminating word itself*
    /// flips (the population's shape changed) — steady insert/remove
    /// churn on a stable population must never trigger one.
    pub fn repartition_count(&self) -> u64 {
        self.repartitions
    }

    /// Inserts (or replaces) the filter for `id`.
    ///
    /// Index maintenance is incremental: the member's required tests
    /// adjust the persistent word statistics, and unless the best
    /// discriminating word flipped (which forces a counted repartition),
    /// only the member's own shard is touched.
    pub fn insert(&mut self, id: FilterId, program: FilterProgram) {
        self.remove(id);
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = program.priority();
        let kind = match IrFilter::compile_with_config(program.clone(), self.config) {
            Ok(filter) => {
                let code = value_number(&filter, &mut self.table);
                let required = required_tests(&code)
                    .into_iter()
                    .map(|t| self.table.test(t))
                    .collect();
                VnMemberKind::Compiled {
                    filter,
                    code,
                    required,
                }
            }
            Err(_) => VnMemberKind::Checked(program),
        };
        if let VnMemberKind::Compiled { required, .. } = &kind {
            score_insert(&mut self.word_stats, required);
        }
        let member = VnMember {
            id,
            priority,
            seq,
            kind,
        };
        let at = self.members.partition_point(|m| {
            (m.priority, std::cmp::Reverse(m.seq)) >= (priority, std::cmp::Reverse(seq))
        });
        self.members.insert(at, member);
        if self.best_word() != self.shard_word {
            self.repartition();
        } else {
            // Later members' indices all shifted up by one.
            for v in self.shards.values_mut() {
                for x in v.iter_mut() {
                    if *x >= at {
                        *x += 1;
                    }
                }
            }
            for x in self.residue.iter_mut() {
                if *x >= at {
                    *x += 1;
                }
            }
            self.place(at);
        }
    }

    /// Removes the filter for `id`; `true` if it was present.
    ///
    /// Table compaction is *deferred*: a remove strands its private tests
    /// as dead entries (harmless — never consulted, memo never touched)
    /// and the table is only compacted once dead entries outnumber live
    /// ones. Index maintenance is incremental: the member leaves its own
    /// shard, and a full repartition happens only if the discriminating
    /// word flipped.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let Some(p) = self.members.iter().position(|m| m.id == id) else {
            return false;
        };
        let member = self.members.remove(p);
        if let VnMemberKind::Compiled { required, .. } = &member.kind {
            score_remove(&mut self.word_stats, required);
        }
        self.maybe_gc();
        if self.best_word() != self.shard_word {
            self.repartition();
        } else {
            self.unplace(p, &member);
            for v in self.shards.values_mut() {
                for x in v.iter_mut() {
                    if *x > p {
                        *x -= 1;
                    }
                }
            }
            for x in self.residue.iter_mut() {
                if *x > p {
                    *x -= 1;
                }
            }
        }
        true
    }

    /// The word the statistics currently favor: required by the most
    /// members, ties broken toward more distinct literals, then the
    /// lowest word — identical to what a from-scratch rebuild picks.
    fn best_word(&self) -> Option<u16> {
        self.word_stats
            .iter()
            .map(|(&word, (count, lits))| (word, *count, lits.len()))
            .max_by_key(|&(word, count, lits)| (count, lits, std::cmp::Reverse(word)))
            .map(|(word, ..)| word)
    }

    /// Homes the member at index `at` (just inserted; all other indices
    /// already adjusted) into its shard or the residue.
    fn place(&mut self, at: usize) {
        let m = &self.members[at];
        if let (
            VnMemberKind::Compiled {
                filter, required, ..
            },
            Some(d),
        ) = (&m.kind, self.shard_word)
        {
            if let Some(&(_, lit)) = required.iter().find(|&&(word, _)| word == d) {
                let v = self.shards.entry(lit).or_default();
                let pos = v.partition_point(|&x| x < at);
                v.insert(pos, at);
                self.fast_min_words = self.fast_min_words.max(filter.min_packet_words());
                return;
            }
        }
        let pos = self.residue.partition_point(|&x| x < at);
        self.residue.insert(pos, at);
    }

    /// Removes index `p` (the just-removed `member`'s old home) from its
    /// shard or the residue. `fast_min_words` is left as-is — possibly
    /// conservatively high, which only routes more packets to the
    /// walk-everything slow path; a repartition recomputes it exactly.
    fn unplace(&mut self, p: usize, member: &VnMember) {
        if let (VnMemberKind::Compiled { required, .. }, Some(d)) = (&member.kind, self.shard_word)
        {
            if let Some(&(_, lit)) = required.iter().find(|&&(word, _)| word == d) {
                if let Some(v) = self.shards.get_mut(&lit) {
                    let pos = v.partition_point(|&x| x < p);
                    if v.get(pos) == Some(&p) {
                        v.remove(pos);
                    }
                    if v.is_empty() {
                        self.shards.remove(&lit);
                    }
                }
                return;
            }
        }
        let pos = self.residue.partition_point(|&x| x < p);
        if self.residue.get(pos) == Some(&p) {
            self.residue.remove(pos);
        }
    }

    /// Compacts the shared table if the dead-test ratio crossed the
    /// threshold (strictly more dead than live, and at least `GC_MIN_TABLE`
    /// entries — small tables compact eagerly since a rebuild is trivial).
    fn maybe_gc(&mut self) {
        let live = self.live_tests();
        let live_n = live.iter().filter(|&&l| l).count();
        let total = self.table.len();
        let dead = total - live_n;
        if dead == 0 {
            return;
        }
        if total < GC_MIN_TABLE || dead > live_n {
            self.gc_tests(&live);
            self.gc_count += 1;
        }
    }

    /// Compacts the shared table to the tests surviving members still
    /// consult, remapping every program's ids.
    fn gc_tests(&mut self, live: &[bool]) {
        let remap = self.table.compact(live);
        for m in &mut self.members {
            if let VnMemberKind::Compiled { code, .. } = &mut m.kind {
                code.remap_tests(&remap);
            }
        }
    }

    /// Rebuilds the shard index from scratch against the (incrementally
    /// maintained) word statistics: adopts the current best word and
    /// re-homes every member. Only runs when the discriminating word
    /// flips — the counted, amortized event.
    fn repartition(&mut self) {
        self.repartitions += 1;
        self.shards.clear();
        self.residue.clear();
        self.shard_word = self.best_word();
        self.fast_min_words = 0;
        for (i, m) in self.members.iter().enumerate() {
            let sharded = match (&m.kind, self.shard_word) {
                (
                    VnMemberKind::Compiled {
                        filter, required, ..
                    },
                    Some(d),
                ) => {
                    match required.iter().find(|&&(word, _)| word == d) {
                        Some(&(_, lit)) => {
                            // A member requiring two literals for the same
                            // word can never accept on the compiled path;
                            // either shard is a sound home.
                            self.shards.entry(lit).or_default().push(i);
                            self.fast_min_words =
                                self.fast_min_words.max(filter.min_packet_words());
                            true
                        }
                        None => false,
                    }
                }
                _ => false,
            };
            if !sharded {
                self.residue.push(i);
            }
        }
    }

    /// Ids of every filter accepting the packet, in match order.
    pub fn matches(&mut self, packet: PacketView<'_>) -> Vec<FilterId> {
        self.matches_with_stats(packet).0.to_vec()
    }

    /// The first (highest-priority) accepting filter, if any.
    pub fn first_match(&mut self, packet: PacketView<'_>) -> Option<FilterId> {
        self.walk(packet, true).1.first().copied()
    }

    /// [`ShardedVnSet::matches`] plus execution counters. The returned
    /// slice borrows the set's reused scratch buffer — no per-packet
    /// allocation — and is valid until the next evaluation.
    pub fn matches_with_stats(&mut self, packet: PacketView<'_>) -> (&[FilterId], VnSetStats) {
        let (stats, ids) = self.walk(packet, false);
        (ids, stats)
    }

    /// [`ShardedVnSet::matches`] over a batch of packets, with per-packet
    /// counters.
    ///
    /// Per-packet verdict lists are identical to calling `matches` on each
    /// packet in turn. What the batch amortizes is the walk-order setup:
    /// the shard-map lookup and the shard∪residue merge are computed once
    /// per *run* of same-key packets (RSS steering delivers flow-grouped
    /// batches, so runs are long) instead of once per packet. Test
    /// memoization stays per-packet — the generation stamp advances for
    /// every frame, as correctness requires.
    pub fn matches_batch_with_stats(
        &mut self,
        packets: &[PacketView<'_>],
    ) -> (Vec<Vec<FilterId>>, Vec<VnSetStats>) {
        let mut out = Vec::with_capacity(packets.len());
        let mut out_stats = Vec::with_capacity(packets.len());
        // The cached walk order: `None` = nothing cached yet; the inner
        // `Option<u16>` is the shard key (None = short/slow path marker,
        // never cached).
        let mut cached_key: Option<u16> = None;
        let mut cache_valid = false;
        for &packet in packets {
            let mut stats = VnSetStats::default();
            let fast = packet.word_len() >= self.fast_min_words;
            let key = match (fast, self.shard_word) {
                (true, Some(d)) => packet.word(usize::from(d)),
                _ => None,
            };
            let ids = match (fast, self.shard_word, key) {
                (true, Some(_), Some(k)) => {
                    if !cache_valid || cached_key != Some(k) {
                        let Self {
                            shards,
                            residue,
                            idx_scratch,
                            ..
                        } = self;
                        idx_scratch.clear();
                        static EMPTY: &[usize] = &[];
                        let shard: &[usize] = shards.get(&k).map_or(EMPTY, Vec::as_slice);
                        // Merge by member index — match order, exactly as
                        // the scalar walk does.
                        let (mut i, mut j) = (0, 0);
                        loop {
                            match (shard.get(i), residue.get(j)) {
                                (Some(&a), Some(&b)) if a < b => {
                                    i += 1;
                                    idx_scratch.push(a);
                                }
                                (_, Some(&b)) => {
                                    j += 1;
                                    idx_scratch.push(b);
                                }
                                (Some(&a), None) => {
                                    i += 1;
                                    idx_scratch.push(a);
                                }
                                (None, None) => break,
                            }
                        }
                        cached_key = Some(k);
                        cache_valid = true;
                    }
                    let Self {
                        members,
                        table,
                        idx_scratch,
                        config,
                        ..
                    } = self;
                    table.begin_packet();
                    let mut ids = Vec::new();
                    for &i in idx_scratch.iter() {
                        let m = &members[i];
                        if eval_vn_member(m, packet, table, *config, &mut stats) {
                            ids.push(m.id);
                        }
                    }
                    ids
                }
                _ => {
                    // Short packet, no discriminating word, or the shard
                    // word is absent from the frame: same slow/empty-shard
                    // semantics as the scalar walk.
                    let Self {
                        members,
                        table,
                        residue,
                        config,
                        ..
                    } = self;
                    table.begin_packet();
                    let mut ids = Vec::new();
                    if fast && self.shard_word.is_some() {
                        // Fast path with a missing/unmatched key word:
                        // scalar walk visits only the residue.
                        for &i in residue.iter() {
                            let m = &members[i];
                            if eval_vn_member(m, packet, table, *config, &mut stats) {
                                ids.push(m.id);
                            }
                        }
                    } else {
                        for m in members.iter() {
                            if eval_vn_member(m, packet, table, *config, &mut stats) {
                                ids.push(m.id);
                            }
                        }
                    }
                    ids
                }
            };
            stats.filters_skipped = self.members.len() as u32 - stats.filters_evaluated;
            out_stats.push(stats);
            out.push(ids);
        }
        (out, out_stats)
    }

    fn walk(&mut self, packet: PacketView<'_>, stop_at_first: bool) -> (VnSetStats, &[FilterId]) {
        let Self {
            members,
            table,
            shards,
            residue,
            shard_word,
            fast_min_words,
            scratch,
            config,
            ..
        } = self;
        table.begin_packet();
        scratch.clear();
        let mut stats = VnSetStats::default();
        let fast = packet.word_len() >= *fast_min_words;
        let mut eval_at = |i: usize, stats: &mut VnSetStats| {
            let m = &members[i];
            if eval_vn_member(m, packet, table, *config, stats) {
                scratch.push(m.id);
                stop_at_first
            } else {
                false
            }
        };
        match (fast, *shard_word) {
            (true, Some(d)) => {
                // Walk the selected shard merged with the residue; merge
                // by member index, which is match order (the members
                // vector is globally sorted).
                static EMPTY: &[usize] = &[];
                let shard: &[usize] = packet
                    .word(usize::from(d))
                    .and_then(|key| shards.get(&key))
                    .map_or(EMPTY, Vec::as_slice);
                let (mut i, mut j) = (0, 0);
                loop {
                    let next = match (shard.get(i), residue.get(j)) {
                        (Some(&a), Some(&b)) if a < b => {
                            i += 1;
                            a
                        }
                        (_, Some(&b)) => {
                            j += 1;
                            b
                        }
                        (Some(&a), None) => {
                            i += 1;
                            a
                        }
                        (None, None) => break,
                    };
                    if eval_at(next, &mut stats) {
                        break;
                    }
                }
            }
            _ => {
                // Slow path (short packet) or no discriminating word:
                // walk every member, exactly like the flat set.
                for i in 0..members.len() {
                    if eval_at(i, &mut stats) {
                        break;
                    }
                }
            }
        }
        stats.filters_skipped = members.len() as u32 - stats.filters_evaluated;
        (stats, scratch)
    }
}

/// Adds one member's required tests to the word statistics: the member
/// count bumps once per distinct word, the literal refcount once per
/// `(word, literal)` pair (distinct within a member by interning).
fn score_insert(stats: &mut HashMap<u16, (u32, HashMap<u16, u32>)>, required: &[(u16, u16)]) {
    let mut seen = HashSet::new();
    for &(word, lit) in required {
        let entry = stats.entry(word).or_default();
        if seen.insert(word) {
            entry.0 += 1;
        }
        *entry.1.entry(lit).or_insert(0) += 1;
    }
}

/// Exact inverse of [`score_insert`]; words and literals no member
/// requires any more drop out entirely, so `best_word` sees the same
/// statistics a from-scratch rescore would compute.
fn score_remove(stats: &mut HashMap<u16, (u32, HashMap<u16, u32>)>, required: &[(u16, u16)]) {
    let mut seen = HashSet::new();
    for &(word, lit) in required {
        let Some(entry) = stats.get_mut(&word) else {
            continue;
        };
        if seen.insert(word) {
            entry.0 -= 1;
        }
        if let Some(c) = entry.1.get_mut(&lit) {
            *c -= 1;
            if *c == 0 {
                entry.1.remove(&lit);
            }
        }
        if entry.0 == 0 {
            stats.remove(&word);
        }
    }
}

/// Evaluates one sharded-set member, sharing test verdicts through the
/// set's memoized table.
fn eval_vn_member(
    m: &VnMember,
    packet: PacketView<'_>,
    table: &mut TestTable,
    config: InterpConfig,
    stats: &mut VnSetStats,
) -> bool {
    stats.filters_evaluated += 1;
    match &m.kind {
        VnMemberKind::Checked(program) => {
            let (accept, s) = CheckedInterpreter::new(config).eval_with_stats(program, packet);
            stats.ops_executed += s.instructions;
            accept
        }
        VnMemberKind::Compiled { filter, code, .. } => {
            if packet.word_len() < filter.min_packet_words() {
                // Short packet: the member's own checked fallback defines
                // the semantics; test sharing does not apply.
                let (accept, s) = filter.eval_with_stats(packet);
                stats.ops_executed += s.ops_executed;
                return accept;
            }
            eval_vn(code, packet, table, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::dtree::FilterSet;
    use pf_filter::program::{Assembler, FilterProgram};
    use pf_filter::samples;
    use pf_filter::word::BinaryOp;

    fn pkt(sock: u16) -> Vec<u8> {
        samples::pup_packet_3mb(2, 0, sock, 1)
    }

    #[test]
    fn matches_in_priority_then_insertion_order() {
        let mut set = IrFilterSet::new();
        set.insert(1, samples::accept_all(5));
        set.insert(2, samples::accept_all(20));
        set.insert(3, samples::accept_all(20));
        assert_eq!(set.matches(PacketView::new(&pkt(1))), vec![2, 3, 1]);
        assert_eq!(set.first_match(PacketView::new(&pkt(1))), Some(2));
    }

    #[test]
    fn replace_and_remove() {
        let mut set = IrFilterSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        assert_eq!(set.first_match(PacketView::new(&pkt(44))), None);
        set.insert(1, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(set.len(), 1);
        assert_eq!(set.first_match(PacketView::new(&pkt(44))), Some(1));
        assert!(set.remove(1));
        assert!(!set.remove(1));
        assert!(set.is_empty());
    }

    /// `EtherType == 2 CAND DstSocketLo == sock`: the shared ethertype
    /// guard leads, so every member reaches it.
    fn ethertype_then_socket(sock: u16) -> FilterProgram {
        Assembler::new(10)
            .pushword(1)
            .pushlit_op(BinaryOp::Cand, 2)
            .pushword(8)
            .pushlit_op(BinaryOp::Eq, sock)
            .finish()
    }

    #[test]
    fn common_prefix_is_shared_and_memoized() {
        let mut set = IrFilterSet::new();
        for (id, sock) in [(1u32, 35u16), (2, 44), (3, 55), (4, 66)] {
            set.insert(id, ethertype_then_socket(sock));
        }
        // All four share the leading `EtherType == Pup` guard.
        assert_eq!(set.test_count(), 1);
        assert_eq!(set.shared_tests(), 1);
        let (ids, stats) = set.matches_with_stats(PacketView::new(&pkt(55)));
        assert_eq!(ids, vec![3]);
        assert_eq!(stats.tests_evaluated, 1, "{stats:?}");
        assert_eq!(stats.tests_memoized, 3, "shared guard reused: {stats:?}");
    }

    #[test]
    fn prefix_sharing_matches_independent_eval() {
        // pup_socket_filter's prefix starts with the per-port test, so the
        // shared `DstSocketHi == 0` guard sits second; sharing must not
        // change verdicts regardless of prefix order.
        let mut set = IrFilterSet::new();
        for (id, sock) in [(1u32, 35u16), (2, 44), (3, 55)] {
            set.insert(id, samples::pup_socket_filter(10, 0, sock));
        }
        assert_eq!(set.shared_tests(), 1);
        for sock in [35u16, 44, 55, 99] {
            let p = pkt(sock);
            let expected: Vec<FilterId> = [(1u32, 35u16), (2, 44), (3, 55)]
                .iter()
                .filter(|&&(_, s)| s == sock)
                .map(|&(id, _)| id)
                .collect();
            assert_eq!(set.matches(PacketView::new(&p)), expected, "sock={sock}");
        }
    }

    #[test]
    fn invalid_program_keeps_checked_semantics() {
        // COR accepts matching packets *before* the trailing garbage word
        // is ever decoded; the set must preserve that behavior.
        let mut words = Assembler::new(10)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 0x0102)
            .finish()
            .words()
            .to_vec();
        words.push(15 << 6); // reserved opcode: fails validation
        let p = FilterProgram::from_words(10, words);
        let mut set = IrFilterSet::new();
        set.insert(1, p);
        assert_eq!(set.compiled(), 0);
        assert_eq!(set.first_match(PacketView::new(&pkt(35))), Some(1));
        assert_eq!(set.first_match(PacketView::new(&[0u8, 0])), None);
    }

    #[test]
    fn agrees_with_decision_table_set() {
        let mut ir = IrFilterSet::new();
        let mut dt = FilterSet::new();
        let filters = [
            (1u32, samples::pup_socket_filter(10, 0, 35)),
            (2, samples::pup_socket_filter(10, 0, 44)),
            (3, samples::ethertype_filter(20, 2)),
            (4, samples::fig_3_8_pup_type_range()),
            (5, samples::reject_all(30)),
        ];
        for (id, f) in &filters {
            ir.insert(*id, f.clone());
            dt.insert(*id, f.clone());
        }
        for sock in [35u16, 44, 99] {
            for ethertype in [2u16, 3] {
                let p = samples::pup_packet_3mb(ethertype, 0, sock, 1);
                let view = PacketView::new(&p);
                assert_eq!(
                    ir.matches(view),
                    dt.matches(view),
                    "sock={sock} et={ethertype}"
                );
            }
        }
    }

    #[test]
    fn short_packets_use_member_fallback() {
        let mut set = IrFilterSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        // Too short for word 8: must reject, not panic.
        assert_eq!(set.first_match(PacketView::new(&[1, 2, 3, 4])), None);
    }

    #[test]
    fn sharded_remove_defers_gc_under_churn() {
        // The regression this pins: remove used to compact the shared
        // table (and remap every member's program) on *every* removal.
        // Steady remove/insert churn on a large population must not GC at
        // all — each removal kills at most a couple of private tests, far
        // below the dead>live threshold.
        let mut set = ShardedVnSet::new();
        for i in 0..64u16 {
            set.insert(u32::from(i), samples::pup_socket_filter(10, 0, 100 + i));
        }
        let live_before = set.test_count();
        assert!(set.raw_test_count() >= GC_MIN_TABLE);
        for round in 0..40u16 {
            let id = u32::from(round % 64);
            assert!(set.remove(id));
            set.insert(id, samples::pup_socket_filter(10, 0, 100 + (round % 64)));
        }
        assert_eq!(set.gc_count(), 0, "churn must not trigger compaction");
        assert_eq!(set.test_count(), live_before, "live tests preserved");
        // Re-inserting the same filters re-uses the interned entries, so
        // the physical table does not grow either.
        assert_eq!(set.raw_test_count(), set.test_count());
        // Verdicts unaffected throughout.
        let p = pkt(137);
        assert_eq!(set.matches(PacketView::new(&p)), vec![37]);
    }

    #[test]
    fn sharded_gc_fires_once_dead_tests_dominate() {
        let mut set = ShardedVnSet::new();
        for i in 0..64u16 {
            set.insert(u32::from(i), samples::pup_socket_filter(10, 0, 100 + i));
        }
        let raw = set.raw_test_count();
        // Remove most of the population without re-inserting: dead tests
        // accumulate (no GC) until they outnumber the live ones, then one
        // compaction shrinks the physical table back to the live count.
        let mut fired_at = None;
        for i in 0..48u32 {
            assert!(set.remove(i));
            if set.gc_count() > 0 {
                fired_at = Some(i);
                break;
            }
            assert!(set.raw_test_count() <= raw, "table never grows on remove");
        }
        let fired_at = fired_at.expect("dead-majority must eventually compact");
        assert!(fired_at > 4, "GC deferred well past the first removals");
        assert_eq!(set.raw_test_count(), set.test_count(), "compact table");
        // Still correct after the compaction remap.
        let p = pkt(163);
        assert_eq!(set.matches(PacketView::new(&p)), vec![63]);
    }

    #[test]
    fn sharded_churn_never_repartitions() {
        // The satellite regression this pins: insert and remove used to
        // rebuild the whole shard index (rescoring every member's
        // required tests) on *every* mutation. With incremental word
        // statistics, steady churn on a stable population touches only
        // the mutated member's shard; a full repartition happens only
        // when the discriminating word itself flips.
        let mut set = ShardedVnSet::new();
        for i in 0..64u16 {
            set.insert(u32::from(i), samples::pup_socket_filter(10, 0, 100 + i));
        }
        // Build settles quickly: first insert adopts a word, the second
        // flips to the socket word once its literals diversify, then the
        // remaining 62 inserts extend shards in place.
        let after_build = set.repartition_count();
        assert!(after_build <= 2, "build settles the word early");
        for round in 0..80u16 {
            let id = u32::from(round % 64);
            assert!(set.remove(id));
            set.insert(id, samples::pup_socket_filter(10, 0, 100 + (round % 64)));
        }
        assert_eq!(
            set.repartition_count(),
            after_build,
            "churn must not repartition"
        );
        assert_eq!(set.shard_word(), Some(8));
        assert_eq!(set.shard_count(), 64);
        let p = pkt(137);
        assert_eq!(set.matches(PacketView::new(&p)), vec![37]);
    }

    #[test]
    fn discriminator_flip_repartitions_once() {
        // Four socket filters key the index on word 8; piling on
        // ethertype-only filters makes word 1 the majority requirement,
        // which must flip the shard word (matching a fresh rebuild) via
        // exactly one repartition at the crossing point.
        let mut set = ShardedVnSet::new();
        for i in 0..4u16 {
            set.insert(u32::from(i), samples::pup_socket_filter(10, 0, 100 + i));
        }
        assert_eq!(set.shard_word(), Some(8));
        let before = set.repartition_count();
        for i in 0..8u16 {
            set.insert(u32::from(100 + i), samples::ethertype_filter(10, 10 + i));
        }
        assert_eq!(set.shard_word(), Some(1), "ethertype now discriminates");
        assert_eq!(
            set.repartition_count(),
            before + 1,
            "one flip, one repartition"
        );
        let p = samples::pup_packet_3mb(12, 0, 999, 1);
        assert_eq!(set.matches(PacketView::new(&p)), vec![102]);
    }

    #[test]
    fn sharded_batch_matches_scalar() {
        let mut set = ShardedVnSet::new();
        for (id, sock) in [(1u32, 35u16), (2, 44), (3, 55), (4, 66)] {
            set.insert(id, samples::pup_socket_filter(10, 0, sock));
        }
        set.insert(5, samples::fig_3_8_pup_type_range()); // residue
        set.insert(6, samples::accept_all(1)); // residue, always matches
        let frames: Vec<Vec<u8>> = vec![
            pkt(35),
            pkt(44),
            pkt(44), // same-key run: exercises the cached walk order
            pkt(99),
            pkt(55)[..6].to_vec(), // truncated: slow path
            Vec::new(),            // empty frame
        ];
        let views: Vec<PacketView<'_>> = frames.iter().map(|f| PacketView::new(f)).collect();
        let (batched, stats) = set.matches_batch_with_stats(&views);
        assert_eq!(batched.len(), views.len());
        assert_eq!(stats.len(), views.len());
        for (i, v) in views.iter().enumerate() {
            let (expect, expect_stats) = {
                let (ids, s) = set.matches_with_stats(*v);
                (ids.to_vec(), s)
            };
            assert_eq!(batched[i], expect, "packet {i} diverged");
            assert_eq!(stats[i], expect_stats, "packet {i} stats diverged");
        }
    }
}
