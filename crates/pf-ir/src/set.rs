//! A set of IR-compiled filters with cross-filter common-prefix merging.
//!
//! Demultiplexing filters overwhelmingly share structure: every BSP port's
//! filter starts with the same `EtherType == Pup` and `DstSocketHi == 0`
//! guards before the per-port socket test. Compiled independently, a set of
//! N such filters re-executes the shared guards N times per packet.
//!
//! [`IrFilterSet`] exploits the compiler's [`IrFilter::guard_prefix`]: the
//! leading word-equality guards of every member are *interned* into a
//! shared test table, and per packet each distinct `(word, literal)` test
//! is evaluated **once** — a generation-stamped memo keeps results across
//! members without any per-packet clearing. Members then run only their
//! post-prefix bodies. Filters whose prefixes overlap (the common case)
//! thus share work exactly where the paper's decision-table proposal (§7)
//! shares it, while arbitrary filters — including programs that fail
//! validation, whose runtime behavior the checked interpreter defines —
//! remain fully supported.
//!
//! Match results are priority-ordered with insertion-order ties, exactly
//! like sequential demultiplexing and [`pf_filter::dtree::FilterSet`].

use crate::exec::IrFilter;
use pf_filter::dtree::FilterId;
use pf_filter::interp::{CheckedInterpreter, InterpConfig};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use std::collections::HashMap;

/// Counters from one whole-set evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IrSetStats {
    /// Members whose bodies (or fallbacks) were evaluated.
    pub filters_evaluated: u32,
    /// Interned prefix tests evaluated fresh against the packet.
    pub tests_evaluated: u32,
    /// Interned prefix tests answered from the per-packet memo.
    pub tests_memoized: u32,
    /// Threaded-code (or fallback interpreter) instructions executed,
    /// including one per fresh prefix test.
    pub ops_executed: u32,
}

/// How a member is executed.
#[derive(Debug)]
enum MemberKind {
    /// Compiled to threaded code; `prefix` indexes the shared test table.
    Compiled {
        filter: IrFilter,
        prefix: Vec<usize>,
    },
    /// Failed validation; the checked interpreter defines its behavior
    /// (it may still accept packets — a short-circuit accept can precede
    /// the defect).
    Checked(FilterProgram),
}

#[derive(Debug)]
struct Member {
    id: FilterId,
    priority: u8,
    seq: u64,
    kind: MemberKind,
}

/// A set of active filters compiled to the IR engine.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
/// use pf_ir::set::IrFilterSet;
///
/// let mut set = IrFilterSet::new();
/// set.insert(7, samples::pup_socket_filter(10, 0, 35));
/// set.insert(9, samples::pup_socket_filter(10, 0, 44));
/// let pkt = samples::pup_packet_3mb(2, 0, 44, 1);
/// assert_eq!(set.first_match(PacketView::new(&pkt)), Some(9));
/// // The two filters share their `DstSocketHi == 0` guard.
/// assert_eq!(set.shared_tests(), 1);
/// ```
#[derive(Debug, Default)]
pub struct IrFilterSet {
    config: InterpConfig,
    next_seq: u64,
    /// Members sorted by (priority desc, seq asc) — match order.
    members: Vec<Member>,
    /// Interned `(word, literal)` equality tests.
    tests: Vec<(u16, u16)>,
    test_ids: HashMap<(u16, u16), usize>,
    /// Per-test memo: (generation, result). A stale generation means
    /// "not yet evaluated for this packet".
    memo: Vec<(u64, bool)>,
    generation: u64,
}

impl IrFilterSet {
    /// An empty set under the default configuration (classic dialect,
    /// paper-style short circuits) — the kernel device's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set under an explicit interpreter configuration.
    pub fn with_config(config: InterpConfig) -> Self {
        IrFilterSet {
            config,
            ..Default::default()
        }
    }

    /// Number of filters in the set.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of distinct interned prefix tests.
    pub fn test_count(&self) -> usize {
        self.tests.len()
    }

    /// Number of interned tests used by more than one member — the
    /// cross-filter work the set shares per packet.
    pub fn shared_tests(&self) -> usize {
        let mut counts = vec![0u32; self.tests.len()];
        for m in &self.members {
            if let MemberKind::Compiled { prefix, .. } = &m.kind {
                for &t in prefix {
                    counts[t] += 1;
                }
            }
        }
        counts.iter().filter(|&&c| c > 1).count()
    }

    /// How many members compiled to threaded code (the rest run on the
    /// checked interpreter).
    pub fn compiled(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m.kind, MemberKind::Compiled { .. }))
            .count()
    }

    /// Inserts (or replaces) the filter for `id`.
    pub fn insert(&mut self, id: FilterId, program: FilterProgram) {
        self.remove(id);
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = program.priority();
        let kind = match IrFilter::compile_with_config(program.clone(), self.config) {
            Ok(filter) => {
                let prefix = filter
                    .guard_prefix()
                    .iter()
                    .map(|&test| self.intern(test))
                    .collect();
                MemberKind::Compiled { filter, prefix }
            }
            Err(_) => MemberKind::Checked(program),
        };
        let member = Member {
            id,
            priority,
            seq,
            kind,
        };
        let at = self.members.partition_point(|m| {
            (m.priority, std::cmp::Reverse(m.seq)) >= (priority, std::cmp::Reverse(seq))
        });
        self.members.insert(at, member);
    }

    /// Removes the filter for `id`; `true` if it was present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let before = self.members.len();
        self.members.retain(|m| m.id != id);
        before != self.members.len()
    }

    fn intern(&mut self, test: (u16, u16)) -> usize {
        if let Some(&t) = self.test_ids.get(&test) {
            return t;
        }
        let t = self.tests.len();
        self.tests.push(test);
        self.test_ids.insert(test, t);
        self.memo.push((0, false));
        t
    }

    /// Ids of every filter accepting the packet, in match order (priority
    /// descending, insertion order within a priority).
    ///
    /// Takes `&mut self` because the per-packet test memo lives in the set.
    pub fn matches(&mut self, packet: PacketView<'_>) -> Vec<FilterId> {
        self.matches_with_stats(packet).0
    }

    /// The first (highest-priority) accepting filter, if any.
    pub fn first_match(&mut self, packet: PacketView<'_>) -> Option<FilterId> {
        let Self {
            members,
            tests,
            memo,
            generation,
            config,
            ..
        } = self;
        *generation += 1;
        let mut stats = IrSetStats::default();
        members
            .iter()
            .find(|m| eval_member(m, packet, tests, memo, *generation, *config, &mut stats))
            .map(|m| m.id)
    }

    /// [`IrFilterSet::matches`] plus execution counters.
    pub fn matches_with_stats(&mut self, packet: PacketView<'_>) -> (Vec<FilterId>, IrSetStats) {
        let Self {
            members,
            tests,
            memo,
            generation,
            config,
            ..
        } = self;
        *generation += 1;
        let mut stats = IrSetStats::default();
        let ids = members
            .iter()
            .filter(|m| eval_member(m, packet, tests, memo, *generation, *config, &mut stats))
            .map(|m| m.id)
            .collect();
        (ids, stats)
    }
}

/// Evaluates one member, sharing prefix-test results through the memo.
fn eval_member(
    m: &Member,
    packet: PacketView<'_>,
    tests: &[(u16, u16)],
    memo: &mut [(u64, bool)],
    generation: u64,
    config: InterpConfig,
    stats: &mut IrSetStats,
) -> bool {
    stats.filters_evaluated += 1;
    match &m.kind {
        MemberKind::Checked(program) => {
            let (accept, s) = CheckedInterpreter::new(config).eval_with_stats(program, packet);
            stats.ops_executed += s.instructions;
            accept
        }
        MemberKind::Compiled { filter, prefix } => {
            if packet.word_len() < filter.min_packet_words() {
                // Short packet: the member's own checked fallback defines
                // the semantics; prefix sharing does not apply.
                let (accept, s) = filter.eval_with_stats(packet);
                stats.ops_executed += s.ops_executed;
                return accept;
            }
            for &t in prefix {
                let (stamp, result) = memo[t];
                let pass = if stamp == generation {
                    stats.tests_memoized += 1;
                    result
                } else {
                    let (word, lit) = tests[t];
                    let r = packet.word(usize::from(word)) == Some(lit);
                    memo[t] = (generation, r);
                    stats.tests_evaluated += 1;
                    stats.ops_executed += 1;
                    r
                };
                if !pass {
                    return false;
                }
            }
            let (accept, ops) = filter.eval_body(packet);
            stats.ops_executed += ops;
            accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::dtree::FilterSet;
    use pf_filter::program::{Assembler, FilterProgram};
    use pf_filter::samples;
    use pf_filter::word::BinaryOp;

    fn pkt(sock: u16) -> Vec<u8> {
        samples::pup_packet_3mb(2, 0, sock, 1)
    }

    #[test]
    fn matches_in_priority_then_insertion_order() {
        let mut set = IrFilterSet::new();
        set.insert(1, samples::accept_all(5));
        set.insert(2, samples::accept_all(20));
        set.insert(3, samples::accept_all(20));
        assert_eq!(set.matches(PacketView::new(&pkt(1))), vec![2, 3, 1]);
        assert_eq!(set.first_match(PacketView::new(&pkt(1))), Some(2));
    }

    #[test]
    fn replace_and_remove() {
        let mut set = IrFilterSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        assert_eq!(set.first_match(PacketView::new(&pkt(44))), None);
        set.insert(1, samples::pup_socket_filter(10, 0, 44));
        assert_eq!(set.len(), 1);
        assert_eq!(set.first_match(PacketView::new(&pkt(44))), Some(1));
        assert!(set.remove(1));
        assert!(!set.remove(1));
        assert!(set.is_empty());
    }

    /// `EtherType == 2 CAND DstSocketLo == sock`: the shared ethertype
    /// guard leads, so every member reaches it.
    fn ethertype_then_socket(sock: u16) -> FilterProgram {
        Assembler::new(10)
            .pushword(1)
            .pushlit_op(BinaryOp::Cand, 2)
            .pushword(8)
            .pushlit_op(BinaryOp::Eq, sock)
            .finish()
    }

    #[test]
    fn common_prefix_is_shared_and_memoized() {
        let mut set = IrFilterSet::new();
        for (id, sock) in [(1u32, 35u16), (2, 44), (3, 55), (4, 66)] {
            set.insert(id, ethertype_then_socket(sock));
        }
        // All four share the leading `EtherType == Pup` guard.
        assert_eq!(set.test_count(), 1);
        assert_eq!(set.shared_tests(), 1);
        let (ids, stats) = set.matches_with_stats(PacketView::new(&pkt(55)));
        assert_eq!(ids, vec![3]);
        assert_eq!(stats.tests_evaluated, 1, "{stats:?}");
        assert_eq!(stats.tests_memoized, 3, "shared guard reused: {stats:?}");
    }

    #[test]
    fn prefix_sharing_matches_independent_eval() {
        // pup_socket_filter's prefix starts with the per-port test, so the
        // shared `DstSocketHi == 0` guard sits second; sharing must not
        // change verdicts regardless of prefix order.
        let mut set = IrFilterSet::new();
        for (id, sock) in [(1u32, 35u16), (2, 44), (3, 55)] {
            set.insert(id, samples::pup_socket_filter(10, 0, sock));
        }
        assert_eq!(set.shared_tests(), 1);
        for sock in [35u16, 44, 55, 99] {
            let p = pkt(sock);
            let expected: Vec<FilterId> = [(1u32, 35u16), (2, 44), (3, 55)]
                .iter()
                .filter(|&&(_, s)| s == sock)
                .map(|&(id, _)| id)
                .collect();
            assert_eq!(set.matches(PacketView::new(&p)), expected, "sock={sock}");
        }
    }

    #[test]
    fn invalid_program_keeps_checked_semantics() {
        // COR accepts matching packets *before* the trailing garbage word
        // is ever decoded; the set must preserve that behavior.
        let mut words = Assembler::new(10)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 0x0102)
            .finish()
            .words()
            .to_vec();
        words.push(15 << 6); // reserved opcode: fails validation
        let p = FilterProgram::from_words(10, words);
        let mut set = IrFilterSet::new();
        set.insert(1, p);
        assert_eq!(set.compiled(), 0);
        assert_eq!(set.first_match(PacketView::new(&pkt(35))), Some(1));
        assert_eq!(set.first_match(PacketView::new(&[0u8, 0])), None);
    }

    #[test]
    fn agrees_with_decision_table_set() {
        let mut ir = IrFilterSet::new();
        let mut dt = FilterSet::new();
        let filters = [
            (1u32, samples::pup_socket_filter(10, 0, 35)),
            (2, samples::pup_socket_filter(10, 0, 44)),
            (3, samples::ethertype_filter(20, 2)),
            (4, samples::fig_3_8_pup_type_range()),
            (5, samples::reject_all(30)),
        ];
        for (id, f) in &filters {
            ir.insert(*id, f.clone());
            dt.insert(*id, f.clone());
        }
        for sock in [35u16, 44, 99] {
            for ethertype in [2u16, 3] {
                let p = samples::pup_packet_3mb(ethertype, 0, sock, 1);
                let view = PacketView::new(&p);
                assert_eq!(
                    ir.matches(view),
                    dt.matches(view),
                    "sock={sock} et={ethertype}"
                );
            }
        }
    }

    #[test]
    fn short_packets_use_member_fallback() {
        let mut set = IrFilterSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        // Too short for word 8: must reject, not panic.
        assert_eq!(set.first_match(PacketView::new(&[1, 2, 3, 4])), None);
    }
}
