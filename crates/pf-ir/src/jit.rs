//! The template JIT: threaded code to native machine code (rung 8).
//!
//! [`crate::exec::IrFilter`] already does the hard compilation work — the
//! CFG is optimized, flattened, and guard-fused into one dense `TOp`
//! array. What remains between that and the paper's §7 "compiling the
//! filters into machine code" endpoint is only the dispatch loop: every
//! `TOp` costs a `match` and a bounds-checked fetch per step. This module
//! removes it by *templating*: each `TOp` expands to a fixed straight-line
//! machine-code sequence (x86-64 and aarch64), branch targets become
//! relative jumps, and the packet word a fused guard tests becomes a
//! single compare-immediate against the big-endian halfword in place.
//!
//! # W^X discipline
//!
//! Code lands in an anonymous private mapping created read-write, is
//! copied in, and is then flipped to read-execute before the first call;
//! the mapping is never writable and executable at once. The
//! `mmap`/`mprotect`/`munmap` calls are raw inline-asm syscalls so the
//! default build's no-dependency policy holds with the feature on too.
//!
//! # Fallback story
//!
//! Emission is best-effort and *refusable*: unsupported target (anything
//! but Linux on x86-64/aarch64), oversized programs, a failed `mmap`, or
//! an out-of-range branch all yield a [`JitFilter`] that simply runs the
//! threaded-code engine — same verdicts, no feature cliff. At call time
//! two packet shapes also route around the native code: packets shorter
//! than the validator's `min_packet_words` (the checked-interpreter
//! fallback the whole ladder shares, §4 semantics) and odd-length packets
//! (whose trailing byte forms the *high* half of the last word — rare
//! enough that the templates assume even length and let the threaded
//! engine handle the remainder).

use crate::exec::IrFilter;
use pf_filter::error::ValidateError;
use pf_filter::interp::InterpConfig;
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::validate::ValidatedProgram;
use std::sync::Arc;

/// A filter compiled to native machine code, with the threaded-code
/// engine as a verdict-identical fallback.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
/// use pf_ir::jit::JitFilter;
///
/// let f = JitFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
/// let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
/// assert!(f.eval(PacketView::new(&pkt)));
/// ```
#[derive(Clone)]
pub struct JitFilter {
    /// The threaded-code compilation: fallback engine, source program,
    /// and the `TOp` array the templates expand.
    inner: IrFilter,
    /// The executable buffer, when emission succeeded.
    native: Option<Arc<native::ExecBuf>>,
}

impl std::fmt::Debug for JitFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitFilter")
            .field("inner", &self.inner)
            .field("jitted", &self.native.is_some())
            .finish()
    }
}

impl JitFilter {
    /// Validates and compiles under the default configuration.
    ///
    /// # Errors
    ///
    /// Returns the validator's verdict on a malformed program.
    pub fn compile(program: FilterProgram) -> Result<Self, ValidateError> {
        Self::compile_with_config(program, InterpConfig::default())
    }

    /// Validates and compiles under an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns the validator's verdict on a malformed program.
    pub fn compile_with_config(
        program: FilterProgram,
        config: InterpConfig,
    ) -> Result<Self, ValidateError> {
        Ok(Self::from_validated(&ValidatedProgram::with_config(
            program, config,
        )?))
    }

    /// Compiles an already-validated program, attempting native emission.
    pub fn from_validated(validated: &ValidatedProgram) -> Self {
        Self::build(IrFilter::from_validated(validated), true)
    }

    /// Compiles with native emission artificially refused: the filter is
    /// permanently on the threaded-code fallback. This is the test hook
    /// for the fallback path; verdicts are identical either way.
    pub fn from_validated_forced_fallback(validated: &ValidatedProgram) -> Self {
        Self::build(IrFilter::from_validated(validated), false)
    }

    fn build(inner: IrFilter, allow_native: bool) -> Self {
        let native = if allow_native {
            native::compile(inner.code(), inner.reg_count())
        } else {
            None
        };
        JitFilter { inner, native }
    }

    /// Whether native code was emitted (false means every evaluation runs
    /// the threaded-code fallback).
    pub fn is_jitted(&self) -> bool {
        self.native.is_some()
    }

    /// Emitted machine-code size in bytes, when native.
    pub fn native_code_len(&self) -> Option<usize> {
        self.native.as_ref().map(|b| b.len())
    }

    /// The source program.
    pub fn program(&self) -> &FilterProgram {
        self.inner.program()
    }

    /// The filter's priority.
    pub fn priority(&self) -> u8 {
        self.inner.priority()
    }

    /// The configuration the filter was compiled under.
    pub fn config(&self) -> InterpConfig {
        self.inner.config()
    }

    /// Packet length (in words) below which evaluation falls back to the
    /// checked interpreter, exactly as [`IrFilter`] does.
    pub fn min_packet_words(&self) -> usize {
        self.inner.min_packet_words()
    }

    /// Evaluates against a packet; `true` means *accept*.
    pub fn eval(&self, packet: PacketView<'_>) -> bool {
        if let Some(native) = &self.native {
            let bytes = packet.bytes();
            if bytes.len() % 2 == 0 && packet.word_len() >= self.inner.min_packet_words() {
                // SAFETY: the buffer holds code emitted for exactly this
                // program's `TOp` array; the templates' preconditions
                // (even byte length, every static word index in bounds)
                // are established by the two checks above plus the
                // validator's min-words analysis.
                return unsafe { native.call(bytes) };
            }
        }
        self.inner.eval(packet)
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod native {
    use super::super::exec::TOp;
    use std::sync::Arc;

    /// Programs past these bounds fall back to threaded code: the stack
    /// frame stays small and every emitted branch stays in range.
    const MAX_JIT_REGS: usize = 1024;
    const MAX_JIT_OPS: usize = 1 << 16;

    /// Emits and installs native code, or `None` to fall back.
    pub(super) fn compile(code: &[TOp], reg_count: usize) -> Option<Arc<ExecBuf>> {
        if reg_count > MAX_JIT_REGS || code.len() > MAX_JIT_OPS || code.is_empty() {
            return None;
        }
        #[cfg(target_arch = "x86_64")]
        let buf = x64::emit(code, reg_count)?;
        #[cfg(target_arch = "aarch64")]
        let buf = a64::emit(code, reg_count)?;
        ExecBuf::install(&buf).map(Arc::new)
    }

    /// Native entry point: `(packet bytes, byte length) -> 0 | 1`.
    ///
    /// The explicit `sysv64` ABI pins the x86-64 register convention the
    /// templates assume (`rdi` = bytes, `rsi` = length, result in `eax`).
    #[cfg(target_arch = "x86_64")]
    type NativeFn = unsafe extern "sysv64" fn(*const u8, usize) -> u32;
    #[cfg(target_arch = "aarch64")]
    type NativeFn = unsafe extern "C" fn(*const u8, usize) -> u32;

    /// An executable W^X code mapping.
    pub(super) struct ExecBuf {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: after `install` the mapping is immutable (read-execute) for
    // the lifetime of the value; concurrent calls only read it.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        /// Maps read-write, copies the code in, then seals read-execute.
        fn install(code: &[u8]) -> Option<ExecBuf> {
            let ptr = sys::map_rw(code.len())?;
            // SAFETY: `ptr` is a fresh private mapping of at least
            // `code.len()` bytes, writable until the mprotect below.
            unsafe { std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len()) };
            #[cfg(target_arch = "aarch64")]
            // SAFETY: the range was just written through `ptr`.
            unsafe {
                flush_icache(ptr, code.len());
            }
            if !sys::protect_rx(ptr, code.len()) {
                sys::unmap(ptr, code.len());
                return None;
            }
            Some(ExecBuf {
                ptr,
                len: code.len(),
            })
        }

        pub(super) fn len(&self) -> usize {
            self.len
        }

        /// # Safety
        ///
        /// `bytes` must have even length, and every packet word the
        /// compiled program addresses statically must be in bounds (the
        /// caller checks `min_packet_words`).
        pub(super) unsafe fn call(&self, bytes: &[u8]) -> bool {
            // SAFETY: `ptr` holds a complete emitted function with the
            // NativeFn signature, mapped executable by `install`.
            let f: NativeFn = unsafe { std::mem::transmute::<*mut u8, NativeFn>(self.ptr) };
            // SAFETY: preconditions forwarded from the caller.
            unsafe { f(bytes.as_ptr(), bytes.len()) != 0 }
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            sys::unmap(self.ptr, self.len);
        }
    }

    /// Makes freshly written aarch64 code visible to instruction fetch:
    /// clean dcache to the point of unification, invalidate icache, and
    /// synchronize. (x86-64 caches are coherent; nothing to do there.)
    ///
    /// # Safety
    ///
    /// The `[start, start + len)` range must be a valid mapping.
    #[cfg(target_arch = "aarch64")]
    unsafe fn flush_icache(start: *mut u8, len: usize) {
        let ctr: u64;
        // SAFETY: CTR_EL0 is readable from EL0.
        unsafe { std::arch::asm!("mrs {}, ctr_el0", out(reg) ctr, options(nomem, nostack)) };
        let dline = 4usize << ((ctr >> 16) & 0xF);
        let iline = 4usize << (ctr & 0xF);
        let begin = start as usize;
        let end = begin + len;
        let mut p = begin & !(dline - 1);
        while p < end {
            // SAFETY: `p` stays within the caller's mapped range.
            unsafe { std::arch::asm!("dc cvau, {}", in(reg) p, options(nostack)) };
            p += dline;
        }
        // SAFETY: barrier instructions only.
        unsafe { std::arch::asm!("dsb ish", options(nostack)) };
        let mut p = begin & !(iline - 1);
        while p < end {
            // SAFETY: `p` stays within the caller's mapped range.
            unsafe { std::arch::asm!("ic ivau, {}", in(reg) p, options(nostack)) };
            p += iline;
        }
        // SAFETY: barrier instructions only.
        unsafe { std::arch::asm!("dsb ish", "isb", options(nostack)) };
    }

    /// Raw anonymous-mapping syscalls — no libc, no crates.
    mod sys {
        const PROT_READ: usize = 1;
        const PROT_WRITE: usize = 2;
        const PROT_EXEC: usize = 4;
        const MAP_PRIVATE: usize = 2;
        const MAP_ANONYMOUS: usize = 0x20;

        #[cfg(target_arch = "x86_64")]
        mod nr {
            pub const MMAP: usize = 9;
            pub const MPROTECT: usize = 10;
            pub const MUNMAP: usize = 11;
        }
        #[cfg(target_arch = "aarch64")]
        mod nr {
            pub const MMAP: usize = 222;
            pub const MPROTECT: usize = 226;
            pub const MUNMAP: usize = 215;
        }

        #[cfg(target_arch = "x86_64")]
        unsafe fn syscall6(
            nr: usize,
            a: usize,
            b: usize,
            c: usize,
            d: usize,
            e: usize,
            f: usize,
        ) -> isize {
            let ret;
            // SAFETY: a well-formed Linux syscall; rcx/r11 are declared
            // clobbered per the kernel ABI.
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") nr => ret,
                    in("rdi") a,
                    in("rsi") b,
                    in("rdx") c,
                    in("r10") d,
                    in("r8") e,
                    in("r9") f,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack)
                );
            }
            ret
        }

        #[cfg(target_arch = "aarch64")]
        unsafe fn syscall6(
            nr: usize,
            a: usize,
            b: usize,
            c: usize,
            d: usize,
            e: usize,
            f: usize,
        ) -> isize {
            let ret;
            // SAFETY: a well-formed Linux syscall.
            unsafe {
                std::arch::asm!(
                    "svc 0",
                    inlateout("x0") a => ret,
                    in("x1") b,
                    in("x2") c,
                    in("x3") d,
                    in("x4") e,
                    in("x5") f,
                    in("x8") nr,
                    options(nostack)
                );
            }
            ret
        }

        /// A fresh read-write anonymous private mapping, or `None`.
        pub fn map_rw(len: usize) -> Option<*mut u8> {
            // SAFETY: mmap with a null hint allocates a fresh range; the
            // arguments request an anonymous private mapping.
            let r = unsafe {
                syscall6(
                    nr::MMAP,
                    0,
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    usize::MAX, // fd = -1
                    0,
                )
            };
            if r <= 0 {
                return None; // -errno (or a null mapping we refuse)
            }
            Some(r as *mut u8)
        }

        /// Seals a mapping read-execute.
        pub fn protect_rx(ptr: *mut u8, len: usize) -> bool {
            // SAFETY: `ptr`/`len` come from a successful `map_rw`.
            unsafe {
                syscall6(
                    nr::MPROTECT,
                    ptr as usize,
                    len,
                    PROT_READ | PROT_EXEC,
                    0,
                    0,
                    0,
                ) == 0
            }
        }

        pub fn unmap(ptr: *mut u8, len: usize) {
            // SAFETY: `ptr`/`len` come from a successful `map_rw`.
            unsafe { syscall6(nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
        }
    }

    /// The x86-64 templates.
    ///
    /// Convention: `rdi` = packet bytes, `rsi` = byte length (even).
    /// Virtual registers live as 16-bit slots at `[rsp + 2*reg]`;
    /// `eax`/`ecx`/`edx` are scratch. Packet words load little-endian and
    /// `rol ax, 8` restores network byte order — except fused guards,
    /// which compare the halfword in place against a byte-swapped literal.
    #[cfg(target_arch = "x86_64")]
    mod x64 {
        use super::super::super::exec::TOp;
        use super::super::super::ir::IrBinOp;

        struct Asm {
            buf: Vec<u8>,
            /// `(rel32 position, target TOp index)` branch patches.
            fixups: Vec<(usize, u32)>,
            /// rel32 positions jumping to the shared reject stub.
            reject_fixups: Vec<usize>,
            frame: u32,
        }

        impl Asm {
            fn put(&mut self, bytes: &[u8]) {
                self.buf.extend_from_slice(bytes);
            }

            fn imm16(&mut self, v: u16) {
                self.put(&v.to_le_bytes());
            }

            fn imm32(&mut self, v: u32) {
                self.put(&v.to_le_bytes());
            }

            /// ModRM+SIB+disp for a 16-bit register slot `[rsp + off]`,
            /// with `reg` as the ModRM reg field.
            fn slot(&mut self, reg: u8, off: u32) {
                if off < 128 {
                    self.put(&[0x40 | (reg << 3) | 4, 0x24, off as u8]);
                } else {
                    self.put(&[0x80 | (reg << 3) | 4, 0x24]);
                    self.imm32(off);
                }
            }

            /// `movzx r32, word [rsp + off]` (r32 by ModRM reg number).
            fn load_slot(&mut self, reg: u8, off: u32) {
                self.put(&[0x0F, 0xB7]);
                self.slot(reg, off);
            }

            /// `mov [rsp + off], r16` (r16 by ModRM reg number).
            fn store_slot(&mut self, reg: u8, off: u32) {
                self.put(&[0x66, 0x89]);
                self.slot(reg, off);
            }

            /// `cmp word [rsp + off], 0`.
            fn cmp_slot_zero(&mut self, off: u32) {
                self.put(&[0x66, 0x83]);
                self.slot(7, off);
                self.put(&[0x00]);
            }

            /// A `jcc`/`jmp` with a rel32 to a TOp-index target.
            fn branch(&mut self, opcode: &[u8], target: u32) {
                self.put(opcode);
                self.fixups.push((self.buf.len(), target));
                self.imm32(0);
            }

            /// A `jcc` rel32 to the shared reject stub.
            fn branch_reject(&mut self, opcode: &[u8]) {
                self.put(opcode);
                self.reject_fixups.push(self.buf.len());
                self.imm32(0);
            }

            /// `mov eax, imm; add rsp, frame; ret`.
            fn epilogue(&mut self, verdict: u32) {
                self.put(&[0xB8]);
                self.imm32(verdict);
                self.put(&[0x48, 0x81, 0xC4]);
                let frame = self.frame;
                self.imm32(frame);
                self.put(&[0xC3]);
            }
        }

        pub(in super::super) fn emit(code: &[TOp], reg_count: usize) -> Option<Vec<u8>> {
            let frame = ((2 * reg_count as u32) + 15) & !15;
            let mut a = Asm {
                buf: Vec::with_capacity(code.len() * 16 + 64),
                fixups: Vec::new(),
                reject_fixups: Vec::new(),
                frame,
            };

            // Prologue: carve and zero the register frame.
            if frame > 0 {
                a.put(&[0x48, 0x81, 0xEC]); // sub rsp, frame
                a.imm32(frame);
                let mut off = 0;
                while off < 2 * reg_count as u32 {
                    a.put(&[0x48, 0xC7]); // mov qword [rsp+off], 0
                    a.slot(0, off);
                    a.imm32(0);
                    off += 8;
                }
            }

            let mut offsets = Vec::with_capacity(code.len());
            for op in code {
                offsets.push(a.buf.len());
                match *op {
                    TOp::Const { dst, value } => {
                        a.put(&[0x66, 0xC7]);
                        a.slot(0, 2 * u32::from(dst));
                        a.imm16(value);
                    }
                    TOp::LoadWord { dst, index } => {
                        a.put(&[0x0F, 0xB7, 0x87]); // movzx eax, word [rdi+2i]
                        a.imm32(2 * u32::from(index));
                        a.put(&[0x66, 0xC1, 0xC0, 0x08]); // rol ax, 8
                        a.store_slot(0, 2 * u32::from(dst));
                    }
                    TOp::LoadInd { dst, index } => {
                        a.load_slot(1, 2 * u32::from(index)); // movzx ecx, slot
                        a.put(&[0x01, 0xC9]); // add ecx, ecx
                        a.put(&[0x48, 0x39, 0xF1]); // cmp rcx, rsi
                        a.branch_reject(&[0x0F, 0x83]); // jae reject (OOB)
                        a.put(&[0x0F, 0xB7, 0x04, 0x0F]); // movzx eax, word [rdi+rcx]
                        a.put(&[0x66, 0xC1, 0xC0, 0x08]); // rol ax, 8
                        a.store_slot(0, 2 * u32::from(dst));
                    }
                    TOp::Bin {
                        op,
                        dst,
                        a: ra,
                        b: rb,
                    } => {
                        a.load_slot(0, 2 * u32::from(ra)); // eax := regs[a]
                        a.load_slot(1, 2 * u32::from(rb)); // ecx := regs[b]
                        let setcc = |a: &mut Asm, cc: u8| {
                            a.put(&[0x39, 0xC8]); // cmp eax, ecx
                            a.put(&[0x0F, cc, 0xC0]); // setcc al
                            a.put(&[0x0F, 0xB6, 0xC0]); // movzx eax, al
                        };
                        match op {
                            IrBinOp::Eq => setcc(&mut a, 0x94),
                            IrBinOp::Neq => setcc(&mut a, 0x95),
                            IrBinOp::Lt => setcc(&mut a, 0x92),
                            IrBinOp::Le => setcc(&mut a, 0x96),
                            IrBinOp::Gt => setcc(&mut a, 0x97),
                            IrBinOp::Ge => setcc(&mut a, 0x93),
                            IrBinOp::And => a.put(&[0x21, 0xC8]),
                            IrBinOp::Or => a.put(&[0x09, 0xC8]),
                            IrBinOp::Xor => a.put(&[0x31, 0xC8]),
                            IrBinOp::Add => a.put(&[0x01, 0xC8]),
                            IrBinOp::Sub => a.put(&[0x29, 0xC8]),
                            IrBinOp::Mul => a.put(&[0x0F, 0xAF, 0xC1]),
                            IrBinOp::Div | IrBinOp::Mod => {
                                a.put(&[0x85, 0xC9]); // test ecx, ecx
                                a.branch_reject(&[0x0F, 0x84]); // jz reject
                                a.put(&[0x31, 0xD2]); // xor edx, edx
                                a.put(&[0xF7, 0xF1]); // div ecx
                                if op == IrBinOp::Mod {
                                    a.put(&[0x89, 0xD0]); // mov eax, edx
                                }
                            }
                            IrBinOp::Lsh | IrBinOp::Rsh => {
                                a.put(&[0x83, 0xE1, 0x0F]); // and ecx, 15
                                let mode = if op == IrBinOp::Lsh { 0xE0 } else { 0xE8 };
                                a.put(&[0xD3, mode]); // shl/shr eax, cl
                            }
                        }
                        a.store_slot(0, 2 * u32::from(dst));
                    }
                    TOp::Jump { target } => a.branch(&[0xE9], target),
                    TOp::BranchIf { cond, target } => {
                        a.cmp_slot_zero(2 * u32::from(cond));
                        a.branch(&[0x0F, 0x85], target); // jne
                    }
                    TOp::BranchIfNot { cond, target } => {
                        a.cmp_slot_zero(2 * u32::from(cond));
                        a.branch(&[0x0F, 0x84], target); // je
                    }
                    TOp::GuardEqBr { word, lit, target } | TOp::GuardNeBr { word, lit, target } => {
                        // cmp word [rdi+2w], lit.swap_bytes()
                        a.put(&[0x66, 0x81, 0xBF]);
                        a.imm32(2 * u32::from(word));
                        a.imm16(lit.swap_bytes());
                        let cc: &[u8] = if matches!(op, TOp::GuardEqBr { .. }) {
                            &[0x0F, 0x84] // je
                        } else {
                            &[0x0F, 0x85] // jne
                        };
                        a.branch(cc, target);
                    }
                    TOp::GuardInBr {
                        word,
                        lo,
                        hi,
                        target,
                    }
                    | TOp::GuardOutBr {
                        word,
                        lo,
                        hi,
                        target,
                    } => {
                        // movzx eax, word [rdi+2w]; rol ax, 8
                        a.put(&[0x0F, 0xB7, 0x87]);
                        a.imm32(2 * u32::from(word));
                        a.put(&[0x66, 0xC1, 0xC0, 0x08]);
                        // Unsigned-span trick: v - lo <= hi - lo (as u32)
                        // iff lo <= v <= hi.
                        a.put(&[0x2D]); // sub eax, imm32
                        a.imm32(u32::from(lo));
                        a.put(&[0x3D]); // cmp eax, imm32
                        a.imm32(u32::from(hi - lo));
                        let cc: &[u8] = if matches!(op, TOp::GuardInBr { .. }) {
                            &[0x0F, 0x86] // jbe
                        } else {
                            &[0x0F, 0x87] // ja
                        };
                        a.branch(cc, target);
                    }
                    TOp::Return { accept } => a.epilogue(u32::from(accept)),
                    TOp::ReturnReg { reg } => {
                        a.cmp_slot_zero(2 * u32::from(reg));
                        a.put(&[0x0F, 0x95, 0xC0]); // setne al
                        a.put(&[0x0F, 0xB6, 0xC0]); // movzx eax, al
                        a.put(&[0x48, 0x81, 0xC4]); // add rsp, frame
                        a.imm32(frame);
                        a.put(&[0xC3]);
                    }
                }
            }

            // Shared reject stub for runtime faults.
            let reject = a.buf.len();
            a.epilogue(0);

            for (pos, target) in std::mem::take(&mut a.fixups) {
                let rel = offsets[target as usize] as i64 - (pos as i64 + 4);
                a.buf[pos..pos + 4].copy_from_slice(&(rel as i32).to_le_bytes());
            }
            for pos in std::mem::take(&mut a.reject_fixups) {
                let rel = reject as i64 - (pos as i64 + 4);
                a.buf[pos..pos + 4].copy_from_slice(&(rel as i32).to_le_bytes());
            }
            Some(a.buf)
        }
    }

    /// The aarch64 templates.
    ///
    /// Convention: `x0` = packet bytes, `x1` = byte length (even).
    /// Virtual registers are 16-bit slots at `[sp + 2*reg]`; `w8`–`w10`
    /// are scratch. Packet offsets are materialized with `movz`+`lsl` so
    /// any `u16` word index stays encodable; `rev16` restores network
    /// byte order after each little-endian halfword load.
    #[cfg(target_arch = "aarch64")]
    mod a64 {
        use super::super::super::exec::TOp;
        use super::super::super::ir::IrBinOp;

        const EQ: u32 = 0;
        const NE: u32 = 1;
        const HS: u32 = 2;
        const LO: u32 = 3;
        const HI: u32 = 8;
        const LS: u32 = 9;

        enum Patch {
            /// `b` (imm26).
            B { pos: usize, target: u32 },
            /// `b.cond`/`cbz`/`cbnz` (imm19 at bits 5–23).
            B19 { pos: usize, target: u32 },
            /// imm19 branch to the shared reject stub.
            Reject { pos: usize },
        }

        struct Asm {
            buf: Vec<u8>,
            patches: Vec<Patch>,
            frame: u32,
        }

        impl Asm {
            fn ins(&mut self, w: u32) {
                self.buf.extend_from_slice(&w.to_le_bytes());
            }

            /// `movz wd, #imm16`.
            fn movz(&mut self, rd: u32, imm: u16) {
                self.ins(0x5280_0000 | (u32::from(imm) << 5) | rd);
            }

            /// `ldrh wt, [sp, #off]` (off even, ≤ 8190 by the reg cap).
            fn ldrh_sp(&mut self, rt: u32, off: u32) {
                self.ins(0x7940_0000 | ((off / 2) << 10) | (31 << 5) | rt);
            }

            /// `strh wt, [sp, #off]`.
            fn strh_sp(&mut self, rt: u32, off: u32) {
                self.ins(0x7900_0000 | ((off / 2) << 10) | (31 << 5) | rt);
            }

            /// Loads the big-endian packet word at static word `index`
            /// into `wt`: `movz w8, #index; lsl w8, w8, #1;
            /// ldrh wt, [x0, x8]; rev16 wt, wt`.
            fn load_packet_word(&mut self, rt: u32, index: u16) {
                self.movz(8, index);
                self.ins(0x531F_7800 | (8 << 5) | 8); // lsl w8, w8, #1
                self.ins(0x7860_6800 | (8 << 16) | rt); // ldrh wt, [x0, x8]
                self.ins(0x5AC0_0400 | (rt << 5) | rt); // rev16 wt, wt
            }

            /// `cset wd, cond`.
            fn cset(&mut self, rd: u32, cond: u32) {
                self.ins(0x1A9F_07E0 | ((cond ^ 1) << 12) | rd);
            }

            fn b(&mut self, target: u32) {
                self.patches.push(Patch::B {
                    pos: self.buf.len(),
                    target,
                });
                self.ins(0x1400_0000);
            }

            /// `b.cond` to a TOp-index target.
            fn bcond(&mut self, cond: u32, target: u32) {
                self.patches.push(Patch::B19 {
                    pos: self.buf.len(),
                    target,
                });
                self.ins(0x5400_0000 | cond);
            }

            /// `b.cond` to the shared reject stub.
            fn bcond_reject(&mut self, cond: u32) {
                self.patches.push(Patch::Reject {
                    pos: self.buf.len(),
                });
                self.ins(0x5400_0000 | cond);
            }

            /// `cbz`/`cbnz wt` to a TOp-index target.
            fn cbz(&mut self, rt: u32, nonzero: bool, target: u32) {
                self.patches.push(Patch::B19 {
                    pos: self.buf.len(),
                    target,
                });
                self.ins(if nonzero { 0x3500_0000 } else { 0x3400_0000 } | rt);
            }

            /// `cbz wt` to the shared reject stub.
            fn cbz_reject(&mut self, rt: u32) {
                self.patches.push(Patch::Reject {
                    pos: self.buf.len(),
                });
                self.ins(0x3400_0000 | rt);
            }

            /// `mov w0, #verdict; add sp, sp, #frame; ret`.
            fn epilogue(&mut self, verdict: u16) {
                self.movz(0, verdict);
                if self.frame > 0 {
                    let frame = self.frame;
                    self.ins(0x9100_0000 | (frame << 10) | (31 << 5) | 31);
                }
                self.ins(0xD65F_03C0);
            }
        }

        pub(in super::super) fn emit(code: &[TOp], reg_count: usize) -> Option<Vec<u8>> {
            let frame = ((2 * reg_count as u32) + 15) & !15;
            let mut a = Asm {
                buf: Vec::with_capacity(code.len() * 24 + 64),
                patches: Vec::new(),
                frame,
            };

            if frame > 0 {
                a.ins(0xD100_0000 | (frame << 10) | (31 << 5) | 31); // sub sp, sp, #frame
                let mut off = 0;
                while off < 2 * reg_count as u32 {
                    a.ins(0xF900_0000 | ((off / 8) << 10) | (31 << 5) | 31); // str xzr, [sp, #off]
                    off += 8;
                }
            }

            let mut offsets = Vec::with_capacity(code.len());
            for op in code {
                offsets.push(a.buf.len());
                match *op {
                    TOp::Const { dst, value } => {
                        a.movz(8, value);
                        a.strh_sp(8, 2 * u32::from(dst));
                    }
                    TOp::LoadWord { dst, index } => {
                        a.load_packet_word(9, index);
                        a.strh_sp(9, 2 * u32::from(dst));
                    }
                    TOp::LoadInd { dst, index } => {
                        a.ldrh_sp(8, 2 * u32::from(index));
                        a.ins(0x531F_7800 | (8 << 5) | 8); // lsl w8, w8, #1
                        a.ins(0xEB00_001F | (1 << 16) | (8 << 5)); // cmp x8, x1
                        a.bcond_reject(HS); // OOB rejects
                        a.ins(0x7860_6800 | (8 << 16) | 9); // ldrh w9, [x0, x8]
                        a.ins(0x5AC0_0400 | (9 << 5) | 9); // rev16 w9, w9
                        a.strh_sp(9, 2 * u32::from(dst));
                    }
                    TOp::Bin {
                        op,
                        dst,
                        a: ra,
                        b: rb,
                    } => {
                        a.ldrh_sp(8, 2 * u32::from(ra));
                        a.ldrh_sp(9, 2 * u32::from(rb));
                        let cmp_cset = |a: &mut Asm, cond: u32| {
                            a.ins(0x6B00_001F | (9 << 16) | (8 << 5)); // cmp w8, w9
                            a.cset(8, cond);
                        };
                        match op {
                            IrBinOp::Eq => cmp_cset(&mut a, EQ),
                            IrBinOp::Neq => cmp_cset(&mut a, NE),
                            IrBinOp::Lt => cmp_cset(&mut a, LO),
                            IrBinOp::Le => cmp_cset(&mut a, LS),
                            IrBinOp::Gt => cmp_cset(&mut a, HI),
                            IrBinOp::Ge => cmp_cset(&mut a, HS),
                            IrBinOp::And => a.ins(0x0A00_0000 | (9 << 16) | (8 << 5) | 8),
                            IrBinOp::Or => a.ins(0x2A00_0000 | (9 << 16) | (8 << 5) | 8),
                            IrBinOp::Xor => a.ins(0x4A00_0000 | (9 << 16) | (8 << 5) | 8),
                            IrBinOp::Add => a.ins(0x0B00_0000 | (9 << 16) | (8 << 5) | 8),
                            IrBinOp::Sub => a.ins(0x4B00_0000 | (9 << 16) | (8 << 5) | 8),
                            IrBinOp::Mul => a.ins(0x1B00_7C00 | (9 << 16) | (8 << 5) | 8),
                            IrBinOp::Div => {
                                a.cbz_reject(9);
                                a.ins(0x1AC0_0800 | (9 << 16) | (8 << 5) | 8); // udiv w8, w8, w9
                            }
                            IrBinOp::Mod => {
                                a.cbz_reject(9);
                                a.ins(0x1AC0_0800 | (9 << 16) | (8 << 5) | 10); // udiv w10, w8, w9
                                a.ins(0x1B00_8000 | (9 << 16) | (8 << 10) | (10 << 5) | 8);
                                // msub w8, w10, w9, w8
                            }
                            IrBinOp::Lsh | IrBinOp::Rsh => {
                                a.ins(0x1200_0C00 | (9 << 5) | 9); // and w9, w9, #15
                                let shift = if op == IrBinOp::Lsh {
                                    0x1AC0_2000
                                } else {
                                    0x1AC0_2400
                                };
                                a.ins(shift | (9 << 16) | (8 << 5) | 8);
                            }
                        }
                        a.strh_sp(8, 2 * u32::from(dst));
                    }
                    TOp::Jump { target } => a.b(target),
                    TOp::BranchIf { cond, target } => {
                        a.ldrh_sp(8, 2 * u32::from(cond));
                        a.cbz(8, true, target);
                    }
                    TOp::BranchIfNot { cond, target } => {
                        a.ldrh_sp(8, 2 * u32::from(cond));
                        a.cbz(8, false, target);
                    }
                    TOp::GuardEqBr { word, lit, target } | TOp::GuardNeBr { word, lit, target } => {
                        a.load_packet_word(9, word);
                        a.movz(10, lit);
                        a.ins(0x6B00_001F | (10 << 16) | (9 << 5)); // cmp w9, w10
                        let cond = if matches!(op, TOp::GuardEqBr { .. }) {
                            EQ
                        } else {
                            NE
                        };
                        a.bcond(cond, target);
                    }
                    TOp::GuardInBr {
                        word,
                        lo,
                        hi,
                        target,
                    }
                    | TOp::GuardOutBr {
                        word,
                        lo,
                        hi,
                        target,
                    } => {
                        a.load_packet_word(9, word);
                        // Unsigned-span trick: v - lo <= hi - lo (as u32)
                        // iff lo <= v <= hi.
                        a.movz(10, lo);
                        a.ins(0x4B00_0000 | (10 << 16) | (9 << 5) | 9); // sub w9, w9, w10
                        a.movz(10, hi - lo);
                        a.ins(0x6B00_001F | (10 << 16) | (9 << 5)); // cmp w9, w10
                        let cond = if matches!(op, TOp::GuardInBr { .. }) {
                            LS
                        } else {
                            HI
                        };
                        a.bcond(cond, target);
                    }
                    TOp::Return { accept } => a.epilogue(u16::from(accept)),
                    TOp::ReturnReg { reg } => {
                        a.ldrh_sp(8, 2 * u32::from(reg));
                        a.ins(0x7100_001F | (8 << 5)); // cmp w8, #0
                        a.cset(0, NE);
                        if frame > 0 {
                            a.ins(0x9100_0000 | (frame << 10) | (31 << 5) | 31);
                        }
                        a.ins(0xD65F_03C0);
                    }
                }
            }

            let reject = a.buf.len();
            a.epilogue(0);

            for patch in std::mem::take(&mut a.patches) {
                let (pos, dest) = match patch {
                    Patch::B { pos, target } | Patch::B19 { pos, target } => {
                        (pos, offsets[target as usize])
                    }
                    Patch::Reject { pos } => (pos, reject),
                };
                let rel = (dest as i64 - pos as i64) / 4;
                let mut word = u32::from_le_bytes(a.buf[pos..pos + 4].try_into().unwrap());
                match patch {
                    Patch::B { .. } => {
                        if !(-(1 << 25)..(1 << 25)).contains(&rel) {
                            return None;
                        }
                        word |= (rel as u32) & 0x03FF_FFFF;
                    }
                    Patch::B19 { .. } | Patch::Reject { .. } => {
                        if !(-(1 << 18)..(1 << 18)).contains(&rel) {
                            return None;
                        }
                        word |= ((rel as u32) & 0x7_FFFF) << 5;
                    }
                }
                a.buf[pos..pos + 4].copy_from_slice(&word.to_le_bytes());
            }
            Some(a.buf)
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod native {
    use super::super::exec::TOp;
    use std::sync::Arc;

    /// Unsupported target: emission always refuses and every [`JitFilter`]
    /// runs the threaded-code fallback.
    pub(super) struct ExecBuf {
        never: std::convert::Infallible,
    }

    pub(super) fn compile(_code: &[TOp], _reg_count: usize) -> Option<Arc<ExecBuf>> {
        None
    }

    impl ExecBuf {
        pub(super) fn len(&self) -> usize {
            match self.never {}
        }

        /// # Safety
        ///
        /// Never constructed; never called.
        pub(super) unsafe fn call(&self, _bytes: &[u8]) -> bool {
            match self.never {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::interp::{CheckedInterpreter, Dialect, InterpConfig};
    use pf_filter::program::Assembler;
    use pf_filter::samples;
    use pf_filter::word::BinaryOp;

    fn native_expected() -> bool {
        cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))
    }

    #[test]
    fn fig_3_9_jits_and_matches_threaded() {
        let f = JitFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        assert_eq!(f.is_jitted(), native_expected());
        let hit = samples::pup_packet_3mb(2, 0, 35, 1);
        let miss = samples::pup_packet_3mb(2, 0, 36, 1);
        assert!(f.eval(PacketView::new(&hit)));
        assert!(!f.eval(PacketView::new(&miss)));
    }

    #[test]
    fn forced_fallback_has_identical_verdicts() {
        let v = ValidatedProgram::new(samples::fig_3_9_pup_socket_35()).unwrap();
        let jit = JitFilter::from_validated(&v);
        let fallback = JitFilter::from_validated_forced_fallback(&v);
        assert!(!fallback.is_jitted());
        assert_eq!(fallback.native_code_len(), None);
        for pkt in [
            samples::pup_packet_3mb(2, 0, 35, 1),
            samples::pup_packet_3mb(2, 0, 36, 1),
            samples::pup_packet_3mb(3, 7, 35, 2),
            vec![0x11, 0x22],
            vec![],
        ] {
            let view = PacketView::new(&pkt);
            assert_eq!(jit.eval(view), fallback.eval(view));
        }
    }

    #[test]
    fn short_packets_fall_back_to_checked_semantics() {
        // COR accepts before the out-of-bounds load; the fallback keeps it.
        let p = Assembler::new(0)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 0x1111)
            .pushword(40)
            .finish();
        let f = JitFilter::compile(p).unwrap();
        assert!(f.eval(PacketView::new(&[0x11, 0x11])));
    }

    #[test]
    fn odd_length_packets_agree_with_threaded_code() {
        let prog = samples::fig_3_9_pup_socket_35();
        let jit = JitFilter::compile(prog.clone()).unwrap();
        let ir = IrFilter::compile(prog).unwrap();
        let mut pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        pkt.push(0xAB); // odd length: trailing byte is the high half
        let view = PacketView::new(&pkt);
        assert_eq!(jit.eval(view), ir.eval(view));
        // And every odd-length truncation.
        for n in (1..pkt.len()).step_by(2) {
            let view = PacketView::new(&pkt[..n]);
            assert_eq!(jit.eval(view), ir.eval(view), "prefix {n}");
        }
    }

    #[test]
    fn extended_arithmetic_matches_checked_interpreter() {
        let cfg = InterpConfig {
            dialect: Dialect::Extended,
            ..InterpConfig::default()
        };
        let checked = CheckedInterpreter::new(cfg);
        for op in [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Mod,
            BinaryOp::Lsh,
            BinaryOp::Rsh,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
            BinaryOp::Xor,
        ] {
            // word0 <op> word1, verdict = (result != 0).
            let p = Assembler::new(0).pushword(0).pushword_op(1, op).finish();
            let f = JitFilter::compile_with_config(p.clone(), cfg).unwrap();
            assert_eq!(f.is_jitted(), native_expected(), "{op:?}");
            for words in [
                [0u16, 0],
                [1, 0],
                [0, 1],
                [7, 3],
                [3, 7],
                [0xFFFF, 2],
                [0x8000, 0x8000],
                [1234, 1234],
                [0xABCD, 0x11],
                [2, 0xFFFF],
            ] {
                let pkt = [words[0].to_be_bytes(), words[1].to_be_bytes()].concat();
                let view = PacketView::new(&pkt);
                assert_eq!(f.eval(view), checked.eval(&p, view), "{op:?} on {words:?}");
            }
        }
    }

    #[test]
    fn division_by_zero_rejects() {
        let cfg = InterpConfig {
            dialect: Dialect::Extended,
            ..InterpConfig::default()
        };
        for op in [BinaryOp::Div, BinaryOp::Mod] {
            let p = Assembler::new(0).pushword(0).pushlit_op(op, 0).finish();
            let f = JitFilter::compile_with_config(p, cfg).unwrap();
            assert!(!f.eval(PacketView::new(&[0x12, 0x34])), "{op:?}");
        }
    }

    #[test]
    fn empty_program_accepts_everything() {
        let f = JitFilter::compile(FilterProgram::empty(0)).unwrap();
        assert!(f.eval(PacketView::new(&[])));
        assert!(f.eval(PacketView::new(&[1, 2, 3, 4])));
    }

    #[test]
    fn clone_shares_the_native_buffer() {
        let f = JitFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        let g = f.clone();
        assert_eq!(f.is_jitted(), g.is_jitted());
        let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
        assert!(g.eval(PacketView::new(&pkt)));
    }
}
