//! Geometric (tuple-space) packet classification: sublinear demux over
//! mixed exact-match and *range* filter populations.
//!
//! [`ShardedVnSet`](crate::set::ShardedVnSet) indexes members by a single
//! required word-*equality* literal — exactly right for the paper's
//! figure 3-9 port demultiplexers, and useless for a port-*range* rule,
//! which has no equality literal to key on. [`GeomSet`] generalizes the
//! index geometrically: every member's compiled code is analyzed for the
//! *required intervals* it imposes on packet words (`packet[w] ∈ [lo,hi]`
//! — an equality test is just the degenerate interval `[lit,lit]`), and
//! members are partitioned into **tuples** keyed by `(word, range-class)`.
//! Each exact tuple is a sorted literal map; each range tuple is a sparse
//! segment tree over the 16-bit word domain in which an interval occupies
//! its O(log U) canonical nodes, so a *stabbing query* — "which intervals
//! contain this packet's word value?" — walks one root-to-leaf path and
//! reports exactly the covering members. A packet therefore probes
//! O(#tuples · log U) index nodes plus the members its own bytes select,
//! instead of O(n) members.
//!
//! Updates are incremental: an insert touches only the member's own tuple
//! (O(log U) segment-tree nodes or one literal bucket), a remove
//! tombstones the slot, and the slab is compacted — members re-keyed
//! against fresh word statistics — only once tombstones outnumber live
//! members. Inserts also report *conflicts* on the key tuple: how many
//! existing intervals the new one overlaps, and whether one fully shadows
//! the other at a priority that makes the narrower filter unable to win
//! first-match (see [`GeomSet::overlap_count`]).
//!
//! Skipping a member not selected by its tuple is sound for the same
//! reason sharding is: its compiled path *requires* the packet word to
//! lie in the key interval, so a packet outside it cannot be accepted —
//! *provided* the packet is long enough for the compiled path. Shorter
//! packets take a slow path that walks every member, preserving the
//! checked-fallback semantics; programs that fail validation run on the
//! checked interpreter in the always-walked residue. Match results are
//! priority-ordered with insertion-order ties, exactly like every other
//! engine.

use crate::exec::{IrFilter, TOp};
use crate::ir::IrBinOp;
use pf_filter::dtree::FilterId;
use pf_filter::interp::{CheckedInterpreter, InterpConfig};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap};

/// A required constraint `packet[word] ∈ [lo, hi]` (inclusive, unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Packet word index the constraint reads.
    pub word: u16,
    /// Lowest accepted value.
    pub lo: u16,
    /// Highest accepted value.
    pub hi: u16,
}

impl Interval {
    /// Whether this is a degenerate (single-literal) interval.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

/// Counters from one whole-set evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GeomStats {
    /// Members whose bodies (or fallbacks) were evaluated.
    pub filters_evaluated: u32,
    /// Members the tuple index let the packet skip outright.
    pub filters_skipped: u32,
    /// Tuple sub-structures probed (one literal map or one range tree).
    pub tuples_probed: u32,
    /// Index nodes visited across all probes (one per literal-map lookup,
    /// one per segment-tree level) — the sublinearity witness: this grows
    /// with tuple count and log of the domain, never with member count.
    pub nodes_visited: u32,
    /// Threaded-code (or fallback interpreter) instructions executed.
    pub ops_executed: u32,
}

// ---------------------------------------------------------------------
// Required-interval analysis over threaded code.
// ---------------------------------------------------------------------

/// The interval constraints `program` provably requires of any packet it
/// accepts (`packet[word] ∈ [lo, hi]`), derived from its compiled
/// threaded code under the default configuration.
///
/// Sound and conservative: every returned constraint holds for *every*
/// accepted packet, and a program the pipeline cannot compile (or whose
/// constraints it cannot resolve) yields an empty list — the analysis
/// declines to help, it never lies. This is the soundness witness behind
/// range-aware admission gating and RSS flow pinning in `pf-kernel`:
/// equality is the degenerate `lo == hi` case, so consumers that need a
/// definite word value can filter on [`Interval::is_exact`].
pub fn required_constraints(program: &FilterProgram) -> Vec<Interval> {
    IrFilter::compile(program.clone())
        .map(|f| required_intervals(f.code()))
        .unwrap_or_default()
}

/// The interval constraints a compiled member *must* satisfy to accept:
/// atom `packet[w] ∈ [lo,hi]` is required iff no accepting return is
/// reachable when the atom is pinned false. Sound and conservative — a
/// [`TOp::ReturnReg`] of an unrelated register is treated as a possible
/// accept, and compares the analysis cannot resolve contribute nothing.
pub(crate) fn required_intervals(code: &[TOp]) -> Vec<Interval> {
    // Single-assignment registers: one global resolution pass suffices.
    let mut const_val: HashMap<u16, u16> = HashMap::new();
    let mut load_val: HashMap<u16, u16> = HashMap::new();
    for op in code {
        match *op {
            TOp::Const { dst, value } => {
                const_val.insert(dst, value);
            }
            TOp::LoadWord { dst, index } => {
                load_val.insert(dst, index);
            }
            _ => {}
        }
    }
    let mut atoms: Vec<Interval> = Vec::new();
    let mut atom_ids: HashMap<Interval, usize> = HashMap::new();
    let mut reg_atom: HashMap<u16, usize> = HashMap::new();
    let mut instr_atom: Vec<Option<usize>> = vec![None; code.len()];
    for (pc, op) in code.iter().enumerate() {
        let iv = match *op {
            TOp::GuardEqBr { word, lit, .. } | TOp::GuardNeBr { word, lit, .. } => Some(Interval {
                word,
                lo: lit,
                hi: lit,
            }),
            TOp::GuardInBr { word, lo, hi, .. } | TOp::GuardOutBr { word, lo, hi, .. } => {
                Some(Interval { word, lo, hi })
            }
            TOp::Bin { op, a, b, .. } => {
                let resolved = match (
                    load_val.get(&a),
                    const_val.get(&b),
                    load_val.get(&b),
                    const_val.get(&a),
                ) {
                    (Some(&w), Some(&l), _, _) => Some((w, l, true)),
                    (_, _, Some(&w), Some(&l)) => Some((w, l, false)),
                    _ => None,
                };
                resolved.and_then(|(w, l, word_is_left)| {
                    let span = match (op, word_is_left) {
                        (IrBinOp::Eq, _) => Some((l, l)),
                        (IrBinOp::Lt, true) | (IrBinOp::Gt, false) => {
                            l.checked_sub(1).map(|h| (0, h))
                        }
                        (IrBinOp::Le, true) | (IrBinOp::Ge, false) => Some((0, l)),
                        (IrBinOp::Gt, true) | (IrBinOp::Lt, false) => {
                            l.checked_add(1).map(|lo| (lo, u16::MAX))
                        }
                        (IrBinOp::Ge, true) | (IrBinOp::Le, false) => Some((l, u16::MAX)),
                        _ => None,
                    };
                    span.map(|(lo, hi)| Interval { word: w, lo, hi })
                })
            }
            _ => None,
        };
        if let Some(iv) = iv {
            let id = *atom_ids.entry(iv).or_insert_with(|| {
                atoms.push(iv);
                atoms.len() - 1
            });
            instr_atom[pc] = Some(id);
            if let TOp::Bin { dst, .. } = *op {
                reg_atom.insert(dst, id);
            }
        }
    }
    (0..atoms.len())
        .filter(|&aid| !accept_reachable_without(code, &instr_atom, &reg_atom, aid))
        .map(|aid| atoms[aid])
        .collect()
}

/// Whether any accepting return is reachable with atom `pinned` false.
fn accept_reachable_without(
    code: &[TOp],
    instr_atom: &[Option<usize>],
    reg_atom: &HashMap<u16, usize>,
    pinned: usize,
) -> bool {
    let mut visited = vec![false; code.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if pc >= code.len() || visited[pc] {
            continue;
        }
        visited[pc] = true;
        let this = instr_atom[pc];
        match code[pc] {
            TOp::Const { .. } | TOp::LoadWord { .. } | TOp::LoadInd { .. } | TOp::Bin { .. } => {
                stack.push(pc + 1)
            }
            TOp::Jump { target } => stack.push(target as usize),
            TOp::BranchIf { cond, target } => {
                if reg_atom.get(&cond) == Some(&pinned) {
                    stack.push(pc + 1);
                } else {
                    stack.push(target as usize);
                    stack.push(pc + 1);
                }
            }
            TOp::BranchIfNot { cond, target } => {
                if reg_atom.get(&cond) == Some(&pinned) {
                    stack.push(target as usize);
                } else {
                    stack.push(target as usize);
                    stack.push(pc + 1);
                }
            }
            // Jump-on-true guards: pinned false falls through.
            TOp::GuardEqBr { target, .. } | TOp::GuardInBr { target, .. } => {
                if this == Some(pinned) {
                    stack.push(pc + 1);
                } else {
                    stack.push(target as usize);
                    stack.push(pc + 1);
                }
            }
            // Jump-on-false guards: pinned false takes the jump.
            TOp::GuardNeBr { target, .. } | TOp::GuardOutBr { target, .. } => {
                if this == Some(pinned) {
                    stack.push(target as usize);
                } else {
                    stack.push(target as usize);
                    stack.push(pc + 1);
                }
            }
            TOp::Return { accept } => {
                if accept {
                    return true;
                }
            }
            TOp::ReturnReg { reg } => {
                if reg_atom.get(&reg) != Some(&pinned) {
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// The sparse segment tree backing one range tuple.
// ---------------------------------------------------------------------

const ROOT: u32 = 1;
const DOMAIN_HI: u32 = u16::MAX as u32;

/// A sparse segment tree over the 16-bit word domain. An interval is
/// stored in its O(log U) canonical nodes; a stabbing query for value `v`
/// walks the root-to-leaf(`v`) path and reports each covering interval
/// exactly once. Nodes are implicit heap indices, materialized in a hash
/// map only when occupied, so memory is O(intervals · log U) regardless
/// of the domain.
#[derive(Debug, Default)]
struct RangeTree {
    nodes: HashMap<u32, Vec<u32>>,
    /// Interval start → member slots, for output-sensitive overlap
    /// enumeration: everything intersecting `[lo,hi]` either *starts*
    /// inside it (this map) or covers `lo` (a stab).
    starts: BTreeMap<u16, Vec<u32>>,
    /// Entries inserted and not yet compacted away (tombstones included).
    len: usize,
}

impl RangeTree {
    fn insert(&mut self, lo: u16, hi: u16, slot: u32) {
        self.len += 1;
        self.starts.entry(lo).or_default().push(slot);
        Self::cover(
            &mut self.nodes,
            ROOT,
            0,
            DOMAIN_HI,
            u32::from(lo),
            u32::from(hi),
            slot,
        );
    }

    fn cover(
        nodes: &mut HashMap<u32, Vec<u32>>,
        node: u32,
        nlo: u32,
        nhi: u32,
        lo: u32,
        hi: u32,
        slot: u32,
    ) {
        if hi < nlo || nhi < lo {
            return;
        }
        if lo <= nlo && nhi <= hi {
            nodes.entry(node).or_default().push(slot);
            return;
        }
        let mid = (nlo + nhi) / 2;
        Self::cover(nodes, 2 * node, nlo, mid, lo, hi, slot);
        Self::cover(nodes, 2 * node + 1, mid + 1, nhi, lo, hi, slot);
    }

    /// Collects every stored interval containing `v` into `out`; returns
    /// the number of tree levels visited.
    fn stab(&self, v: u16, out: &mut Vec<u32>) -> u32 {
        let v = u32::from(v);
        let (mut node, mut nlo, mut nhi) = (ROOT, 0u32, DOMAIN_HI);
        let mut levels = 0;
        loop {
            levels += 1;
            if let Some(list) = self.nodes.get(&node) {
                out.extend_from_slice(list);
            }
            if nlo == nhi {
                return levels;
            }
            let mid = (nlo + nhi) / 2;
            if v <= mid {
                node *= 2;
                nhi = mid;
            } else {
                node = 2 * node + 1;
                nlo = mid + 1;
            }
        }
    }
}

/// One packet word's tuples: the exact (literal) class and the range
/// class. Either may be empty; [`GeomSet::tuple_count`] counts occupied
/// classes.
#[derive(Debug, Default)]
struct WordIndex {
    exact: BTreeMap<u16, Vec<u32>>,
    exact_len: usize,
    range: RangeTree,
}

// ---------------------------------------------------------------------
// The set.
// ---------------------------------------------------------------------

/// How a member is executed.
#[derive(Debug)]
enum GeomMemberKind {
    /// Compiled to threaded code.
    Compiled(IrFilter),
    /// Failed validation; the checked interpreter defines its behavior.
    Checked(FilterProgram),
}

#[derive(Debug)]
struct GeomMember {
    id: FilterId,
    priority: u8,
    seq: u64,
    /// Every required interval the analysis proved — kept for re-keying
    /// at compaction and for the word statistics.
    atoms: Vec<Interval>,
    /// The interval this member is indexed under (`None` = residue).
    key: Option<Interval>,
    kind: GeomMemberKind,
}

/// Below this population a compaction is too cheap to defer.
const COMPACT_MIN: usize = 16;

/// A geometric demultiplexing set over mixed exact and range filters.
///
/// # Examples
///
/// ```
/// use pf_filter::packet::PacketView;
/// use pf_filter::samples;
/// use pf_ir::geom::GeomSet;
///
/// let mut set = GeomSet::new();
/// set.insert(7, samples::pup_socket_filter(10, 0, 35));
/// set.insert(9, samples::socket_range_filter(10, 40, 49));
/// let pkt = samples::pup_packet_3mb(2, 0, 44, 1);
/// assert_eq!(set.first_match(PacketView::new(&pkt)), Some(9));
/// // One exact tuple and one range tuple, both on the socket word.
/// assert_eq!(set.tuple_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct GeomSet {
    config: InterpConfig,
    next_seq: u64,
    /// Member slab; `None` is a tombstone awaiting compaction.
    slots: Vec<Option<GeomMember>>,
    id_to_slot: HashMap<FilterId, u32>,
    /// `(Reverse(priority), seq, slot)`, sorted — match order. Tombstoned
    /// slots stay until compaction (their sort key is in the tuple).
    order: Vec<(Reverse<u8>, u64, u32)>,
    tuples: BTreeMap<u16, WordIndex>,
    /// Members with no usable key, walked for every packet.
    residue: Vec<u32>,
    /// word → distinct required interval → refcount, over *all* atoms of
    /// live members: the key-choice statistic (most-diverse word wins).
    interval_refs: HashMap<u16, HashMap<(u16, u16), u32>>,
    /// Packets shorter than this take the walk-everything slow path.
    fast_min_words: usize,
    live: usize,
    dead: usize,
    compactions: u64,
    overlaps: u64,
    shadows: u64,
    /// Reused match-result buffer: evaluating a packet allocates nothing.
    scratch: Vec<FilterId>,
    /// Reused candidate-slot buffer.
    cand: Vec<u32>,
    /// Optional bound on candidates evaluated per packet. Under a
    /// wide-overlap population a hostile probe can select nearly every
    /// member; the cap keeps per-packet evaluation bounded by pruning the
    /// candidate list *after* the priority sort, so only the
    /// lowest-priority (latest-inserted) candidates are shed.
    candidate_cap: Option<usize>,
    /// Candidates pruned by the cap, cumulative over all evaluations.
    candidates_capped: u64,
}

impl GeomSet {
    /// An empty set under the default configuration (classic dialect,
    /// paper-style short circuits) — the kernel device's configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set under an explicit interpreter configuration.
    pub fn with_config(config: InterpConfig) -> Self {
        GeomSet {
            config,
            ..Default::default()
        }
    }

    /// Number of live filters in the set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the set holds no live filters.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// How many members compiled to threaded code (the rest run on the
    /// checked interpreter, in the residue).
    pub fn compiled(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|m| matches!(m.kind, GeomMemberKind::Compiled(_)))
            .count()
    }

    /// Occupied `(word, range-class)` tuples — what every packet probes.
    pub fn tuple_count(&self) -> usize {
        self.tuples
            .values()
            .map(|t| usize::from(t.exact_len > 0) + usize::from(t.range.len > 0))
            .sum()
    }

    /// Members in no tuple, walked for every packet.
    pub fn residue_len(&self) -> usize {
        self.residue
            .iter()
            .filter(|&&s| self.slots[s as usize].is_some())
            .count()
    }

    /// Tombstoned slots awaiting compaction.
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Slab/index compactions performed (each re-keys every member).
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Key-tuple interval overlaps observed across all inserts: each
    /// counts one existing member whose key interval intersected a newly
    /// inserted member's on the same word.
    pub fn overlap_count(&self) -> u64 {
        self.overlaps
    }

    /// Shadowing conflicts observed across all inserts: an overlap where
    /// one interval fully contains the other *and* the containing filter
    /// matches first (higher priority, or equal priority and earlier
    /// insertion), so the narrower filter can never win first-match among
    /// packets distinguished only by this word.
    pub fn shadow_count(&self) -> u64 {
        self.shadows
    }

    /// Bounds candidates evaluated per packet to `cap` (`None` removes
    /// the bound — the default). The candidate list is pruned *after* the
    /// priority sort, so the cap sheds only the lowest-priority /
    /// latest-inserted candidates: a first-match winner among the top
    /// `cap` candidates is unaffected; members beyond the cap are
    /// deliberately not evaluated (their would-be matches are shed).
    pub fn set_candidate_cap(&mut self, cap: Option<usize>) {
        self.candidate_cap = cap;
    }

    /// The configured per-packet candidate bound, if any.
    pub fn candidate_cap(&self) -> Option<usize> {
        self.candidate_cap
    }

    /// Candidates pruned by the cap, cumulative over all evaluations.
    pub fn candidates_capped(&self) -> u64 {
        self.candidates_capped
    }

    /// Inserts (or replaces) the filter for `id`.
    pub fn insert(&mut self, id: FilterId, program: FilterProgram) {
        self.remove(id);
        let seq = self.next_seq;
        self.next_seq += 1;
        let priority = program.priority();
        let (kind, atoms) = match IrFilter::compile_with_config(program.clone(), self.config) {
            Ok(filter) => {
                let atoms = required_intervals(filter.code());
                (GeomMemberKind::Compiled(filter), atoms)
            }
            Err(_) => (GeomMemberKind::Checked(program), Vec::new()),
        };
        for a in &atoms {
            *self
                .interval_refs
                .entry(a.word)
                .or_default()
                .entry((a.lo, a.hi))
                .or_insert(0) += 1;
        }
        let key = self.choose_key(&atoms);
        if let Some(k) = key {
            self.record_conflicts(k, priority);
        }
        let slot = self.slots.len() as u32;
        let member = GeomMember {
            id,
            priority,
            seq,
            atoms,
            key,
            kind,
        };
        self.index_member(slot, &member);
        self.slots.push(Some(member));
        self.id_to_slot.insert(id, slot);
        let entry = (Reverse(priority), seq, slot);
        let at = self
            .order
            .partition_point(|e| (e.0, e.1) <= (entry.0, entry.1));
        self.order.insert(at, entry);
        self.live += 1;
    }

    /// Removes the filter for `id`; `true` if it was present.
    ///
    /// The slot is tombstoned — index buckets keep the stale entry, which
    /// walks skip — and the slab is compacted (tombstones dropped, every
    /// member re-keyed against fresh word statistics) only once
    /// tombstones outnumber live members, so steady churn costs O(log U)
    /// per operation rather than a full rebuild.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let Some(slot) = self.id_to_slot.remove(&id) else {
            return false;
        };
        let m = self.slots[slot as usize].take().expect("live slot");
        self.live -= 1;
        self.dead += 1;
        for a in &m.atoms {
            if let Some(word_refs) = self.interval_refs.get_mut(&a.word) {
                if let Some(c) = word_refs.get_mut(&(a.lo, a.hi)) {
                    *c -= 1;
                    if *c == 0 {
                        word_refs.remove(&(a.lo, a.hi));
                    }
                }
            }
        }
        self.maybe_compact();
        true
    }

    /// The key the statistics favor: the word carrying the most distinct
    /// required intervals set-wide (the most discriminating), tie-broken
    /// toward deeper header words and then narrower intervals.
    fn choose_key(&self, atoms: &[Interval]) -> Option<Interval> {
        atoms.iter().copied().max_by_key(|a| {
            let diversity = self.interval_refs.get(&a.word).map_or(0, HashMap::len);
            (diversity, a.word, Reverse(a.hi - a.lo))
        })
    }

    fn index_member(&mut self, slot: u32, member: &GeomMember) {
        match (member.key, &member.kind) {
            (Some(k), GeomMemberKind::Compiled(filter)) => {
                let idx = self.tuples.entry(k.word).or_default();
                if k.is_exact() {
                    idx.exact.entry(k.lo).or_default().push(slot);
                    idx.exact_len += 1;
                } else {
                    idx.range.insert(k.lo, k.hi, slot);
                }
                self.fast_min_words = self.fast_min_words.max(filter.min_packet_words());
            }
            _ => self.residue.push(slot),
        }
    }

    /// Counts overlap and shadowing conflicts between `key` and the live
    /// intervals already indexed on the same word. Output-sensitive:
    /// one literal-map range scan, one start-map range scan, one stab.
    fn record_conflicts(&mut self, key: Interval, priority: u8) {
        let Some(idx) = self.tuples.get(&key.word) else {
            return;
        };
        let mut seen: Vec<u32> = Vec::new();
        for (_, list) in idx.exact.range(key.lo..=key.hi) {
            seen.extend_from_slice(list);
        }
        for (_, list) in idx.range.starts.range(key.lo..=key.hi) {
            seen.extend_from_slice(list);
        }
        idx.range.stab(key.lo, &mut seen);
        seen.sort_unstable();
        seen.dedup();
        for s in seen {
            let Some(m) = self.slots[s as usize].as_ref() else {
                continue;
            };
            let Some(ok) = m.key else { continue };
            self.overlaps += 1;
            // Shadowed in either direction: the containing interval's
            // member matches first (new-over-old needs strictly higher
            // priority; old-over-new wins priority ties by insertion).
            let new_shadows_old = key.contains(&ok) && priority > m.priority;
            let old_shadows_new = ok.contains(&key) && m.priority >= priority;
            if new_shadows_old || old_shadows_new {
                self.shadows += 1;
            }
        }
    }

    fn maybe_compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let total = self.live + self.dead;
        if total < COMPACT_MIN || self.dead > self.live {
            self.compact();
        }
    }

    /// Drops tombstones and rebuilds the index, re-keying every member
    /// against the current word statistics (so a population whose
    /// discriminating word drifted re-clusters on the better key).
    fn compact(&mut self) {
        self.compactions += 1;
        let mut old_slots = std::mem::take(&mut self.slots);
        let old_order = std::mem::take(&mut self.order);
        self.tuples.clear();
        self.residue.clear();
        self.fast_min_words = 0;
        self.dead = 0;
        // `interval_refs` is already maintained incrementally and counts
        // only live members; keys are re-chosen against it wholesale.
        let mut members: Vec<GeomMember> = old_order
            .into_iter()
            .filter_map(|(_, _, s)| old_slots[s as usize].take())
            .collect();
        for m in &mut members {
            m.key = self.choose_key(&m.atoms);
        }
        for (slot, m) in members.iter().enumerate() {
            self.index_member(slot as u32, m);
        }
        self.order = members
            .iter()
            .enumerate()
            .map(|(slot, m)| (Reverse(m.priority), m.seq, slot as u32))
            .collect();
        self.id_to_slot = members
            .iter()
            .enumerate()
            .map(|(slot, m)| (m.id, slot as u32))
            .collect();
        self.slots = members.into_iter().map(Some).collect();
    }

    /// Ids of every filter accepting the packet, in match order (priority
    /// descending, insertion order within a priority).
    pub fn matches(&mut self, packet: PacketView<'_>) -> Vec<FilterId> {
        self.matches_with_stats(packet).0.to_vec()
    }

    /// The first (highest-priority) accepting filter, if any.
    pub fn first_match(&mut self, packet: PacketView<'_>) -> Option<FilterId> {
        self.walk(packet, true).1.first().copied()
    }

    /// [`GeomSet::matches`] plus execution counters. The returned slice
    /// borrows the set's reused scratch buffer — no per-packet
    /// allocation — and is valid until the next evaluation.
    pub fn matches_with_stats(&mut self, packet: PacketView<'_>) -> (&[FilterId], GeomStats) {
        let (stats, ids) = self.walk(packet, false);
        (ids, stats)
    }

    /// Gathers the candidate slots the tuple index selects for `packet`
    /// into `cand`, sorted into match order, then prunes to `cap` if one
    /// is set (highest-priority candidates survive). Returns how many
    /// candidates the cap shed. Fast-path only.
    fn gather(
        tuples: &BTreeMap<u16, WordIndex>,
        residue: &[u32],
        slots: &[Option<GeomMember>],
        packet: PacketView<'_>,
        cand: &mut Vec<u32>,
        stats: &mut GeomStats,
        cap: Option<usize>,
    ) -> u64 {
        cand.clear();
        for (&word, idx) in tuples.iter() {
            let Some(v) = packet.word(usize::from(word)) else {
                continue;
            };
            if idx.exact_len > 0 {
                stats.tuples_probed += 1;
                stats.nodes_visited += 1;
                if let Some(list) = idx.exact.get(&v) {
                    cand.extend_from_slice(list);
                }
            }
            if idx.range.len > 0 {
                stats.tuples_probed += 1;
                stats.nodes_visited += idx.range.stab(v, cand);
            }
        }
        cand.extend_from_slice(residue);
        cand.retain(|&s| slots[s as usize].is_some());
        cand.sort_unstable_by_key(|&s| {
            let m = slots[s as usize].as_ref().expect("retained live");
            (Reverse(m.priority), m.seq)
        });
        match cap {
            Some(cap) if cand.len() > cap => {
                let pruned = cand.len() - cap;
                cand.truncate(cap);
                pruned as u64
            }
            _ => 0,
        }
    }

    fn walk(&mut self, packet: PacketView<'_>, stop_at_first: bool) -> (GeomStats, &[FilterId]) {
        let Self {
            slots,
            order,
            tuples,
            residue,
            fast_min_words,
            live,
            scratch,
            cand,
            config,
            candidate_cap,
            candidates_capped,
            ..
        } = self;
        scratch.clear();
        let mut stats = GeomStats::default();
        if packet.word_len() >= *fast_min_words {
            *candidates_capped += Self::gather(
                tuples,
                residue,
                slots,
                packet,
                cand,
                &mut stats,
                *candidate_cap,
            );
            for &s in cand.iter() {
                let m = slots[s as usize].as_ref().expect("retained live");
                if eval_member(m, packet, *config, &mut stats) {
                    scratch.push(m.id);
                    if stop_at_first {
                        break;
                    }
                }
            }
        } else {
            // Short packet: the index says nothing about checked
            // fallbacks, so walk every live member in match order.
            for &(_, _, s) in order.iter() {
                let Some(m) = slots[s as usize].as_ref() else {
                    continue;
                };
                if eval_member(m, packet, *config, &mut stats) {
                    scratch.push(m.id);
                    if stop_at_first {
                        break;
                    }
                }
            }
        }
        stats.filters_skipped = *live as u32 - stats.filters_evaluated;
        (stats, scratch)
    }

    /// [`GeomSet::matches`] over a batch of packets, with per-packet
    /// counters. Verdicts are identical to calling `matches` per packet;
    /// what the batch amortizes is the index probe — the candidate list
    /// (and its probe counters) is computed once per *run* of packets
    /// whose tuple-key words all agree, the common case under RSS
    /// flow-grouped delivery.
    pub fn matches_batch_with_stats(
        &mut self,
        packets: &[PacketView<'_>],
    ) -> (Vec<Vec<FilterId>>, Vec<GeomStats>) {
        let mut out = Vec::with_capacity(packets.len());
        let mut out_stats = Vec::with_capacity(packets.len());
        let words: Vec<u16> = self.tuples.keys().copied().collect();
        let mut cached_key: Option<Vec<Option<u16>>> = None;
        let mut cached_probe = (0u32, 0u32);
        let mut cached_pruned = 0u64;
        let mut key_buf: Vec<Option<u16>> = Vec::with_capacity(words.len());
        for &packet in packets {
            let mut stats = GeomStats::default();
            let mut ids = Vec::new();
            if packet.word_len() >= self.fast_min_words {
                key_buf.clear();
                key_buf.extend(words.iter().map(|&w| packet.word(usize::from(w))));
                if cached_key.as_deref() != Some(key_buf.as_slice()) {
                    let Self {
                        slots,
                        tuples,
                        residue,
                        cand,
                        candidate_cap,
                        ..
                    } = &mut *self;
                    cached_pruned = Self::gather(
                        tuples,
                        residue,
                        slots,
                        packet,
                        cand,
                        &mut stats,
                        *candidate_cap,
                    );
                    cached_probe = (stats.tuples_probed, stats.nodes_visited);
                    cached_key = Some(key_buf.clone());
                } else {
                    // Same probe the scalar walk would have performed.
                    stats.tuples_probed = cached_probe.0;
                    stats.nodes_visited = cached_probe.1;
                }
                self.candidates_capped += cached_pruned;
                for &s in self.cand.iter() {
                    let m = self.slots[s as usize].as_ref().expect("retained live");
                    if eval_member(m, packet, self.config, &mut stats) {
                        ids.push(m.id);
                    }
                }
            } else {
                for &(_, _, s) in self.order.iter() {
                    let Some(m) = self.slots[s as usize].as_ref() else {
                        continue;
                    };
                    if eval_member(m, packet, self.config, &mut stats) {
                        ids.push(m.id);
                    }
                }
            }
            stats.filters_skipped = self.live as u32 - stats.filters_evaluated;
            out.push(ids);
            out_stats.push(stats);
        }
        (out, out_stats)
    }
}

/// Evaluates one member. [`IrFilter::eval_with_stats`] routes packets
/// shorter than the member's own static minimum to its checked fallback
/// internally, so per-member semantics match every other engine.
fn eval_member(
    m: &GeomMember,
    packet: PacketView<'_>,
    config: InterpConfig,
    stats: &mut GeomStats,
) -> bool {
    stats.filters_evaluated += 1;
    match &m.kind {
        GeomMemberKind::Checked(program) => {
            let (accept, s) = CheckedInterpreter::new(config).eval_with_stats(program, packet);
            stats.ops_executed += s.instructions;
            accept
        }
        GeomMemberKind::Compiled(filter) => {
            let (accept, s) = filter.eval_with_stats(packet);
            stats.ops_executed += s.ops_executed;
            accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::ShardedVnSet;
    use pf_filter::program::Assembler;
    use pf_filter::samples;
    use pf_filter::word::BinaryOp;

    fn pkt(sock: u16) -> Vec<u8> {
        samples::pup_packet_3mb(2, 0, sock, 1)
    }

    #[test]
    fn required_intervals_of_range_filter() {
        let f = IrFilter::compile(samples::socket_range_filter(10, 100, 200)).unwrap();
        let req = required_intervals(f.code());
        assert!(
            req.contains(&Interval {
                word: 8,
                lo: 100,
                hi: 200
            }),
            "{req:?}"
        );
        assert!(
            req.contains(&Interval {
                word: 1,
                lo: 2,
                hi: 2
            }),
            "{req:?}"
        );
    }

    #[test]
    fn required_intervals_of_fig_3_9() {
        let f = IrFilter::compile(samples::fig_3_9_pup_socket_35()).unwrap();
        let req = required_intervals(f.code());
        for (word, lit) in [(8u16, 35u16), (7, 0), (1, 2)] {
            assert!(
                req.contains(&Interval {
                    word,
                    lo: lit,
                    hi: lit
                }),
                "missing ({word},{lit}): {req:?}"
            );
        }
    }

    #[test]
    fn accept_all_has_no_required_intervals() {
        let f = IrFilter::compile(samples::accept_all(1)).unwrap();
        assert!(required_intervals(f.code()).is_empty());
    }

    #[test]
    fn range_tree_stab_reports_exactly_covering_intervals() {
        let mut t = RangeTree::default();
        t.insert(10, 20, 0);
        t.insert(15, 30, 1);
        t.insert(0, u16::MAX, 2);
        t.insert(21, 21, 3);
        for (v, expect) in [
            (9u16, vec![2u32]),
            (10, vec![0, 2]),
            (17, vec![0, 1, 2]),
            (21, vec![1, 2, 3]),
            (31, vec![2]),
            (u16::MAX, vec![2]),
        ] {
            let mut got = Vec::new();
            t.stab(v, &mut got);
            got.sort_unstable();
            assert_eq!(got, expect, "v={v}");
        }
    }

    #[test]
    fn ranges_and_exacts_share_priority_order() {
        let mut set = GeomSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 44)); // exact
        set.insert(2, samples::socket_range_filter(20, 40, 49)); // range, higher prio
        set.insert(3, samples::socket_range_filter(10, 0, u16::MAX)); // catch-all range
        set.insert(4, samples::accept_all(1)); // residue
        let p = pkt(44);
        assert_eq!(set.matches(PacketView::new(&p)), vec![2, 1, 3, 4]);
        assert_eq!(set.first_match(PacketView::new(&p)), Some(2));
        let p = pkt(99);
        assert_eq!(set.matches(PacketView::new(&p)), vec![3, 4]);
    }

    #[test]
    fn index_skips_non_covering_members() {
        let mut set = GeomSet::new();
        for i in 0..32u16 {
            set.insert(u32::from(i), samples::pup_socket_filter(10, 0, 100 + i));
        }
        for i in 0..32u16 {
            let lo = 1000 + 10 * i;
            set.insert(
                u32::from(100 + i),
                samples::socket_range_filter(10, lo, lo + 9),
            );
        }
        let p = pkt(115);
        let (ids, stats) = set.matches_with_stats(PacketView::new(&p));
        assert_eq!(ids, vec![15]);
        assert_eq!(stats.filters_evaluated, 1, "{stats:?}");
        assert_eq!(stats.filters_skipped, 63, "{stats:?}");
        let p = pkt(1155);
        let (ids, stats) = set.matches_with_stats(PacketView::new(&p));
        assert_eq!(ids, vec![115]);
        assert_eq!(stats.filters_evaluated, 1, "{stats:?}");
    }

    #[test]
    fn agrees_with_sharded_set_on_mixed_population() {
        let mut geom = GeomSet::new();
        let mut sharded = ShardedVnSet::new();
        let mut invalid = Assembler::new(15)
            .pushword(0)
            .pushlit_op(BinaryOp::Cor, 0x0102)
            .finish()
            .words()
            .to_vec();
        invalid.push(15 << 6);
        let filters = [
            (1u32, samples::pup_socket_filter(10, 0, 35)),
            (2, samples::pup_socket_filter(10, 0, 44)),
            (3, samples::socket_range_filter(10, 40, 60)),
            (4, samples::socket_range_filter(20, 50, 55)),
            (5, samples::fig_3_8_pup_type_range()),
            (6, samples::ethertype_filter(5, 2)),
            (7, samples::accept_all(1)),
            (8, samples::reject_all(30)),
            (9, FilterProgram::from_words(15, invalid)),
        ];
        for (id, f) in &filters {
            geom.insert(*id, f.clone());
            sharded.insert(*id, f.clone());
        }
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for sock in [35u16, 40, 44, 52, 60, 61, 99] {
            for et in [2u16, 3] {
                frames.push(samples::pup_packet_3mb(et, 0, sock, 1));
            }
        }
        frames.push(pkt(44)[..6].to_vec()); // truncated
        frames.push(Vec::new()); // empty
        for (i, f) in frames.iter().enumerate() {
            let v = PacketView::new(f);
            assert_eq!(geom.matches(v), sharded.matches(v), "frame {i}");
        }
    }

    #[test]
    fn short_packets_walk_everything() {
        let mut set = GeomSet::new();
        set.insert(1, samples::pup_socket_filter(10, 0, 35));
        set.insert(2, samples::socket_range_filter(10, 100, 200));
        // Too short for word 8: must reject via fallback, not panic.
        assert_eq!(set.first_match(PacketView::new(&[1, 2, 3, 4])), None);
    }

    #[test]
    fn remove_tombstones_then_compaction_fires() {
        let mut set = GeomSet::new();
        for i in 0..32u16 {
            set.insert(
                u32::from(i),
                samples::socket_range_filter(10, 100 * i, 100 * i + 50),
            );
        }
        for i in 0..16u32 {
            assert!(set.remove(i));
        }
        assert_eq!(set.compaction_count(), 0, "deferred while dead <= live");
        assert_eq!(set.tombstones(), 16);
        assert!(set.remove(16));
        assert_eq!(set.compaction_count(), 1, "dead > live compacts");
        assert_eq!(set.tombstones(), 0);
        assert_eq!(set.len(), 15);
        let p = pkt(2025);
        assert_eq!(set.matches(PacketView::new(&p)), vec![20]);
    }

    #[test]
    fn churn_is_incremental_no_compactions() {
        let mut set = GeomSet::new();
        for i in 0..64u16 {
            set.insert(
                u32::from(i),
                samples::socket_range_filter(10, 100 * i, 100 * i + 50),
            );
        }
        // Balanced remove+insert churn: tombstones never outnumber live.
        for round in 0..60u16 {
            let id = u32::from(round % 64);
            assert!(set.remove(id));
            let lo = 100 * (round % 64);
            set.insert(id, samples::socket_range_filter(10, lo, lo + 50));
        }
        assert_eq!(set.compaction_count(), 0, "steady churn must not rebuild");
        let p = pkt(2025);
        assert_eq!(set.matches(PacketView::new(&p)), vec![20]);
    }

    #[test]
    fn overlap_and_shadow_counters() {
        let mut set = GeomSet::new();
        set.insert(1, samples::socket_range_filter(10, 100, 200));
        assert_eq!(set.overlap_count(), 0);
        // Disjoint: no conflict.
        set.insert(2, samples::socket_range_filter(10, 300, 400));
        assert_eq!(set.overlap_count(), 0);
        // Overlaps 1 without containment: overlap, no shadow.
        set.insert(3, samples::socket_range_filter(10, 150, 250));
        assert_eq!(set.overlap_count(), 1);
        assert_eq!(set.shadow_count(), 0);
        // Nested inside 1 at lower priority: 1 matches first everywhere
        // in [120,130] — shadowed on this tuple.
        set.insert(4, samples::socket_range_filter(5, 120, 130));
        assert_eq!(set.overlap_count(), 2, "(3 vs 1) and (4 vs 1)");
        assert_eq!(set.shadow_count(), 1);
        // A higher-priority cover arriving later shadows the covered one.
        set.insert(5, samples::socket_range_filter(30, 0, 1000));
        assert!(set.shadow_count() >= 2, "{}", set.shadow_count());
    }

    #[test]
    fn batch_matches_scalar() {
        let mut set = GeomSet::new();
        for (id, sock) in [(1u32, 35u16), (2, 44), (3, 55)] {
            set.insert(id, samples::pup_socket_filter(10, 0, sock));
        }
        set.insert(4, samples::socket_range_filter(20, 40, 60));
        set.insert(5, samples::accept_all(1));
        let frames: Vec<Vec<u8>> = vec![
            pkt(35),
            pkt(44),
            pkt(44), // same-key run: exercises the cached candidates
            pkt(99),
            pkt(55)[..6].to_vec(), // truncated: slow path
            Vec::new(),            // empty frame
        ];
        let views: Vec<PacketView<'_>> = frames.iter().map(|f| PacketView::new(f)).collect();
        let (batched, stats) = set.matches_batch_with_stats(&views);
        for (i, v) in views.iter().enumerate() {
            let (expect, expect_stats) = {
                let (ids, s) = set.matches_with_stats(*v);
                (ids.to_vec(), s)
            };
            assert_eq!(batched[i], expect, "packet {i} diverged");
            assert_eq!(stats[i], expect_stats, "packet {i} stats diverged");
        }
    }

    #[test]
    fn replace_keeps_single_entry() {
        let mut set = GeomSet::new();
        set.insert(1, samples::socket_range_filter(10, 0, 100));
        set.insert(1, samples::socket_range_filter(10, 200, 300));
        assert_eq!(set.len(), 1);
        assert_eq!(set.first_match(PacketView::new(&pkt(50))), None);
        assert_eq!(set.first_match(PacketView::new(&pkt(250))), Some(1));
    }

    #[test]
    fn probe_work_is_logarithmic_in_population() {
        // The sublinearity witness: growing the population 16x must not
        // grow per-packet index work (tuple probes are fixed by the
        // tuple count; tree descent is fixed by the domain).
        let mut small = GeomSet::new();
        let mut big = GeomSet::new();
        for i in 0..64u32 {
            small.insert(
                i,
                samples::socket_range_filter(10, (i as u16) * 8, (i as u16) * 8 + 7),
            );
        }
        for i in 0..1024u32 {
            big.insert(
                i,
                samples::socket_range_filter(10, (i as u16) * 8, (i as u16) * 8 + 7),
            );
        }
        let p = pkt(100);
        let (_, s_small) = small.matches_with_stats(PacketView::new(&p));
        let (_, s_big) = big.matches_with_stats(PacketView::new(&p));
        assert_eq!(
            s_small.nodes_visited, s_big.nodes_visited,
            "{s_small:?} vs {s_big:?}"
        );
        assert_eq!(s_big.filters_evaluated, 1, "{s_big:?}");
    }

    #[test]
    fn candidate_cap_bounds_wide_overlap_evaluation() {
        // An overlap bomb: 40 nested ranges that all contain the probe
        // point, so the index can rule nothing out and evaluation, not
        // probing, dominates.
        let mut set = GeomSet::new();
        for i in 0..40u32 {
            let w = i as u16;
            set.insert(i, samples::socket_range_filter(10, 1000 + w, 3000 - w));
        }
        assert!(set.overlap_count() > 0, "nested inserts overlap");
        assert!(
            set.shadow_count() > 0,
            "narrower later inserts are shadowed"
        );
        let p = pkt(2000);
        let (_, undefended) = set.matches_with_stats(PacketView::new(&p));
        assert_eq!(undefended.filters_evaluated, 40, "{undefended:?}");
        // The mitigation: cap candidates per packet; the priority-sorted
        // pruning keeps the first-match winner (earliest seq at equal
        // priority) and bounds evaluation.
        set.set_candidate_cap(Some(8));
        let (_, capped) = set.matches_with_stats(PacketView::new(&p));
        assert!(capped.filters_evaluated <= 8, "{capped:?}");
        assert_eq!(set.candidates_capped(), 32);
        assert_eq!(set.first_match(PacketView::new(&p)), Some(0));
        // The batch path prunes identically (and counts per packet).
        let before = set.candidates_capped();
        let views = [PacketView::new(&p), PacketView::new(&p)];
        let (ids, stats) = set.matches_batch_with_stats(&views);
        assert!(stats.iter().all(|s| s.filters_evaluated <= 8));
        assert_eq!(ids[0].first(), Some(&0));
        // 32 pruned for each of the two packets (the cached key-run
        // replays the probe's pruning per packet).
        assert_eq!(set.candidates_capped() - before, 64);
    }
}
