//! The unified execution-surface API.
//!
//! Every rung of the workspace's execution ladder — checked interpreter,
//! validated-program evaluator, compiled closures, decision-table set,
//! threaded code, guard-sharing set, sharded value-numbered set,
//! geometric (tuple-space) classifier, and (feature `jit`) the template
//! JIT — answers the same question: *which
//! filter, if any, accepts this packet?* [`FilterEngine`] makes that the
//! whole API, so differential suites and bench ladders iterate a
//! `Vec<Box<dyn FilterEngine>>` instead of hand-written per-engine match
//! arms, and a new surface registers by adding one impl to
//! [`singleton_engines`].

use crate::exec::IrFilter;
use crate::geom::GeomSet;
use crate::set::{IrFilterSet, ShardedVnSet};
use pf_filter::compile::CompiledFilter;
use pf_filter::dtree::FilterSet;
use pf_filter::interp::{CheckedInterpreter, InterpConfig};
use pf_filter::packet::PacketView;
use pf_filter::program::FilterProgram;
use pf_filter::validate::ValidatedProgram;

/// One execution surface holding one or more compiled filters.
///
/// `matches` returns the id of the highest-priority accepting filter
/// (engines built by [`singleton_engines`] hold a single filter with
/// id 0). Implementations take `&mut self` because the set engines keep
/// per-packet memoization scratch.
pub trait FilterEngine {
    /// Stable engine label, used in reports and test diagnostics.
    fn name(&self) -> &'static str;
    /// Id of the first (highest-priority) filter accepting `packet`.
    fn matches(&mut self, packet: &[u8]) -> Option<u16>;
    /// Per-packet verdicts for a batch of frames, element `i` equal to
    /// what `matches(packets[i])` would return.
    ///
    /// The default loops `matches`; set engines override it with batch
    /// walks that amortize dispatch and shard-lookup work across the
    /// frames. Overrides must stay verdict-identical to the loop — the
    /// differential suite holds every engine to that.
    fn eval_batch(&mut self, packets: &[&[u8]]) -> Vec<Option<u16>> {
        packets.iter().map(|p| self.matches(p)).collect()
    }
}

/// Every surface that can bind `program` under `config`, in ladder order.
///
/// Always includes the checked interpreter (the reference semantics) and
/// the set engines that serve even validation-rejected programs through
/// their checked fallback. The compiled surfaces (validated, compiled,
/// ir, jit) appear only when the program validates; the decision-table
/// set only under the default configuration (it has no config knob).
///
/// The length is therefore: 5 surfaces for an invalid program under the
/// default config (4 otherwise), and 8 — 9 with the `jit` feature — for
/// a valid one under the default config (7/8 otherwise).
pub fn singleton_engines(
    program: &FilterProgram,
    config: InterpConfig,
) -> Vec<Box<dyn FilterEngine>> {
    let mut engines: Vec<Box<dyn FilterEngine>> = vec![Box::new(CheckedEngine {
        program: program.clone(),
        config,
    })];
    let validated = ValidatedProgram::with_config(program.clone(), config).ok();
    if let Some(v) = &validated {
        engines.push(Box::new(ValidatedEngine(v.clone())));
        engines.push(Box::new(CompiledEngine(CompiledFilter::from_validated(
            v.clone(),
        ))));
    }
    if config == InterpConfig::default() {
        let mut set = FilterSet::new();
        set.insert(0, program.clone());
        engines.push(Box::new(DtreeEngine(set)));
    }
    if let Some(v) = &validated {
        engines.push(Box::new(IrEngine(IrFilter::from_validated(v))));
    }
    let mut ir_set = IrFilterSet::with_config(config);
    ir_set.insert(0, program.clone());
    engines.push(Box::new(IrSetEngine(ir_set)));
    let mut sharded = ShardedVnSet::with_config(config);
    sharded.insert(0, program.clone());
    engines.push(Box::new(ShardedEngine(sharded)));
    let mut geom = GeomSet::with_config(config);
    geom.insert(0, program.clone());
    engines.push(Box::new(GeomEngine(geom)));
    #[cfg(feature = "jit")]
    if let Some(v) = &validated {
        engines.push(Box::new(JitEngine(crate::jit::JitFilter::from_validated(
            v,
        ))));
    }
    engines
}

/// Number of surfaces [`singleton_engines`] yields for a valid program.
pub fn singleton_surface_count(config: InterpConfig) -> usize {
    let base = if config == InterpConfig::default() {
        8
    } else {
        7
    };
    base + usize::from(cfg!(feature = "jit"))
}

struct CheckedEngine {
    program: FilterProgram,
    config: InterpConfig,
}

impl FilterEngine for CheckedEngine {
    fn name(&self) -> &'static str {
        "checked"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        CheckedInterpreter::new(self.config)
            .eval(&self.program, PacketView::new(packet))
            .then_some(0)
    }
}

struct ValidatedEngine(ValidatedProgram);

impl FilterEngine for ValidatedEngine {
    fn name(&self) -> &'static str {
        "validated"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0.eval(PacketView::new(packet)).then_some(0)
    }
}

struct CompiledEngine(CompiledFilter);

impl FilterEngine for CompiledEngine {
    fn name(&self) -> &'static str {
        "compiled"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0.eval(PacketView::new(packet)).then_some(0)
    }
}

struct DtreeEngine(FilterSet);

impl FilterEngine for DtreeEngine {
    fn name(&self) -> &'static str {
        "dtree"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0
            .first_match(PacketView::new(packet))
            .map(|id| u16::try_from(id).unwrap_or(u16::MAX))
    }
    fn eval_batch(&mut self, packets: &[&[u8]]) -> Vec<Option<u16>> {
        let views: Vec<PacketView<'_>> = packets.iter().map(|p| PacketView::new(p)).collect();
        self.0
            .matches_batch(&views)
            .into_iter()
            .map(|ids| ids.first().map(|&id| u16::try_from(id).unwrap_or(u16::MAX)))
            .collect()
    }
}

struct IrEngine(IrFilter);

impl FilterEngine for IrEngine {
    fn name(&self) -> &'static str {
        "ir"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0.eval(PacketView::new(packet)).then_some(0)
    }
}

struct IrSetEngine(IrFilterSet);

impl FilterEngine for IrSetEngine {
    fn name(&self) -> &'static str {
        "ir-set"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0
            .first_match(PacketView::new(packet))
            .map(|id| u16::try_from(id).unwrap_or(u16::MAX))
    }
}

struct ShardedEngine(ShardedVnSet);

impl FilterEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        "sharded"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0
            .first_match(PacketView::new(packet))
            .map(|id| u16::try_from(id).unwrap_or(u16::MAX))
    }
    fn eval_batch(&mut self, packets: &[&[u8]]) -> Vec<Option<u16>> {
        let views: Vec<PacketView<'_>> = packets.iter().map(|p| PacketView::new(p)).collect();
        let (all, _) = self.0.matches_batch_with_stats(&views);
        all.into_iter()
            .map(|ids| ids.first().map(|&id| u16::try_from(id).unwrap_or(u16::MAX)))
            .collect()
    }
}

struct GeomEngine(GeomSet);

impl FilterEngine for GeomEngine {
    fn name(&self) -> &'static str {
        "geom"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0
            .first_match(PacketView::new(packet))
            .map(|id| u16::try_from(id).unwrap_or(u16::MAX))
    }
    fn eval_batch(&mut self, packets: &[&[u8]]) -> Vec<Option<u16>> {
        let views: Vec<PacketView<'_>> = packets.iter().map(|p| PacketView::new(p)).collect();
        let (all, _) = self.0.matches_batch_with_stats(&views);
        all.into_iter()
            .map(|ids| ids.first().map(|&id| u16::try_from(id).unwrap_or(u16::MAX)))
            .collect()
    }
}

#[cfg(feature = "jit")]
struct JitEngine(crate::jit::JitFilter);

#[cfg(feature = "jit")]
impl FilterEngine for JitEngine {
    fn name(&self) -> &'static str {
        "jit"
    }
    fn matches(&mut self, packet: &[u8]) -> Option<u16> {
        self.0.eval(PacketView::new(packet)).then_some(0)
    }
    fn eval_batch(&mut self, packets: &[&[u8]]) -> Vec<Option<u16>> {
        // One virtual dispatch for the whole batch; the template code is
        // then invoked back-to-back, keeping its instruction stream hot.
        let filter = &self.0;
        packets
            .iter()
            .map(|p| filter.eval(PacketView::new(p)).then_some(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::samples;

    #[test]
    fn ladder_order_and_count_for_a_valid_program() {
        let prog = samples::fig_3_9_pup_socket_35();
        let engines = singleton_engines(&prog, InterpConfig::default());
        assert_eq!(
            engines.len(),
            singleton_surface_count(InterpConfig::default())
        );
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(&names[..3], &["checked", "validated", "compiled"]);
        assert!(names.contains(&"dtree"));
        assert!(names.contains(&"sharded"));
        assert_eq!(names.contains(&"jit"), cfg!(feature = "jit"));
    }

    #[test]
    fn all_surfaces_agree_on_a_sample() {
        let prog = samples::fig_3_9_pup_socket_35();
        let hit = samples::pup_packet_3mb(2, 0, 35, 1);
        let miss = samples::pup_packet_3mb(2, 0, 36, 1);
        for engine in &mut singleton_engines(&prog, InterpConfig::default()) {
            assert_eq!(engine.matches(&hit), Some(0), "{}", engine.name());
            assert_eq!(engine.matches(&miss), None, "{}", engine.name());
        }
    }

    #[test]
    fn eval_batch_agrees_with_matches_on_every_surface() {
        let prog = samples::fig_3_9_pup_socket_35();
        let hit = samples::pup_packet_3mb(2, 0, 35, 1);
        let miss = samples::pup_packet_3mb(2, 0, 36, 1);
        let truncated = &hit[..5];
        let frames: Vec<&[u8]> = vec![&hit, &miss, truncated, &[], &hit];
        for engine in &mut singleton_engines(&prog, InterpConfig::default()) {
            let batched = engine.eval_batch(&frames);
            let scalar: Vec<Option<u16>> = frames.iter().map(|p| engine.matches(p)).collect();
            assert_eq!(batched, scalar, "{}", engine.name());
        }
    }

    #[test]
    fn invalid_program_still_gets_fallback_surfaces() {
        // An unbalanced stack program the validator rejects; the checked
        // interpreter and the fallback-capable sets still serve it.
        let prog = pf_filter::program::Assembler::new(0)
            .op(pf_filter::word::BinaryOp::Eq)
            .finish();
        assert!(ValidatedProgram::new(prog.clone()).is_err());
        let engines = singleton_engines(&prog, InterpConfig::default());
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["checked", "dtree", "ir-set", "sharded", "geom"]);
    }
}
