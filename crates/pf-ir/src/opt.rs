//! Optimization passes over the CFG IR.
//!
//! The pipeline run by [`optimize`]:
//!
//! 1. **Constant folding, propagation, and redundant-load elimination** —
//!    one forward pass carrying register facts along single-predecessor
//!    chains (the only CFG shape translation produces): constants fold
//!    through operators, repeated loads of the same packet word reuse the
//!    first load's register (the packet is immutable during evaluation),
//!    repeated constants and identical pure operations are value-numbered,
//!    and branches whose condition became constant turn into jumps.
//! 2. **Branch threading and dead-block removal** — jumps through empty
//!    blocks are retargeted, branches with equal arms collapse, and blocks
//!    unreachable from the entry are deleted.
//! 3. **Dead-code elimination** — operations whose result is never used are
//!    removed, *except* those that can fault (indirect loads, division):
//!    a fault rejects the packet, so removing one would change verdicts.
//! 4. **Register renumbering** — compacts the register file so the
//!    execution engine sizes its register array to live registers only.
//!
//! Passes rely on the translator's single-assignment discipline: every
//! register has exactly one definition, so aliasing a register to an
//! equivalent earlier one is sound wherever the earlier definition
//! dominates (guaranteed, because facts only flow along single-pred
//! chains).

use crate::ir::{Block, BlockId, IrBinOp, IrProgram, Op, Reg, Terminator};
use std::collections::HashMap;

/// Runs the full pass pipeline in place.
pub fn optimize(program: &mut IrProgram) {
    fold_and_reuse(program);
    invert_zero_eq_branches(program);
    thread_branches(program);
    remove_dead_blocks(program);
    eliminate_dead_code(program);
    renumber_registers(program);
}

/// Forward dataflow facts at one program point.
#[derive(Debug, Default, Clone)]
struct Facts {
    /// Registers with statically known values.
    konst: HashMap<Reg, u16>,
    /// Packet word index → register already holding that word.
    loads: HashMap<u16, Reg>,
    /// Constant value → register already holding it.
    consts_by_value: HashMap<u16, Reg>,
    /// Pure operation `(op, a, b)` → register already holding its result.
    bins: HashMap<(IrBinOp, Reg, Reg), Reg>,
}

/// Constant folding, constant/copy propagation, redundant-load
/// elimination, value numbering, and constant-branch folding.
fn fold_and_reuse(program: &mut IrProgram) {
    // Predecessor map, to know when a block inherits its predecessor's
    // facts (exactly one predecessor, already processed).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); program.blocks.len()];
    for (i, b) in program.blocks.iter().enumerate() {
        for s in b.term.successors() {
            preds[s.0 as usize].push(i);
        }
    }

    // `alias` is global: single-assignment makes replacements sound at
    // every point the replacement's definition dominates, and facts only
    // flow where that holds.
    let mut alias: HashMap<Reg, Reg> = HashMap::new();
    let resolve = |alias: &HashMap<Reg, Reg>, mut r: Reg| -> Reg {
        while let Some(&n) = alias.get(&r) {
            r = n;
        }
        r
    };

    let mut exit_facts: Vec<Option<Facts>> = vec![None; program.blocks.len()];
    for i in 0..program.blocks.len() {
        let mut facts = match preds[i].as_slice() {
            [p] if *p < i => exit_facts[*p].clone().unwrap_or_default(),
            _ => Facts::default(),
        };

        let ops = std::mem::take(&mut program.blocks[i].ops);
        let mut kept: Vec<Op> = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                Op::Const { dst, value } => {
                    if let Some(&prev) = facts.consts_by_value.get(&value) {
                        alias.insert(dst, prev);
                    } else {
                        facts.konst.insert(dst, value);
                        facts.consts_by_value.insert(value, dst);
                        kept.push(op);
                    }
                }
                Op::LoadWord { dst, index } => {
                    if let Some(&prev) = facts.loads.get(&index) {
                        alias.insert(dst, prev);
                    } else {
                        facts.loads.insert(index, dst);
                        kept.push(op);
                    }
                }
                Op::LoadInd { dst, index } => {
                    let index = resolve(&alias, index);
                    kept.push(Op::LoadInd { dst, index });
                }
                Op::Bin { dst, op, a, b } => {
                    let a = resolve(&alias, a);
                    let b = resolve(&alias, b);
                    let ka = facts.konst.get(&a).copied();
                    let kb = facts.konst.get(&b).copied();
                    let folded = match (ka, kb) {
                        (Some(x), Some(y)) => op.apply(x, y),
                        _ => same_operand_identity(op, a, b),
                    };
                    if let Some(value) = folded {
                        if let Some(&prev) = facts.consts_by_value.get(&value) {
                            alias.insert(dst, prev);
                        } else {
                            facts.konst.insert(dst, value);
                            facts.consts_by_value.insert(value, dst);
                            kept.push(Op::Const { dst, value });
                        }
                    } else if ka.is_some() && kb.is_some() {
                        // Constant zero divisor: a guaranteed fault. Keep
                        // the operation; it rejects at runtime.
                        kept.push(Op::Bin { dst, op, a, b });
                    } else if let Some(&prev) = facts.bins.get(&(op, a, b)) {
                        alias.insert(dst, prev);
                    } else {
                        facts.bins.insert((op, a, b), dst);
                        kept.push(Op::Bin { dst, op, a, b });
                    }
                }
            }
        }
        program.blocks[i].ops = kept;

        // Terminator: propagate aliases; fold constant branches.
        program.blocks[i].term = match program.blocks[i].term {
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let cond = resolve(&alias, cond);
                match facts.konst.get(&cond) {
                    Some(0) => Terminator::Jump(if_false),
                    Some(_) => Terminator::Jump(if_true),
                    None => Terminator::Branch {
                        cond,
                        if_true,
                        if_false,
                    },
                }
            }
            Terminator::ReturnReg(r) => {
                let r = resolve(&alias, r);
                match facts.konst.get(&r) {
                    Some(&v) => Terminator::Return(v != 0),
                    None => Terminator::ReturnReg(r),
                }
            }
            t => t,
        };

        exit_facts[i] = Some(facts);
    }
}

/// Folds operations whose operands are the *same register* (equal values
/// by definition), regardless of whether the value is known.
fn same_operand_identity(op: IrBinOp, a: Reg, b: Reg) -> Option<u16> {
    if a != b {
        return None;
    }
    Some(match op {
        IrBinOp::Eq | IrBinOp::Le | IrBinOp::Ge => 1,
        IrBinOp::Neq | IrBinOp::Lt | IrBinOp::Gt => 0,
        IrBinOp::Xor | IrBinOp::Sub => 0,
        _ => return None,
    })
}

/// Rewrites `branch (x == 0) ? A : B` into `branch x ? B : A`.
///
/// Every short-circuit operator translates to an `Eq` feeding a branch,
/// so a comparison result conjoined via `CNOR 0` — the idiom a *range*
/// test (`GE lo`, `LE hi`) must use, since the short-circuit operators
/// themselves only test equality — reaches its branch through a
/// redundant compare-with-zero. Dropping it exposes the ordering compare
/// directly to the guard-fusion pass in [`crate::exec`], which is what
/// turns a port-range filter into fused interval guards. Sound
/// unconditionally (`x == 0` nonzero exactly when `x` is zero), but
/// applied only when `x` is itself an *ordering* compare: inverting a
/// plain `packet[w] == 0` test would strip a perfectly fusable equality
/// guard (the `PUSHZERO | CAND` idiom of figure 3-9). The orphaned `Eq`
/// and `Const 0` fall to dead-code elimination.
fn invert_zero_eq_branches(program: &mut IrProgram) {
    // Single assignment: one global definition map suffices, and any
    // operand of an op dominating a branch dominates the branch too.
    let mut konst: HashMap<Reg, u16> = HashMap::new();
    let mut eq_def: HashMap<Reg, (Reg, Reg)> = HashMap::new();
    let mut ordering_result: Vec<Reg> = Vec::new();
    for b in &program.blocks {
        for op in &b.ops {
            match *op {
                Op::Const { dst, value } => {
                    konst.insert(dst, value);
                }
                Op::Bin { dst, op, a, b } => {
                    if op == IrBinOp::Eq {
                        eq_def.insert(dst, (a, b));
                    }
                    if matches!(op, IrBinOp::Lt | IrBinOp::Le | IrBinOp::Gt | IrBinOp::Ge) {
                        ordering_result.push(dst);
                    }
                }
                _ => {}
            }
        }
    }
    for block in &mut program.blocks {
        if let Terminator::Branch {
            cond,
            if_true,
            if_false,
        } = block.term
        {
            let Some(&(a, b)) = eq_def.get(&cond) else {
                continue;
            };
            let other = if konst.get(&b) == Some(&0) {
                a
            } else if konst.get(&a) == Some(&0) {
                b
            } else {
                continue;
            };
            if !ordering_result.contains(&other) {
                continue;
            }
            block.term = Terminator::Branch {
                cond: other,
                if_true: if_false,
                if_false: if_true,
            };
        }
    }
}

/// Retargets control transfers through empty forwarding blocks and
/// collapses branches whose arms agree.
fn thread_branches(program: &mut IrProgram) {
    let finals: Vec<Terminator> = (0..program.blocks.len())
        .map(|i| final_terminator(&program.blocks, BlockId(i as u32)))
        .collect();
    let target_of = |id: BlockId| -> BlockId {
        match finals[id.0 as usize] {
            Terminator::Jump(t) => t,
            _ => id,
        }
    };
    for i in 0..program.blocks.len() {
        program.blocks[i].term = match program.blocks[i].term {
            Terminator::Jump(t) => {
                // Jumping to an empty returning block *is* that return.
                match finals[t.0 as usize] {
                    ret @ (Terminator::Return(_) | Terminator::ReturnReg(_))
                        if program.blocks[t.0 as usize].ops.is_empty() =>
                    {
                        ret
                    }
                    _ => Terminator::Jump(target_of(t)),
                }
            }
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let if_true = target_of(if_true);
                let if_false = target_of(if_false);
                if if_true == if_false {
                    Terminator::Jump(if_true)
                } else {
                    Terminator::Branch {
                        cond,
                        if_true,
                        if_false,
                    }
                }
            }
            t => t,
        };
    }
}

/// The terminator reached from `id` after skipping empty jump-only blocks.
fn final_terminator(blocks: &[Block], mut id: BlockId) -> Terminator {
    // The CFG is acyclic by construction, but bound the walk anyway.
    for _ in 0..blocks.len() {
        let b = &blocks[id.0 as usize];
        if !b.ops.is_empty() {
            return b.term;
        }
        match b.term {
            Terminator::Jump(t) => id = t,
            t => return t,
        }
    }
    blocks[id.0 as usize].term
}

/// Deletes blocks unreachable from the entry and compacts ids.
fn remove_dead_blocks(program: &mut IrProgram) {
    let n = program.blocks.len();
    let mut reachable = vec![false; n];
    let mut work = vec![BlockId(0)];
    while let Some(id) = work.pop() {
        let i = id.0 as usize;
        if std::mem::replace(&mut reachable[i], true) {
            continue;
        }
        work.extend(program.blocks[i].term.successors());
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    let mut remap: Vec<Option<BlockId>> = vec![None; n];
    let mut kept: Vec<Block> = Vec::new();
    for (i, block) in std::mem::take(&mut program.blocks).into_iter().enumerate() {
        if reachable[i] {
            remap[i] = Some(BlockId(kept.len() as u32));
            kept.push(block);
        }
    }
    let map = |id: BlockId| remap[id.0 as usize].expect("successor reachable");
    for b in &mut kept {
        b.term = match b.term {
            Terminator::Jump(t) => Terminator::Jump(map(t)),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => Terminator::Branch {
                cond,
                if_true: map(if_true),
                if_false: map(if_false),
            },
            t => t,
        };
    }
    program.blocks = kept;
}

/// Removes operations whose results are unused. Faulting operations
/// (indirect loads, division) are roots: their *execution* is observable.
fn eliminate_dead_code(program: &mut IrProgram) {
    let mut live = vec![false; program.reg_count as usize];
    let mark = |r: Reg, live: &mut Vec<bool>| {
        live[usize::from(r.0)] = true;
    };
    for b in &program.blocks {
        match b.term {
            Terminator::Branch { cond, .. } => mark(cond, &mut live),
            Terminator::ReturnReg(r) => mark(r, &mut live),
            _ => {}
        }
    }
    // Single assignment + acyclic CFG: one reverse sweep per fixpoint
    // round marks operands of live or faulting operations.
    loop {
        let mut changed = false;
        for b in &program.blocks {
            for op in b.ops.iter().rev() {
                let is_live = live[usize::from(op.dst().0)] || op.can_fault();
                if !is_live {
                    continue;
                }
                let uses: [Option<Reg>; 2] = match *op {
                    Op::Const { .. } | Op::LoadWord { .. } => [None, None],
                    Op::LoadInd { index, .. } => [Some(index), None],
                    Op::Bin { a, b, .. } => [Some(a), Some(b)],
                };
                for r in uses.into_iter().flatten() {
                    let slot = &mut live[usize::from(r.0)];
                    if !*slot {
                        *slot = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for b in &mut program.blocks {
        b.ops
            .retain(|op| live[usize::from(op.dst().0)] || op.can_fault());
    }
}

/// Renumbers registers densely so the engine's register file is minimal.
fn renumber_registers(program: &mut IrProgram) {
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    let mut next: u16 = 0;
    let renumber = |r: Reg, map: &mut HashMap<Reg, Reg>, next: &mut u16| -> Reg {
        *map.entry(r).or_insert_with(|| {
            let n = Reg(*next);
            *next += 1;
            n
        })
    };
    for b in &mut program.blocks {
        for op in &mut b.ops {
            *op = match *op {
                Op::Const { dst, value } => Op::Const {
                    dst: renumber(dst, &mut map, &mut next),
                    value,
                },
                Op::LoadWord { dst, index } => Op::LoadWord {
                    dst: renumber(dst, &mut map, &mut next),
                    index,
                },
                Op::LoadInd { dst, index } => {
                    let index = renumber(index, &mut map, &mut next);
                    Op::LoadInd {
                        dst: renumber(dst, &mut map, &mut next),
                        index,
                    }
                }
                Op::Bin { dst, op, a, b } => {
                    let a = renumber(a, &mut map, &mut next);
                    let b = renumber(b, &mut map, &mut next);
                    Op::Bin {
                        dst: renumber(dst, &mut map, &mut next),
                        op,
                        a,
                        b,
                    }
                }
            };
        }
        b.term = match b.term {
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => Terminator::Branch {
                cond: renumber(cond, &mut map, &mut next),
                if_true,
                if_false,
            },
            Terminator::ReturnReg(r) => Terminator::ReturnReg(renumber(r, &mut map, &mut next)),
            t => t,
        };
    }
    program.reg_count = u32::from(next);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use pf_filter::program::Assembler;
    use pf_filter::samples;
    use pf_filter::validate::ValidatedProgram;
    use pf_filter::word::BinaryOp;

    fn optimized(program: pf_filter::program::FilterProgram) -> IrProgram {
        let v = ValidatedProgram::new(program).unwrap();
        let mut ir = translate(&v);
        optimize(&mut ir);
        ir
    }

    #[test]
    fn constant_predicate_folds_to_return() {
        // PUSHLIT 5, PUSHLIT 5, EQ — a constant TRUE.
        let p = Assembler::new(0)
            .pushlit(5)
            .pushlit_op(BinaryOp::Eq, 5)
            .finish();
        let ir = optimized(p);
        assert_eq!(ir.op_count(), 0, "fully folded: {ir}");
        assert_eq!(ir.blocks[0].term, Terminator::Return(true));
    }

    #[test]
    fn redundant_loads_are_eliminated() {
        // Same packet word pushed twice and compared: always TRUE, and the
        // second load must first have been reused for the fold to see it.
        let p = Assembler::new(0)
            .pushword(3)
            .pushword(3)
            .op(BinaryOp::Eq)
            .finish();
        let ir = optimized(p);
        assert_eq!(ir.blocks[0].term, Terminator::Return(true), "{ir}");
        assert_eq!(ir.op_count(), 0);
    }

    #[test]
    fn cand_chain_constants_are_swept() {
        // Figure 3-9 under paper style: the TRUEs pushed by continuing
        // CANDs never reach the verdict; they must be dead-coded away,
        // leaving just loads, constants, and compares on the live path.
        let ir = optimized(samples::fig_3_9_pup_socket_35());
        for b in &ir.blocks {
            for op in &b.ops {
                // No continuation Const{1} survives: each block is exactly
                // one guard computation.
                assert!(
                    !matches!(op, Op::Const { value: 1, .. }),
                    "dead continuation constant survived: {ir}"
                );
            }
        }
    }

    #[test]
    fn dead_blocks_after_constant_branch_are_removed() {
        // PUSHLIT 1, PUSHLIT 1, CAND → never terminates (1 == 1 but CAND
        // terminates on FALSE); continuation is a constant TRUE verdict.
        let p = Assembler::new(0)
            .pushlit(1)
            .pushlit_op(BinaryOp::Cand, 1)
            .finish();
        let ir = optimized(p);
        assert_eq!(ir.blocks.len(), 1, "reject block unreachable: {ir}");
        assert_eq!(ir.blocks[0].term, Terminator::Return(true));
    }

    #[test]
    fn cnor_zero_wrapper_compare_is_inverted_away() {
        // Each `GE/LE … CNOR 0` must branch on the ordering compare
        // itself; the Eq-with-zero wrapper and its constant die as dead
        // code, leaving exactly three compares (ge, le, terminal eq).
        let ir = optimized(samples::socket_range_filter(10, 100, 200));
        let mut ops: Vec<IrBinOp> = Vec::new();
        for b in &ir.blocks {
            for op in &b.ops {
                if let Op::Bin { op, .. } = op {
                    ops.push(*op);
                }
            }
        }
        ops.sort_by_key(|o| format!("{o:?}"));
        assert_eq!(ops, vec![IrBinOp::Eq, IrBinOp::Ge, IrBinOp::Le], "{ir}");
    }

    #[test]
    fn faulting_division_is_not_dead_code() {
        // Constant 4 / 0 faults → the whole filter must reject even though
        // the quotient is unused (an accept-all sits on the stack below).
        let cfg = pf_filter::interp::InterpConfig {
            dialect: pf_filter::interp::Dialect::Extended,
            ..Default::default()
        };
        let p = Assembler::new(0)
            .pushone()
            .pushlit(4)
            .pushzero_op(BinaryOp::Div)
            .finish();
        let v = ValidatedProgram::with_config(p, cfg).unwrap();
        let mut ir = translate(&v);
        optimize(&mut ir);
        assert!(
            ir.blocks.iter().any(|b| b.ops.iter().any(|o| matches!(
                o,
                Op::Bin {
                    op: IrBinOp::Div,
                    ..
                }
            ))),
            "guaranteed-faulting div removed: {ir}"
        );
    }

    #[test]
    fn registers_are_renumbered_densely() {
        let ir = optimized(samples::fig_3_9_pup_socket_35());
        let mut seen = std::collections::HashSet::new();
        for b in &ir.blocks {
            for op in &b.ops {
                seen.insert(op.dst().0);
            }
        }
        assert!(seen.iter().all(|&r| u32::from(r) < ir.reg_count));
        // Three compare blocks, each a load + a distinct literal + an eq.
        assert!(
            ir.reg_count <= 9,
            "compact register file, got {}",
            ir.reg_count
        );
    }
}
