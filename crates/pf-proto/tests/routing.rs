//! Deterministic multi-hop routing through a deployed topology: a frame
//! crosses host → router → router → host over three segments, TTL expiry
//! kills over-aged packets at the second hop, and per-link fault models
//! apply independently per segment.

use pf_kernel::{SimClock, World};
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_net::{NodeId, Topology};
use pf_proto::ip::{encode_ip, IpHeader, IP_ETHERTYPE};
use pf_proto::router::deploy;
use pf_sim::cost::CostModel;
use pf_sim::time::SimTime;

/// h1 — r1 — r2 — h2 over three 10 Mb segments, with `mid_faults` on the
/// router–router link.
fn line_topology(mid_faults: FaultModel) -> (Topology, [NodeId; 4]) {
    let mut b = Topology::builder();
    let h1 = b.host("h1");
    let r1 = b.router("r1");
    let r2 = b.router("r2");
    let h2 = b.host("h2");
    let m = Medium::standard_10mb();
    b.link(h1, r1, m, FaultModel::default());
    b.link(r1, r2, m, mid_faults);
    b.link(r2, h2, m, FaultModel::default());
    (b.build(), [h1, r1, r2, h2])
}

/// An IP frame from `src` node to `dst` node, handed to `src`'s first hop.
fn ip_frame_between(topo: &Topology, src: NodeId, dst: NodeId, ttl: u8, payload: &[u8]) -> Vec<u8> {
    let (iface, next_eth) = topo.first_hop(src, topo.ip(dst)).expect("reachable");
    let src_if = topo.interfaces(src)[iface];
    let m = topo.medium(src_if.link);
    let packet = encode_ip(
        &IpHeader {
            proto: 17,
            ttl,
            src: topo.ip(src),
            dst: topo.ip(dst),
            total_len: 0,
        },
        payload,
    );
    frame::build(m, next_eth, src_if.eth, IP_ETHERTYPE, &packet).unwrap()
}

#[test]
fn frame_traverses_host_router_router_host() {
    let (topo, [h1, r1, r2, h2]) = line_topology(FaultModel::default());
    let mut w = World::new(7);
    let d = deploy(&topo, &mut w, &CostModel::microvax_ii());

    for k in 0..4u64 {
        let f = ip_frame_between(&topo, h1, h2, 64, b"across the internet");
        w.send_frame_at(d.host(h1), f, SimTime(1_000 + k * 5_000_000));
    }
    let end = SimClock::run(&mut w);
    assert!(end > SimTime::ZERO);

    // Every frame made all three hops.
    assert_eq!(w.router_counters(d.router(r1)).frames_in, 4);
    assert_eq!(w.router_stats(d.router(r1)).forwarded, 4);
    assert_eq!(w.router_counters(d.router(r2)).frames_out, 4);
    assert_eq!(w.counters(d.host(h2)).packets_received, 4);
    // Nothing leaked back to the sender's LAN or died en route.
    assert_eq!(w.counters(d.host(h1)).packets_received, 0);
    assert_eq!(w.router_stats(d.router(r1)).ttl_expired, 0);
    assert_eq!(w.router_stats(d.router(r2)).no_route, 0);
    // Each hop charged forwarding work on the router CPUs.
    assert!(w.router_cpu(d.router(r1)).busy_time() > pf_sim::SimDuration::ZERO);
}

#[test]
fn routed_delivery_is_deterministic() {
    let run = || {
        let (topo, [h1, _, _, h2]) = line_topology(FaultModel::default());
        let mut w = World::new(99);
        let d = deploy(&topo, &mut w, &CostModel::microvax_ii());
        for k in 0..8u64 {
            let f = ip_frame_between(&topo, h1, h2, 32, &k.to_be_bytes());
            w.send_frame_at(d.host(h1), f, SimTime(k * 777_777));
        }
        let end = SimClock::run(&mut w);
        (end, w.counters(d.host(h2)).packets_received)
    };
    assert_eq!(run(), run(), "identical seeds give identical runs");
}

#[test]
fn ttl_expires_at_the_second_router() {
    let (topo, [h1, r1, r2, h2]) = line_topology(FaultModel::default());
    let mut w = World::new(7);
    let d = deploy(&topo, &mut w, &CostModel::microvax_ii());

    // TTL 2: r1 forwards at TTL 1; r2 must refuse to forward it further.
    let f = ip_frame_between(&topo, h1, h2, 2, b"too old");
    w.send_frame_at(d.host(h1), f, SimTime(1_000));
    SimClock::run(&mut w);

    assert_eq!(w.router_stats(d.router(r1)).forwarded, 1);
    assert_eq!(w.router_stats(d.router(r2)).ttl_expired, 1);
    assert_eq!(w.router_stats(d.router(r2)).forwarded, 0);
    assert_eq!(w.counters(d.host(h2)).packets_received, 0, "never arrives");
}

#[test]
fn per_link_faults_apply_to_one_segment_only() {
    let lossy = FaultModel {
        loss: 1.0,
        ..FaultModel::default()
    };
    let (topo, [h1, r1, r2, h2]) = line_topology(lossy);
    let mut w = World::new(7);
    let d = deploy(&topo, &mut w, &CostModel::microvax_ii());

    for k in 0..3u64 {
        let f = ip_frame_between(&topo, h1, h2, 64, b"doomed");
        w.send_frame_at(d.host(h1), f, SimTime(1_000 + k * 5_000_000));
    }
    SimClock::run(&mut w);

    // The first segment is clean: r1 hears and forwards every frame.
    assert_eq!(w.router_counters(d.router(r1)).frames_in, 3);
    assert_eq!(w.router_stats(d.router(r1)).forwarded, 3);
    // The middle link eats every copy: r2 never hears a thing.
    assert_eq!(w.router_counters(d.router(r2)).frames_in, 0);
    assert_eq!(w.counters(d.host(h2)).packets_received, 0);
}
