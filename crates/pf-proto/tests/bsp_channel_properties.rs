// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property test: the BSP machines deliver the exact byte stream over an
//! adversarial channel — arbitrary loss, duplication, and bounded
//! reordering chosen by proptest — or make no progress claim at all.
//! This drives the *pure* machines directly (no simulator), so thousands
//! of channel schedules run in milliseconds.

use pf_proto::bsp::{BspConfig, Effect, ReceiverMachine, SenderMachine, RTO_TOKEN};
use pf_proto::pup::{Pup, PupAddr};
use proptest::prelude::*;
use std::collections::VecDeque;

/// One adversarial channel decision per carried packet.
#[derive(Debug, Clone, Copy)]
enum Fate {
    Deliver,
    Drop,
    Duplicate,
    /// Swap with the next packet in flight (local reordering).
    Delay,
}

fn fate() -> impl Strategy<Value = Fate> {
    prop_oneof![
        6 => Just(Fate::Deliver),
        1 => Just(Fate::Drop),
        1 => Just(Fate::Duplicate),
        1 => Just(Fate::Delay),
    ]
}

/// Drives sender and receiver to completion through the scripted channel;
/// returns the delivered bytes. Fates are consumed round-robin; once the
/// script is exhausted the channel turns reliable (so every run
/// terminates).
fn run_channel(payload: &[u8], cfg: BspConfig, fates: Vec<Fate>) -> Vec<u8> {
    let sa = PupAddr::new(1, 0x0A, 0x100);
    let ra = PupAddr::new(1, 0x0B, 0x200);
    let mut s = SenderMachine::new(sa, ra, cfg);
    let mut r = ReceiverMachine::new(ra);
    let mut delivered = Vec::new();
    let mut to_recv: VecDeque<Pup> = VecDeque::new();
    let mut to_send: VecDeque<Pup> = VecDeque::new();
    let mut fate_idx = 0usize;

    let apply_fate = |pup: Pup, queue: &mut VecDeque<Pup>, fate_idx: &mut usize| {
        let f = if *fate_idx < fates.len() {
            let f = fates[*fate_idx];
            *fate_idx += 1;
            f
        } else {
            Fate::Deliver
        };
        match f {
            Fate::Deliver => queue.push_back(pup),
            Fate::Drop => {}
            Fate::Duplicate => {
                queue.push_back(pup.clone());
                queue.push_back(pup);
            }
            Fate::Delay => {
                // Insert *before* the prior packet if any: local reorder.
                let last = queue.pop_back();
                queue.push_back(pup);
                if let Some(last) = last {
                    queue.push_back(last);
                }
            }
        }
    };

    let mut handle_sender_fx = Vec::new();
    handle_sender_fx.extend(s.connect());
    handle_sender_fx.extend(s.offer(payload));
    handle_sender_fx.extend(s.finish());
    for e in handle_sender_fx {
        if let Effect::Send(p) = e {
            apply_fate(p, &mut to_recv, &mut fate_idx);
        }
    }

    let mut steps = 0u32;
    while !s.is_closed() {
        steps += 1;
        assert!(steps < 200_000, "livelock");
        // Receiver consumes one packet.
        if let Some(p) = to_recv.pop_front() {
            for e in r.on_pup(&p) {
                match e {
                    Effect::Send(p) => apply_fate(p, &mut to_send, &mut fate_idx),
                    Effect::Deliver(d) => delivered.extend(d),
                    _ => {}
                }
            }
        }
        // Sender consumes one packet.
        if let Some(p) = to_send.pop_front() {
            for e in s.on_pup(&p) {
                if let Effect::Send(p) = e {
                    apply_fate(p, &mut to_recv, &mut fate_idx);
                }
            }
        }
        // When everything in flight has drained and the sender is still
        // open, fire its retransmission timer (virtual timeout).
        if to_recv.is_empty() && to_send.is_empty() && !s.is_closed() {
            for e in s.on_timer(RTO_TOKEN) {
                if let Effect::Send(p) = e {
                    apply_fate(p, &mut to_recv, &mut fate_idx);
                }
            }
        }
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_stream_over_adversarial_channel(
        payload in prop::collection::vec(any::<u8>(), 0..4000),
        fates in prop::collection::vec(fate(), 0..200),
        window in 1usize..6,
        segment in prop_oneof![Just(64usize), Just(200), Just(546)],
    ) {
        let cfg = BspConfig { window, segment, ..Default::default() };
        let got = run_channel(&payload, cfg, fates);
        prop_assert_eq!(got, payload);
    }

    #[test]
    fn push_mode_also_survives(
        payload in prop::collection::vec(any::<u8>(), 1..1000),
        fates in prop::collection::vec(fate(), 0..100),
    ) {
        let cfg = BspConfig { push: true, segment: 100, ..Default::default() };
        let got = run_channel(&payload, cfg, fates);
        prop_assert_eq!(got, payload);
    }
}
