// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for every wire format in the protocol suite:
//! encode/decode round-trips on arbitrary field values, decoder totality
//! on arbitrary bytes, and checksum error detection.

use pf_net::medium::Medium;
use pf_proto::arp::ArpPacket;
use pf_proto::group::GroupMessage;
use pf_proto::ip::{decode_ip, decode_udp, encode_ip, encode_udp, IpHeader};
use pf_proto::pup::{Pup, PupAddr, PupError, MAX_PUP_DATA};
use pf_proto::tcp::Segment;
use pf_proto::vmtp::{VmtpPacket, VmtpType};
use proptest::prelude::*;

fn medium3() -> Medium {
    Medium::experimental_3mb()
}

fn medium10() -> Medium {
    Medium::standard_10mb()
}

prop_compose! {
    fn any_pup()(
        ptype in any::<u8>(),
        id in any::<u32>(),
        dnet in any::<u8>(), dhost in any::<u8>(), dsock in any::<u32>(),
        snet in any::<u8>(), shost in any::<u8>(), ssock in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..MAX_PUP_DATA),
    ) -> Pup {
        Pup::new(
            ptype,
            id,
            PupAddr::new(dnet, dhost, dsock),
            PupAddr::new(snet, shost, ssock),
            data,
        )
    }
}

proptest! {
    #[test]
    fn pup_round_trips(p in any_pup(), checksummed in any::<bool>()) {
        let f = p.encode_frame(&medium3(), checksummed);
        let q = Pup::decode_frame(&medium3(), &f).expect("own encoding decodes");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn pup_checksum_catches_any_single_bit_flip_in_data(
        p in any_pup(),
        bit in 0usize..8,
        pos_seed in any::<usize>(),
    ) {
        prop_assume!(!p.data.is_empty());
        let mut f = p.encode_frame(&medium3(), true);
        // Flip one bit inside the data region (after the 4-byte Ethernet
        // header + 20-byte Pup header, before the 2-byte checksum).
        let lo = 24;
        let hi = f.len() - 2;
        let pos = lo + pos_seed % (hi - lo);
        f[pos] ^= 1 << bit;
        let corrupted = matches!(
            Pup::decode_frame(&medium3(), &f),
            Err(PupError::BadChecksum { got: _, want: _ })
        );
        prop_assert!(corrupted, "flip at byte {} bit {} went undetected", pos, bit);
    }

    #[test]
    fn pup_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..700)) {
        let _ = Pup::decode_frame(&medium3(), &bytes);
        let _ = Pup::decode_body(&bytes);
    }

    #[test]
    fn vmtp_round_trips(
        dst in any::<u32>(), src in any::<u32>(), trans in any::<u32>(),
        kind in 1u8..=4, index in any::<u8>(), count in any::<u8>(),
        opcode in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        let p = VmtpPacket {
            dst_entity: dst,
            src_entity: src,
            trans,
            ptype: match kind {
                1 => VmtpType::Request,
                2 => VmtpType::Response,
                3 => VmtpType::Ack,
                _ => VmtpType::Retry,
            },
            index,
            count,
            opcode,
            data,
        };
        let f = p.encode_frame(&medium10(), 0x0B, 0x0A);
        let (q, eth_src) = VmtpPacket::decode_frame(&medium10(), &f).expect("decodes");
        prop_assert_eq!(p, q);
        prop_assert_eq!(eth_src, 0x0A);
    }

    #[test]
    fn vmtp_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..1514)) {
        let _ = VmtpPacket::decode_frame(&medium10(), &bytes);
        let _ = VmtpPacket::decode_body(&bytes);
    }

    #[test]
    fn tcp_segment_round_trips(
        src_port in any::<u16>(), dst_port in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in any::<u8>(), window in any::<u16>(),
        data in prop::collection::vec(any::<u8>(), 0..1200),
    ) {
        let s = Segment { src_port, dst_port, seq, ack, flags, window, data };
        prop_assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn tcp_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..1500)) {
        let _ = Segment::decode(&bytes);
    }

    #[test]
    fn ip_udp_round_trips(
        proto in any::<u8>(), ttl in any::<u8>(),
        src in any::<u32>(), dst in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(),
        data in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        let udp = encode_udp(sp, dp, &data);
        let ip = encode_ip(&IpHeader { proto, ttl, src, dst, total_len: 0 }, &udp);
        let (h, body) = decode_ip(&ip).expect("own encoding decodes");
        prop_assert_eq!(h.proto, proto);
        prop_assert_eq!(h.src, src);
        prop_assert_eq!(h.dst, dst);
        let (s, d, got) = decode_udp(body).expect("udp decodes");
        prop_assert_eq!((s, d), (sp, dp));
        prop_assert_eq!(got, &data[..]);
    }

    #[test]
    fn ip_udp_decoders_are_total(bytes in prop::collection::vec(any::<u8>(), 0..1500)) {
        if let Some((_, body)) = decode_ip(&bytes) {
            let _ = decode_udp(body);
        }
        let _ = decode_udp(&bytes);
    }

    #[test]
    fn arp_round_trips(
        oper in any::<u16>(),
        sha in 0u64..(1 << 48), spa in any::<u32>(),
        tha in 0u64..(1 << 48), tpa in any::<u32>(),
    ) {
        let p = ArpPacket { oper, sha, spa, tha, tpa };
        prop_assert_eq!(ArpPacket::decode_body(&p.encode_body()), Some(p));
    }

    #[test]
    fn arp_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = ArpPacket::decode_body(&bytes);
    }

    #[test]
    fn group_message_round_trips(
        group in any::<u32>(), seq in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        let m = GroupMessage { group, seq, data };
        let f = m.encode_frame(&medium10(), 0x0A);
        prop_assert_eq!(GroupMessage::decode_frame(&medium10(), &f), Some(m));
    }

    #[test]
    fn monitor_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..1514)) {
        // The monitor's dispatcher must survive anything on the wire.
        let _ = pf_monitor::decode::decode(&medium3(), &bytes);
        let _ = pf_monitor::decode::decode(&medium10(), &bytes);
    }
}
