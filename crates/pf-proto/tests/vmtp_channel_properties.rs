// Property suites need the external `proptest` crate; the default build is
// hermetic (offline), so this whole file is gated behind a feature. See the
// crate manifest for how to restore the dev-dependency.
#![cfg(feature = "proptest-tests")]

//! Property test: VMTP transactions complete with exact results over an
//! adversarial channel (loss, duplication, reordering chosen by
//! proptest), driving the pure machines directly.

use pf_proto::vmtp::{ClientMachine, ServerMachine, VEffect, VmtpPacket, VMTP_RTO_TOKEN};
use pf_sim::time::SimDuration;
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Fate {
    Deliver,
    Drop,
    Duplicate,
    Delay,
}

fn fate() -> impl Strategy<Value = Fate> {
    prop_oneof![
        6 => Just(Fate::Deliver),
        1 => Just(Fate::Drop),
        1 => Just(Fate::Duplicate),
        1 => Just(Fate::Delay),
    ]
}

fn apply_fate(
    pkt: (VmtpPacket, u64),
    queue: &mut VecDeque<(VmtpPacket, u64)>,
    fates: &[Fate],
    idx: &mut usize,
) {
    let f = if *idx < fates.len() {
        let f = fates[*idx];
        *idx += 1;
        f
    } else {
        Fate::Deliver
    };
    match f {
        Fate::Deliver => queue.push_back(pkt),
        Fate::Drop => {}
        Fate::Duplicate => {
            queue.push_back(pkt.clone());
            queue.push_back(pkt);
        }
        Fate::Delay => {
            let last = queue.pop_back();
            queue.push_back(pkt);
            if let Some(last) = last {
                queue.push_back(last);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential transactions against a file-read server: every one
    /// completes with exactly the requested bytes, in order, no matter
    /// what the channel does (it turns reliable once the fate script is
    /// exhausted, so runs terminate).
    #[test]
    fn transactions_complete_exactly(
        ops in 1u32..5,
        response_len in 0usize..5000,
        fates in prop::collection::vec(fate(), 0..120),
    ) {
        let mut client = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100));
        let mut server = ServerMachine::new(2);
        let mut to_server: VecDeque<(VmtpPacket, u64)> = VecDeque::new();
        let mut to_client: VecDeque<(VmtpPacket, u64)> = VecDeque::new();
        let mut fate_idx = 0usize;
        let mut completed = 0u32;
        let response: Vec<u8> = (0..response_len).map(|i| (i % 239) as u8).collect();

        // Kick off the first transaction.
        for e in client.invoke(0, Vec::new()) {
            if let VEffect::Send(p, eth) = e {
                apply_fate((p, eth), &mut to_server, &fates, &mut fate_idx);
            }
        }

        let mut steps = 0u32;
        while completed < ops {
            steps += 1;
            prop_assert!(steps < 100_000, "livelock");

            if let Some((p, _eth)) = to_server.pop_front() {
                let fx = server.on_packet(&p, 0x0A);
                for e in fx {
                    match e {
                        VEffect::Send(p, eth) => {
                            apply_fate((p, eth), &mut to_client, &fates, &mut fate_idx)
                        }
                        VEffect::DeliverRequest { client, client_eth, trans, .. } => {
                            for e in server.respond(client, client_eth, trans, response.clone())
                            {
                                if let VEffect::Send(p, eth) = e {
                                    apply_fate(
                                        (p, eth),
                                        &mut to_client,
                                        &fates,
                                        &mut fate_idx,
                                    );
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }

            if let Some((p, _eth)) = to_client.pop_front() {
                for e in client.on_packet(&p) {
                    match e {
                        VEffect::Send(p, eth) => {
                            apply_fate((p, eth), &mut to_server, &fates, &mut fate_idx)
                        }
                        VEffect::Complete { data, .. } => {
                            prop_assert_eq!(&data, &response, "exact response bytes");
                            completed += 1;
                            if completed < ops {
                                for e in client.invoke(0, Vec::new()) {
                                    if let VEffect::Send(p, eth) = e {
                                        apply_fate(
                                            (p, eth),
                                            &mut to_server,
                                            &fates,
                                            &mut fate_idx,
                                        );
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }

            // Quiescent but unfinished: fire the client's timer.
            if to_server.is_empty() && to_client.is_empty() && completed < ops {
                for e in client.on_timer(VMTP_RTO_TOKEN) {
                    if let VEffect::Send(p, eth) = e {
                        apply_fate((p, eth), &mut to_server, &fates, &mut fate_idx);
                    }
                }
            }
        }
        prop_assert_eq!(completed, ops);
        prop_assert!(!client.busy());
    }
}
