//! Determinism under fault schedules: a hardened routed fabric driven
//! through a router kill and a link-flap train must replay
//! bit-identically — across reruns at the same seed and across the two
//! event-queue backends. Fault injection, hello probing, failover, LSU
//! flooding, and reconvergence all ride the same event core, so any
//! hidden nondeterminism (hash-map iteration order, wall-clock leakage)
//! shows up here as a history mismatch.

use pf_kernel::{SimClock, World};
use pf_net::fabric::FabricSchedule;
use pf_net::frame;
use pf_net::medium::Medium;
use pf_net::segment::FaultModel;
use pf_net::{LinkId, NodeId, Topology};
use pf_proto::ip::{encode_ip, IpHeader, IP_ETHERTYPE};
use pf_proto::router::{deploy_hardened, HelloConfig};
use pf_sim::cost::CostModel;
use pf_sim::queue::QueueBackend;
use pf_sim::time::{SimDuration, SimTime};

/// A 4-router ring, one host per router (ring links get ids 0..4, LANs
/// 4..8), with a kill-plus-flap chaos schedule attached.
fn chaos_ring() -> (Topology, [NodeId; 4], [NodeId; 4]) {
    let mut b = Topology::builder();
    let r: Vec<NodeId> = (0..4).map(|i| b.router(format!("r{i}"))).collect();
    let h: Vec<NodeId> = (0..4).map(|i| b.host(format!("h{i}"))).collect();
    let m = Medium::standard_10mb();
    for i in 0..4 {
        b.link(r[i], r[(i + 1) % 4], m, FaultModel::default());
    }
    for i in 0..4 {
        b.lan(&[r[i], h[i]], m, FaultModel::default());
    }
    let mut sched = FabricSchedule::new();
    // r2 dies mid-run and comes back; the r0–r1 link flaps twice with
    // down-windows long enough (100ms > the 60ms dead interval) to
    // trigger real detection, failover, and re-adjacency each cycle.
    sched.router_outage(r[2], SimTime(300_000_000), Some(SimTime(700_000_000)));
    sched.link_flaps(
        LinkId(0),
        SimTime(400_000_000),
        SimDuration::from_millis(100),
        SimDuration::from_millis(150),
        2,
    );
    let topo = b.build().with_fabric(sched);
    (topo, [r[0], r[1], r[2], r[3]], [h[0], h[1], h[2], h[3]])
}

/// (forwarded, hellos_sent, control_in, neighbors_lost,
/// neighbors_recovered, failovers, reconvergences, route_churn).
type RouterStats = (u64, u64, u64, u64, u64, u64, u64, u64);

/// Everything observable about one run, for exact comparison.
#[derive(Debug, PartialEq)]
struct History {
    end_ns: u64,
    received: Vec<u64>,
    router_stats: Vec<RouterStats>,
    router_frames: Vec<(u64, u64, u64)>,
}

fn run_chaos(seed: u64, backend: QueueBackend) -> History {
    let (topo, routers, hosts) = chaos_ring();
    let mut w = World::with_queue_backend(seed, backend);
    let d = deploy_hardened(
        &topo,
        &mut w,
        &CostModel::microvax_ii(),
        HelloConfig::default(),
    );

    // Cross-ring traffic before, during, and after the fault windows,
    // from every host to its antipode and its neighbor.
    let mut at = SimTime(1_000);
    for round in 0..40u64 {
        for (i, &src) in hosts.iter().enumerate() {
            for dst in [hosts[(i + 2) % 4], hosts[(i + 1) % 4]] {
                let (iface, next_eth) = topo
                    .first_hop(src, topo.ip(dst))
                    .expect("ring is connected");
                let src_if = topo.interfaces(src)[iface];
                let packet = encode_ip(
                    &IpHeader {
                        proto: 17,
                        ttl: 64,
                        src: topo.ip(src),
                        dst: topo.ip(dst),
                        total_len: 0,
                    },
                    &[round as u8; 32],
                );
                let f = frame::build(
                    topo.medium(src_if.link),
                    next_eth,
                    src_if.eth,
                    IP_ETHERTYPE,
                    &packet,
                )
                .expect("frame fits");
                w.send_frame_at(d.host(src), f, at);
                at = SimTime(at.0 + 25_000_000);
            }
        }
    }

    // Hardened routers tick forever; bound the run by virtual time.
    SimClock::run_until(&mut w, SimTime(9_000_000_000));
    History {
        end_ns: w.now().0,
        received: hosts
            .iter()
            .map(|h| w.counters(d.host(*h)).packets_received)
            .collect(),
        router_stats: routers
            .iter()
            .map(|r| {
                let s = w.router_stats(d.router(*r));
                (
                    s.forwarded,
                    s.hellos_sent,
                    s.control_in,
                    s.neighbors_lost,
                    s.neighbors_recovered,
                    s.failovers,
                    s.reconvergences,
                    s.route_churn,
                )
            })
            .collect(),
        router_frames: routers
            .iter()
            .map(|r| {
                let c = w.router_counters(d.router(*r));
                (c.frames_in, c.frames_out, c.frames_dropped_down)
            })
            .collect(),
    }
}

#[test]
fn chaos_history_is_identical_across_backends_and_reruns() {
    let heap = run_chaos(0x00DE_7EC7, QueueBackend::Heap);
    let heap_again = run_chaos(0x00DE_7EC7, QueueBackend::Heap);
    let calendar = run_chaos(0x00DE_7EC7, QueueBackend::Calendar);
    assert_eq!(heap, heap_again, "reruns at one seed must be bit-identical");
    assert_eq!(heap, calendar, "backends must simulate the same history");

    // And the history is not vacuous: the chaos actually happened.
    let lost: u64 = heap.router_stats.iter().map(|s| s.3).sum();
    let recovered: u64 = heap.router_stats.iter().map(|s| s.4).sum();
    let reconverged: u64 = heap.router_stats.iter().map(|s| s.6).sum();
    assert!(lost >= 2, "kill + flaps must cost adjacencies (got {lost})");
    assert!(recovered >= 2, "revivals must re-form adjacencies");
    assert!(reconverged >= 4, "every event wave triggers reconvergence");
    assert!(heap.received.iter().sum::<u64>() > 0);
}

#[test]
fn different_seeds_still_converge_to_the_same_routed_outcome() {
    // The seed perturbs fault-model draws, not the schedule or the
    // workload: with loss-free links every seed delivers the same
    // packet counts even though event interleaving details may differ.
    let a = run_chaos(1, QueueBackend::Heap);
    let b = run_chaos(2, QueueBackend::Heap);
    assert_eq!(a.received, b.received);
    assert_eq!(a.router_frames, b.router_frames);
}
