//! V-system-style process-group communication (§5.2 + §3.2).
//!
//! The V architects "chose to design their own protocols … so that they
//! could make use of the multicast feature of Ethernet hardware", and the
//! packet filter's deliver-to-lower-priority option exists partly for
//! "'group' communication where a packet may be multicast to several
//! processes on one host" (§3.2). This module puts the two together: a
//! group message rides an Ethernet multicast frame; every member host's
//! interface subscribes to the group address; and every member *process*
//! on a host binds a filter with the deliver-to-lower option so each gets
//! its own copy of the packet.

use pf_filter::builder::Expr;
use pf_filter::program::FilterProgram;
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PortConfig, ReadError, ReadMode, RecvPacket};
use pf_kernel::world::ProcCtx;
use pf_net::frame;
use pf_net::medium::Medium;

/// Ethernet type for the group IPC (an IKP-era code point).
pub const GROUP_ETHERTYPE: u16 = 0x805D;

/// The Ethernet multicast address for a group id (group bit set in the
/// first byte, group id in the low bits).
pub fn group_eth_addr(group: u32) -> u64 {
    0x0100_0000_0000u64 | u64::from(group)
}

/// A group message: group id, sequence, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMessage {
    /// The process-group identifier.
    pub group: u32,
    /// Sender-assigned sequence number.
    pub seq: u32,
    /// Payload.
    pub data: Vec<u8>,
}

impl GroupMessage {
    /// Encodes as a complete multicast frame on the 10 Mb Ethernet.
    pub fn encode_frame(&self, medium: &Medium, eth_src: u64) -> Vec<u8> {
        let mut body = Vec::with_capacity(8 + self.data.len());
        body.extend_from_slice(&self.group.to_be_bytes());
        body.extend_from_slice(&self.seq.to_be_bytes());
        body.extend_from_slice(&self.data);
        frame::build(
            medium,
            group_eth_addr(self.group),
            eth_src,
            GROUP_ETHERTYPE,
            &body,
        )
        .expect("group message fits")
    }

    /// Decodes from a complete frame.
    pub fn decode_frame(medium: &Medium, bytes: &[u8]) -> Option<GroupMessage> {
        let h = frame::parse(medium, bytes).ok()?;
        if h.ethertype != GROUP_ETHERTYPE {
            return None;
        }
        let body = frame::payload(medium, bytes).ok()?;
        if body.len() < 8 {
            return None;
        }
        Some(GroupMessage {
            group: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
            seq: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
            data: body[8..].to_vec(),
        })
    }

    /// The member filter: group ethertype (word 6 on the 10 Mb net) and
    /// group id (words 7-8). Built with the DSL; every member binds it
    /// with `deliver_to_lower` so co-resident members each get a copy.
    pub fn member_filter(priority: u8, group: u32) -> FilterProgram {
        Expr::word(8)
            .eq((group & 0xFFFF) as u16)
            .and(Expr::word(7).eq((group >> 16) as u16))
            .and(Expr::word(6).eq(GROUP_ETHERTYPE))
            .compile(priority)
            .expect("static filter compiles")
    }
}

/// A process that joined a group and records what it receives.
pub struct GroupMember {
    group: u32,
    fd: Option<Fd>,
    /// Messages received, in order.
    pub received: Vec<GroupMessage>,
}

impl GroupMember {
    /// Creates a member of `group`.
    pub fn new(group: u32) -> Self {
        GroupMember {
            group,
            fd: None,
            received: Vec::new(),
        }
    }
}

impl App for GroupMember {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        // Join at the data-link layer (the V use of Ethernet multicast)…
        k.join_multicast(group_eth_addr(self.group));
        // …and at the packet filter, opting into shared delivery (§3.2).
        let fd = k.pf_open();
        k.pf_set_filter(fd, GroupMessage::member_filter(10, self.group));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                deliver_to_lower: true,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let medium = Medium::standard_10mb();
        for p in packets {
            if let Some(m) = GroupMessage::decode_frame(&medium, &p.bytes) {
                self.received.push(m);
            }
        }
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _e: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// A process that multicasts messages to a group.
pub struct GroupSender {
    group: u32,
    messages: Vec<Vec<u8>>,
    /// Messages transmitted.
    pub sent: u32,
}

impl GroupSender {
    /// Creates a sender that will multicast each payload once.
    pub fn new(group: u32, messages: Vec<Vec<u8>>) -> Self {
        GroupSender {
            group,
            messages,
            sent: 0,
        }
    }
}

impl App for GroupSender {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        let medium = Medium::standard_10mb();
        let (_, my_eth) = k.link_info();
        for (i, data) in self.messages.clone().into_iter().enumerate() {
            let m = GroupMessage {
                group: self.group,
                seq: i as u32 + 1,
                data,
            };
            let _ = k.pf_write(fd, &m.encode_frame(&medium, my_eth));
            self.sent += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_kernel::world::World;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    #[test]
    fn message_round_trip() {
        let medium = Medium::standard_10mb();
        let m = GroupMessage {
            group: 0x12345,
            seq: 7,
            data: b"state update".to_vec(),
        };
        let f = m.encode_frame(&medium, 0x0A);
        assert_eq!(GroupMessage::decode_frame(&medium, &f), Some(m));
    }

    #[test]
    fn multicast_reaches_every_member_process_once() {
        let mut w = World::new(64);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let sender_host = w.add_host("sender", seg, 0x01, CostModel::microvax_ii());
        let host_a = w.add_host("a", seg, 0x0A, CostModel::microvax_ii());
        let host_b = w.add_host("b", seg, 0x0B, CostModel::microvax_ii());
        let host_c = w.add_host("c", seg, 0x0C, CostModel::microvax_ii());

        const GROUP: u32 = 0x77;
        // Two member processes on host A (the §3.2 same-host case), one on
        // host B, none on host C.
        let a1 = w.spawn(host_a, Box::new(GroupMember::new(GROUP)));
        let a2 = w.spawn(host_a, Box::new(GroupMember::new(GROUP)));
        let b1 = w.spawn(host_b, Box::new(GroupMember::new(GROUP)));
        // A member of a *different* group on host B: filtered out in the
        // kernel even though its host receives the frames? No — its host
        // never joins this group's address, and its filter is different.
        let other = w.spawn(host_b, Box::new(GroupMember::new(0x99)));

        w.spawn(
            sender_host,
            Box::new(GroupSender::new(
                GROUP,
                vec![b"one".to_vec(), b"two".to_vec()],
            )),
        );
        w.run();

        for (host, proc, label) in [(host_a, a1, "a1"), (host_a, a2, "a2"), (host_b, b1, "b1")] {
            let m = w.app_ref::<GroupMember>(host, proc).unwrap();
            assert_eq!(m.received.len(), 2, "{label} got each message once");
            assert_eq!(m.received[0].data, b"one");
            assert_eq!(m.received[1].data, b"two");
        }
        let o = w.app_ref::<GroupMember>(host_b, other).unwrap();
        assert!(o.received.is_empty(), "non-member saw nothing");
        // Host C never joined: its NIC filtered the frames out entirely.
        assert_eq!(w.counters(host_c).packets_received, 0);
        // Host A delivered two copies of each frame (two member ports).
        assert_eq!(w.counters(host_a).packets_delivered, 4);
    }

    #[test]
    fn member_filter_is_table_compiled() {
        // The group filter is a pure conjunction of equalities, so the §7
        // decision table folds it.
        let mut set = pf_filter::dtree::FilterSet::new();
        set.insert(1, GroupMessage::member_filter(10, 0x77));
        assert_eq!(
            set.member_kind(1),
            Some(pf_filter::dtree::MemberKind::Table)
        );
    }
}
