//! The Pup internetwork datagram (Boggs, Shoch, Taft & Metcalfe 1980).
//!
//! §5.1 of the paper: "At Stanford, almost all of the Pup protocols were
//! implemented for Unix, based entirely on the packet filter." This module
//! implements the Pup datagram in the figure 3-7 encapsulation for the
//! 3 Mbit/s Experimental Ethernet: a 20-byte Pup header, data, and a
//! trailing 16-bit software checksum (or the all-ones "no checksum"
//! value — the implementations measured in §6 did not checksum).
//!
//! Layout, as 16-bit words after the 4-byte Ethernet header:
//!
//! ```text
//! word 0: PupLength        (header + data + checksum, in bytes)
//! word 1: HopCount | PupType
//! word 2: PupIdentifier (high)
//! word 3: PupIdentifier (low)
//! word 4: DstNet | DstHost
//! word 5: DstSocket (high)
//! word 6: DstSocket (low)
//! word 7: SrcNet | SrcHost
//! word 8: SrcSocket (high)
//! word 9: SrcSocket (low)
//! …       data
//! last:   checksum
//! ```
//!
//! (Figure 3-7 shows these at Ethernet word offsets 2–11, which is where
//! the filter programs address them.)

use pf_net::frame;
use pf_net::medium::Medium;

/// Ethernet type for Pup on the 3 Mbit/s network (figure 3-8 tests for 2).
pub const PUP_ETHERTYPE: u16 = 2;

/// Pup header length in bytes (excluding the trailing checksum).
pub const PUP_HEADER: usize = 20;

/// Trailing checksum length in bytes.
pub const PUP_CHECKSUM: usize = 2;

/// Maximum Pup length (header + data + checksum) — "Pup (hence BSP) allows
/// a maximum packet size of 568 bytes" (§6.4).
pub const MAX_PUP: usize = 568;

/// Maximum data bytes per Pup.
pub const MAX_PUP_DATA: usize = MAX_PUP - PUP_HEADER - PUP_CHECKSUM;

/// The "no checksum" sentinel value.
pub const NO_CHECKSUM: u16 = 0xFFFF;

/// Well-known Pup types used by this reproduction.
pub mod types {
    /// Echo request ("EchoMe").
    pub const ECHO_ME: u8 = 1;
    /// Echo reply ("ImAnEcho").
    pub const IM_AN_ECHO: u8 = 2;
    /// BSP: request for connection.
    pub const BSP_RFC: u8 = 8;
    /// BSP: connection accepted.
    pub const BSP_OPEN: u8 = 9;
    /// BSP data, acknowledgement requested.
    pub const BSP_ADATA: u8 = 16;
    /// BSP data.
    pub const BSP_DATA: u8 = 17;
    /// BSP acknowledgement.
    pub const BSP_ACK: u8 = 18;
    /// BSP end of stream.
    pub const BSP_END: u8 = 19;
    /// BSP end acknowledgement.
    pub const BSP_END_REPLY: u8 = 20;
    /// BSP throttle: the receiver's kernel port crossed its backpressure
    /// mark; the sender should shrink its window (modeled on real BSP's
    /// out-of-band Interrupt packets).
    pub const BSP_THROTTLE: u8 = 24;
    /// Abort.
    pub const ABORT: u8 = 32;
}

/// A Pup endpoint address: network, host, and 32-bit socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PupAddr {
    /// Network number.
    pub net: u8,
    /// Host number (also the Ethernet address on the 3 Mb network).
    pub host: u8,
    /// Socket number.
    pub socket: u32,
}

impl PupAddr {
    /// Creates an address.
    pub fn new(net: u8, host: u8, socket: u32) -> Self {
        PupAddr { net, host, socket }
    }
}

/// A decoded Pup datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pup {
    /// The Pup type (figure 3-8 filters on this byte).
    pub ptype: u8,
    /// Gateway hop count.
    pub hops: u8,
    /// Transaction/sequence identifier.
    pub id: u32,
    /// Destination endpoint.
    pub dst: PupAddr,
    /// Source endpoint.
    pub src: PupAddr,
    /// Payload.
    pub data: Vec<u8>,
}

/// Errors decoding a Pup from a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PupError {
    /// Not a Pup Ethernet type.
    NotPup {
        /// The frame's actual Ethernet type.
        ethertype: u16,
    },
    /// The frame or its declared Pup length is malformed.
    Malformed,
    /// The software checksum did not verify.
    BadChecksum {
        /// Checksum carried in the packet.
        got: u16,
        /// Checksum computed over the packet.
        want: u16,
    },
}

impl core::fmt::Display for PupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PupError::NotPup { ethertype } => write!(f, "ethertype {ethertype:#x} is not Pup"),
            PupError::Malformed => write!(f, "malformed Pup"),
            PupError::BadChecksum { got, want } => {
                write!(f, "bad Pup checksum {got:#06x} (computed {want:#06x})")
            }
        }
    }
}

impl std::error::Error for PupError {}

impl Pup {
    /// A minimal Pup with the given type, id, endpoints, and data.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds [`MAX_PUP_DATA`]; senders segment above
    /// this layer.
    pub fn new(ptype: u8, id: u32, dst: PupAddr, src: PupAddr, data: Vec<u8>) -> Self {
        assert!(
            data.len() <= MAX_PUP_DATA,
            "Pup data exceeds {MAX_PUP_DATA} bytes"
        );
        Pup {
            ptype,
            hops: 0,
            id,
            dst,
            src,
            data,
        }
    }

    /// Total Pup length (header + data + checksum).
    pub fn length(&self) -> usize {
        PUP_HEADER + self.data.len() + PUP_CHECKSUM
    }

    /// The Pup software checksum over a Pup image (all words except the
    /// trailing checksum word): 16-bit one's-complement add-and-left-cycle.
    pub fn checksum(image: &[u8]) -> u16 {
        let mut sum: u16 = 0;
        let mut i = 0;
        while i < image.len() {
            let hi = image[i];
            let lo = if i + 1 < image.len() { image[i + 1] } else { 0 };
            let w = u16::from_be_bytes([hi, lo]);
            let (s, carry) = sum.overflowing_add(w);
            sum = s + u16::from(carry); // end-around carry
            sum = sum.rotate_left(1); // and cycle
            i += 2;
        }
        if sum == NO_CHECKSUM {
            0
        } else {
            sum
        }
    }

    /// Encodes as the Pup body (header + data + checksum), without the
    /// Ethernet header. `checksummed` selects a real checksum or the
    /// [`NO_CHECKSUM`] sentinel.
    pub fn encode_body(&self, checksummed: bool) -> Vec<u8> {
        let mut b = Vec::with_capacity(self.length());
        let len = self.length() as u16;
        b.extend_from_slice(&len.to_be_bytes());
        b.push(self.hops);
        b.push(self.ptype);
        b.extend_from_slice(&self.id.to_be_bytes());
        b.push(self.dst.net);
        b.push(self.dst.host);
        b.extend_from_slice(&self.dst.socket.to_be_bytes());
        b.push(self.src.net);
        b.push(self.src.host);
        b.extend_from_slice(&self.src.socket.to_be_bytes());
        b.extend_from_slice(&self.data);
        let sum = if checksummed {
            Self::checksum(&b)
        } else {
            NO_CHECKSUM
        };
        b.extend_from_slice(&sum.to_be_bytes());
        b
    }

    /// Encodes as a complete 3 Mb Ethernet frame. The Ethernet source and
    /// destination are the Pup host bytes (local-network routing).
    pub fn encode_frame(&self, medium: &Medium, checksummed: bool) -> Vec<u8> {
        let body = self.encode_body(checksummed);
        frame::build(
            medium,
            u64::from(self.dst.host),
            u64::from(self.src.host),
            PUP_ETHERTYPE,
            &body,
        )
        .expect("MAX_PUP fits the 3 Mb medium")
    }

    /// Decodes a complete frame.
    ///
    /// # Errors
    ///
    /// Returns a [`PupError`] if the frame is not Pup, is malformed, or
    /// (when a real checksum is present) fails verification.
    pub fn decode_frame(medium: &Medium, frame_bytes: &[u8]) -> Result<Pup, PupError> {
        let h = frame::parse(medium, frame_bytes).map_err(|_| PupError::Malformed)?;
        if h.ethertype != PUP_ETHERTYPE {
            return Err(PupError::NotPup {
                ethertype: h.ethertype,
            });
        }
        let body = frame::payload(medium, frame_bytes).map_err(|_| PupError::Malformed)?;
        Self::decode_body(body)
    }

    /// Decodes a Pup body (header + data + checksum).
    ///
    /// # Errors
    ///
    /// Returns a [`PupError`] if lengths are inconsistent or the checksum
    /// fails.
    pub fn decode_body(body: &[u8]) -> Result<Pup, PupError> {
        if body.len() < PUP_HEADER + PUP_CHECKSUM {
            return Err(PupError::Malformed);
        }
        let length = usize::from(u16::from_be_bytes([body[0], body[1]]));
        if length < PUP_HEADER + PUP_CHECKSUM || length > body.len() || length > MAX_PUP {
            return Err(PupError::Malformed);
        }
        let carried = u16::from_be_bytes([body[length - 2], body[length - 1]]);
        if carried != NO_CHECKSUM {
            let want = Self::checksum(&body[..length - 2]);
            if carried != want {
                return Err(PupError::BadChecksum { got: carried, want });
            }
        }
        Ok(Pup {
            hops: body[2],
            ptype: body[3],
            id: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
            dst: PupAddr {
                net: body[8],
                host: body[9],
                socket: u32::from_be_bytes([body[10], body[11], body[12], body[13]]),
            },
            src: PupAddr {
                net: body[14],
                host: body[15],
                socket: u32::from_be_bytes([body[16], body[17], body[18], body[19]]),
            },
            data: body[PUP_HEADER..length - PUP_CHECKSUM].to_vec(),
        })
    }

    /// A figure-3-9-style packet-filter program accepting Pups addressed
    /// to `socket` (on the 3 Mb encapsulation).
    pub fn socket_filter(priority: u8, socket: u32) -> pf_filter::program::FilterProgram {
        pf_filter::samples::pup_socket_filter(
            priority,
            (socket >> 16) as u16,
            (socket & 0xFFFF) as u16,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_filter::interp::CheckedInterpreter;
    use pf_filter::packet::PacketView;

    fn medium() -> Medium {
        Medium::experimental_3mb()
    }

    fn sample(data: &[u8]) -> Pup {
        Pup::new(
            types::BSP_DATA,
            0xDEADBEEF,
            PupAddr::new(1, 0x0B, 35),
            PupAddr::new(1, 0x0A, 0x99),
            data.to_vec(),
        )
    }

    #[test]
    fn round_trip_unchecksummed() {
        let p = sample(b"hello pup");
        let f = p.encode_frame(&medium(), false);
        let q = Pup::decode_frame(&medium(), &f).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn round_trip_checksummed() {
        let p = sample(&[0u8; 100]);
        let f = p.encode_frame(&medium(), true);
        let q = Pup::decode_frame(&medium(), &f).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn corruption_detected_when_checksummed() {
        let p = sample(b"data");
        let mut f = p.encode_frame(&medium(), true);
        let idx = f.len() - 5; // inside data
        f[idx] ^= 0x40;
        assert!(matches!(
            Pup::decode_frame(&medium(), &f),
            Err(PupError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corruption_passes_unchecksummed() {
        // The paper's BSP/VMTP did not checksum; corruption is the upper
        // layer's problem. Flipping payload bits must still decode.
        let p = sample(b"data");
        let mut f = p.encode_frame(&medium(), false);
        let idx = f.len() - 5;
        f[idx] ^= 0x40;
        assert!(Pup::decode_frame(&medium(), &f).is_ok());
    }

    #[test]
    fn wrong_ethertype_rejected() {
        let p = sample(b"x");
        let mut f = p.encode_frame(&medium(), false);
        f[3] = 9;
        assert!(matches!(
            Pup::decode_frame(&medium(), &f),
            Err(PupError::NotPup { ethertype: 0x0009 })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let p = sample(b"somedata");
        let f = p.encode_frame(&medium(), false);
        assert!(matches!(
            Pup::decode_frame(&medium(), &f[..10]),
            Err(PupError::Malformed)
        ));
    }

    #[test]
    fn declared_length_beyond_buffer_rejected() {
        let p = sample(b"");
        let mut f = p.encode_frame(&medium(), false);
        // Inflate the declared PupLength past the frame end.
        f[4] = 0x01;
        f[5] = 0xFF;
        assert!(matches!(
            Pup::decode_frame(&medium(), &f),
            Err(PupError::Malformed)
        ));
    }

    #[test]
    fn max_data_fits_medium() {
        let p = sample(&vec![7u8; MAX_PUP_DATA]);
        let f = p.encode_frame(&medium(), false);
        assert_eq!(f.len(), 4 + MAX_PUP);
        assert!(f.len() <= medium().max_packet);
        let q = Pup::decode_frame(&medium(), &f).unwrap();
        assert_eq!(q.data.len(), MAX_PUP_DATA);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_data_panics() {
        let _ = sample(&vec![0u8; MAX_PUP_DATA + 1]);
    }

    #[test]
    fn header_lands_on_fig_3_7_words() {
        // Per figure 3-7: the Pup type is the low byte of Ethernet word 3,
        // and the destination socket occupies Ethernet words 7-8 — the
        // exact offsets the figure 3-8/3-9 filters test.
        let p = sample(b"xy");
        let f = p.encode_frame(&medium(), false);
        let v = PacketView::new(&f);
        assert_eq!(v.word(1), Some(PUP_ETHERTYPE)); // EtherType
        assert_eq!(
            v.word(3).map(|w| w & 0xFF),
            Some(u16::from(types::BSP_DATA))
        );
        assert_eq!(v.word(7), Some(0)); // DstSocket high
        assert_eq!(v.word(8), Some(35)); // DstSocket low
    }

    #[test]
    fn socket_filter_matches_encoded_pups() {
        let interp = CheckedInterpreter::default();
        let f35 = Pup::socket_filter(10, 35);
        let hit = sample(b"x").encode_frame(&medium(), false);
        assert!(interp.eval(&f35, PacketView::new(&hit)));
        let mut miss = sample(b"x");
        miss.dst.socket = 36;
        let miss = miss.encode_frame(&medium(), false);
        assert!(!interp.eval(&f35, PacketView::new(&miss)));
        // 32-bit sockets: high word must be tested too.
        let f_big = Pup::socket_filter(10, 0x0001_0023);
        let mut big = sample(b"x");
        big.dst.socket = 0x0001_0023;
        let big = big.encode_frame(&medium(), false);
        assert!(interp.eval(&f_big, PacketView::new(&big)));
        assert!(!interp.eval(&f_big, PacketView::new(&hit)));
    }

    #[test]
    fn checksum_never_produces_sentinel() {
        // 0xFFFF means "unchecked"; the checksum function must avoid it.
        // All-0xFF images drive the one's-complement sum toward 0xFFFF.
        for n in 1..64 {
            let image = vec![0xFFu8; n];
            assert_ne!(Pup::checksum(&image), NO_CHECKSUM, "n = {n}");
        }
    }
}
