//! TCP-lite: the kernel-resident stream protocol of the §6.4 comparison.
//!
//! A deliberately compact TCP: real segment headers (ports, 32-bit
//! sequence/ack numbers, SYN/ACK/FIN flags, a window), sliding-window
//! byte-stream delivery with cumulative acks and go-back-N timeout
//! recovery, and — the §6.3/§6.4 distinction — *checksummed data*: every
//! data byte is charged checksum time on both send and receive, which
//! VMTP and BSP skip.
//!
//! Omissions (documented, deliberate): no sequence wraparound (transfers
//! are far below 2³¹ bytes), no congestion control (1987 predates it), no
//! out-of-order reassembly (drop and re-ack, like the BSP receiver), no
//! simultaneous opens. None of these affect what the paper measures.
//!
//! "TCP in 4.3BSD uses 1078-byte packets": 14 (Ethernet) + 20 (IP) +
//! 20 (TCP) + [`MSS_DEFAULT`] = 1078 bytes on the wire. Table 6-6's
//! "forced to use the smaller packet size" run passes an MSS that matches
//! BSP's 568-byte Pups.

use crate::ip::{ops, KernelIp, PROTO_TCP};
use pf_kernel::types::SockId;
use pf_kernel::world::KernelCtx;
use pf_sim::queue::EventHandle;
use pf_sim::time::SimDuration;
use std::collections::{HashMap, VecDeque};

/// TCP header length (no options).
pub const TCP_HEADER: usize = 20;

/// Default maximum segment size (data bytes per segment).
pub const MSS_DEFAULT: usize = 1024;

/// Send/receive window in bytes.
pub const TCP_WINDOW: usize = 4096;

/// Retransmission timeout.
pub const TCP_RTO: SimDuration = SimDuration::from_millis(300);

/// Checksum cost per data byte, charged on both input and output ("note
/// that TCP checksums all data, whereas these implementations of VMTP do
/// not" — §6.3).
pub const CKSUM_PER_BYTE_NS: u64 = 600;

/// Processing cost of a pure acknowledgment (no data) above the IP layer,
/// on input or output — far below the data path's `transport_input`.
pub const PURE_ACK_COST: SimDuration = SimDuration::from_micros(350);

/// Segment flags.
pub mod flags {
    /// Connection request.
    pub const SYN: u8 = 0x02;
    /// Acknowledgment field valid.
    pub const ACK: u8 = 0x10;
    /// Sender is done.
    pub const FIN: u8 = 0x01;
}

/// A decoded TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first data byte (or of SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgment.
    pub ack: u32,
    /// Flag bits.
    pub flags: u8,
    /// Advertised window.
    pub window: u16,
    /// Data.
    pub data: Vec<u8>,
}

impl Segment {
    /// Encodes the segment.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(TCP_HEADER + self.data.len());
        b.extend_from_slice(&self.src_port.to_be_bytes());
        b.extend_from_slice(&self.dst_port.to_be_bytes());
        b.extend_from_slice(&self.seq.to_be_bytes());
        b.extend_from_slice(&self.ack.to_be_bytes());
        b.push(5 << 4); // data offset 5 words
        b.push(self.flags);
        b.extend_from_slice(&self.window.to_be_bytes());
        b.extend_from_slice(&[0, 0, 0, 0]); // checksum, urgent (simulated)
        b.extend_from_slice(&self.data);
        b
    }

    /// Decodes a segment.
    pub fn decode(b: &[u8]) -> Option<Segment> {
        if b.len() < TCP_HEADER || (b[12] >> 4) != 5 {
            return None;
        }
        Some(Segment {
            src_port: u16::from_be_bytes([b[0], b[1]]),
            dst_port: u16::from_be_bytes([b[2], b[3]]),
            seq: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            ack: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
            flags: b[13],
            window: u16::from_be_bytes([b[14], b[15]]),
            data: b[TCP_HEADER..].to_vec(),
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    SynSent,
    SynRcvd,
    Estab,
    Closed,
}

#[derive(Debug)]
struct Conn {
    sock: SockId,
    local_port: u16,
    remote_port: u16,
    remote_ip: u32,
    remote_eth: u64,
    mss: usize,
    state: ConnState,
    /// First unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Unacknowledged + unsent bytes; front byte has sequence `snd_una`.
    send_buf: VecDeque<u8>,
    /// User asked to close once the buffer drains.
    fin_pending: bool,
    /// Sequence number of our FIN, once sent.
    fin_seq: Option<u32>,
    /// Next expected receive sequence.
    rcv_nxt: u32,
    /// The application is waiting for a send-complete notification.
    app_waiting: bool,
    timer: Option<EventHandle>,
}

/// All TCP state within a [`KernelIp`].
#[derive(Debug, Default)]
pub struct TcpState {
    conns: Vec<Conn>,
    listens: HashMap<u16, SockId>,
    next_port: u16,
    /// Segments retransmitted (observability for loss tests).
    pub retransmits: u64,
}

/// Timer tokens namespace: `TCP_TIMER_BASE + conn index`.
const TCP_TIMER_BASE: u64 = 0x7C90_0000;

fn cksum_cost(bytes: usize) -> SimDuration {
    SimDuration::from_nanos(CKSUM_PER_BYTE_NS * bytes as u64)
}

/// Registers a passive open.
pub(crate) fn user_listen(kip: &mut KernelIp, sock: SockId, port: u16) {
    kip.tcp.listens.insert(port, sock);
}

/// Starts an active open.
pub(crate) fn user_connect(
    kip: &mut KernelIp,
    sock: SockId,
    dst_ip: u32,
    dst_port: u16,
    dst_eth: u64,
    mss: usize,
    k: &mut KernelCtx<'_>,
) {
    kip.tcp.next_port = kip.tcp.next_port.wrapping_add(1).max(2048);
    let local_port = kip.tcp.next_port;
    let conn = Conn {
        sock,
        local_port,
        remote_port: dst_port,
        remote_ip: dst_ip,
        remote_eth: dst_eth,
        mss: if mss == 0 { MSS_DEFAULT } else { mss },
        state: ConnState::SynSent,
        snd_una: 0,
        snd_nxt: 1,
        send_buf: VecDeque::new(),
        fin_pending: false,
        fin_seq: None,
        rcv_nxt: 0,
        app_waiting: false,
        timer: None,
    };
    kip.tcp.conns.push(conn);
    let ci = kip.tcp.conns.len() - 1;
    send_segment(kip, ci, 0, flags::SYN, Vec::new(), k);
    arm(kip, ci, k);
}

/// Queues stream data on a connection.
pub(crate) fn user_send(kip: &mut KernelIp, sock: SockId, data: Vec<u8>, k: &mut KernelCtx<'_>) {
    let Some(ci) = conn_by_sock(kip, sock) else {
        return;
    };
    kip.tcp.conns[ci].send_buf.extend(data);
    kip.tcp.conns[ci].app_waiting = true;
    pump(kip, ci, k);
}

/// Asks for an orderly close after queued data.
pub(crate) fn user_close(kip: &mut KernelIp, sock: SockId, k: &mut KernelCtx<'_>) {
    let Some(ci) = conn_by_sock(kip, sock) else {
        return;
    };
    kip.tcp.conns[ci].fin_pending = true;
    pump(kip, ci, k);
}

/// The socket itself went away: drop state.
pub(crate) fn sock_closed(kip: &mut KernelIp, sock: SockId, k: &mut KernelCtx<'_>) {
    kip.tcp.listens.retain(|_, s| *s != sock);
    for c in kip.tcp.conns.iter_mut().filter(|c| c.sock == sock) {
        c.state = ConnState::Closed;
        if let Some(t) = c.timer.take() {
            k.cancel_timer(t);
        }
    }
}

/// A TCP segment arrived inside an IP packet from `src_ip`/`eth_src`.
pub(crate) fn tcp_input(
    kip: &mut KernelIp,
    src_ip: u32,
    eth_src: u64,
    body: Vec<u8>,
    k: &mut KernelCtx<'_>,
) {
    let Some(seg) = Segment::decode(&body) else {
        return;
    };
    if seg.data.is_empty() {
        k.charge("tcp:input", PURE_ACK_COST);
    } else {
        let in_cost = k.costs().transport_input;
        k.charge("tcp:input", in_cost);
        k.charge("tcp:cksum", cksum_cost(seg.data.len()));
    }

    // Existing connection?
    let found = kip.tcp.conns.iter().position(|c| {
        c.state != ConnState::Closed
            && c.local_port == seg.dst_port
            && c.remote_port == seg.src_port
            && c.remote_ip == src_ip
    });
    if let Some(ci) = found {
        return conn_input(kip, ci, seg, k);
    }

    // New connection to a listener?
    if seg.flags & flags::SYN != 0 && seg.flags & flags::ACK == 0 {
        if let Some(&sock) = kip.tcp.listens.get(&seg.dst_port) {
            let conn = Conn {
                sock,
                local_port: seg.dst_port,
                remote_port: seg.src_port,
                remote_ip: src_ip,
                remote_eth: eth_src,
                mss: MSS_DEFAULT,
                state: ConnState::SynRcvd,
                snd_una: 0,
                snd_nxt: 1,
                send_buf: VecDeque::new(),
                fin_pending: false,
                fin_seq: None,
                rcv_nxt: seg.seq.wrapping_add(1),
                app_waiting: false,
                timer: None,
            };
            kip.tcp.conns.push(conn);
            let ci = kip.tcp.conns.len() - 1;
            send_segment(kip, ci, 0, flags::SYN | flags::ACK, Vec::new(), k);
            arm(kip, ci, k);
        }
    }
}

fn conn_input(kip: &mut KernelIp, ci: usize, seg: Segment, k: &mut KernelCtx<'_>) {
    let state = kip.tcp.conns[ci].state;
    match state {
        ConnState::SynSent => {
            if seg.flags & (flags::SYN | flags::ACK) == (flags::SYN | flags::ACK) && seg.ack == 1 {
                {
                    let c = &mut kip.tcp.conns[ci];
                    c.snd_una = 1;
                    c.rcv_nxt = seg.seq.wrapping_add(1);
                    c.state = ConnState::Estab;
                }
                disarm(kip, ci, k);
                send_ack(kip, ci, k);
                let sock = kip.tcp.conns[ci].sock;
                k.complete(sock, ops::TCP_CONNECTED, Vec::new(), [0; 4]);
                pump(kip, ci, k);
            }
        }
        ConnState::SynRcvd => {
            if seg.flags & flags::ACK != 0 && seg.ack >= 1 {
                kip.tcp.conns[ci].snd_una = 1;
                kip.tcp.conns[ci].state = ConnState::Estab;
                disarm(kip, ci, k);
                let sock = kip.tcp.conns[ci].sock;
                k.complete(sock, ops::TCP_CONNECTED, Vec::new(), [0; 4]);
                // Fall through to normal processing for piggybacked data.
                if !seg.data.is_empty() || seg.flags & flags::FIN != 0 {
                    estab_input(kip, ci, seg, k);
                }
            }
        }
        ConnState::Estab => estab_input(kip, ci, seg, k),
        ConnState::Closed => {}
    }
}

fn estab_input(kip: &mut KernelIp, ci: usize, seg: Segment, k: &mut KernelCtx<'_>) {
    // Acknowledgment processing.
    if seg.flags & flags::ACK != 0 {
        let (made_progress, all_acked, fin_acked) = {
            let c = &mut kip.tcp.conns[ci];
            let fin_acked = c.fin_seq.is_some_and(|f| seg.ack > f);
            if seg.ack > c.snd_una {
                let newly = (seg.ack - c.snd_una) as usize;
                // FIN occupies one sequence number but no buffer byte.
                let buffered = newly.min(c.send_buf.len());
                c.send_buf.drain(..buffered);
                c.snd_una = seg.ack;
                (true, c.send_buf.is_empty(), fin_acked)
            } else {
                (false, false, fin_acked)
            }
        };
        if made_progress {
            disarm(kip, ci, k);
            let c = &kip.tcp.conns[ci];
            if c.snd_nxt > c.snd_una && !fin_acked {
                arm(kip, ci, k);
            }
            pump(kip, ci, k);
            // Notify a waiting writer once everything it queued has been
            // packetized (the window keeps moving while it prepares the
            // next chunk).
            let _ = all_acked;
            let c = &mut kip.tcp.conns[ci];
            // The FIN occupies a sequence number but no buffer byte.
            let unsent = c
                .send_buf
                .len()
                .saturating_sub((c.snd_nxt - c.snd_una) as usize);
            if c.app_waiting && unsent == 0 {
                c.app_waiting = false;
                let sock = c.sock;
                k.complete(sock, ops::TCP_SENDABLE, Vec::new(), [0; 4]);
            }
        }
    }

    // Data processing (in-order only; drop-and-reack otherwise).
    if !seg.data.is_empty() {
        let (deliver, sock) = {
            let c = &mut kip.tcp.conns[ci];
            if seg.seq == c.rcv_nxt {
                c.rcv_nxt = c.rcv_nxt.wrapping_add(seg.data.len() as u32);
                (true, c.sock)
            } else {
                (false, c.sock)
            }
        };
        if deliver {
            k.complete(sock, ops::TCP_RECV, seg.data.clone(), [0; 4]);
        }
        send_ack(kip, ci, k);
    }

    // FIN processing.
    if seg.flags & flags::FIN != 0 {
        let fin_seq = seg.seq.wrapping_add(seg.data.len() as u32);
        let (consume, sock) = {
            let c = &mut kip.tcp.conns[ci];
            if fin_seq == c.rcv_nxt {
                c.rcv_nxt = c.rcv_nxt.wrapping_add(1);
                (true, c.sock)
            } else {
                (false, c.sock)
            }
        };
        send_ack(kip, ci, k);
        if consume {
            k.complete(sock, ops::TCP_CLOSED, Vec::new(), [0; 4]);
        }
    }
}

/// Sends window-permitted segments from the buffer, then a FIN if due.
fn pump(kip: &mut KernelIp, ci: usize, k: &mut KernelCtx<'_>) {
    loop {
        let (seq, chunk) = {
            let c = &kip.tcp.conns[ci];
            if c.state != ConnState::Estab {
                return;
            }
            let inflight = (c.snd_nxt - c.snd_una) as usize;
            let unsent_off = inflight;
            let unsent = c.send_buf.len().saturating_sub(unsent_off);
            if unsent == 0 || inflight >= TCP_WINDOW {
                break;
            }
            let n = unsent.min(c.mss).min(TCP_WINDOW - inflight);
            let chunk: Vec<u8> = c
                .send_buf
                .iter()
                .skip(unsent_off)
                .take(n)
                .copied()
                .collect();
            (c.snd_nxt, chunk)
        };
        let n = chunk.len() as u32;
        send_segment(kip, ci, seq, flags::ACK, chunk, k);
        let c = &mut kip.tcp.conns[ci];
        c.snd_nxt = c.snd_nxt.wrapping_add(n);
        if c.timer.is_none() {
            arm(kip, ci, k);
        }
    }
    // FIN once the buffer is fully sent.
    let send_fin = {
        let c = &kip.tcp.conns[ci];
        c.state == ConnState::Estab
            && c.fin_pending
            && c.fin_seq.is_none()
            && (c.snd_nxt - c.snd_una) as usize == c.send_buf.len()
    };
    if send_fin {
        let seq = kip.tcp.conns[ci].snd_nxt;
        kip.tcp.conns[ci].fin_seq = Some(seq);
        kip.tcp.conns[ci].snd_nxt = seq.wrapping_add(1);
        send_segment(kip, ci, seq, flags::FIN | flags::ACK, Vec::new(), k);
        arm(kip, ci, k);
    }
}

/// Retransmission: resend everything outstanding from `snd_una`.
pub(crate) fn on_timer(kip: &mut KernelIp, token: u64, k: &mut KernelCtx<'_>) {
    if !(TCP_TIMER_BASE..TCP_TIMER_BASE + 0x10000).contains(&token) {
        return;
    }
    let ci = (token - TCP_TIMER_BASE) as usize;
    if ci >= kip.tcp.conns.len() {
        return;
    }
    kip.tcp.conns[ci].timer = None;
    match kip.tcp.conns[ci].state {
        ConnState::SynSent => {
            kip.tcp.retransmits += 1;
            send_segment(kip, ci, 0, flags::SYN, Vec::new(), k);
            arm(kip, ci, k);
        }
        ConnState::SynRcvd => {
            kip.tcp.retransmits += 1;
            send_segment(kip, ci, 0, flags::SYN | flags::ACK, Vec::new(), k);
            arm(kip, ci, k);
        }
        ConnState::Estab => {
            let mut resend = Vec::new();
            {
                let c = &kip.tcp.conns[ci];
                let outstanding = (c.snd_nxt - c.snd_una) as usize;
                let data_outstanding = outstanding.min(c.send_buf.len());
                let mut off = 0usize;
                while off < data_outstanding {
                    let n = (data_outstanding - off).min(c.mss);
                    let chunk: Vec<u8> = c.send_buf.iter().skip(off).take(n).copied().collect();
                    resend.push((c.snd_una.wrapping_add(off as u32), chunk));
                    off += n;
                }
            }
            let had_any = !resend.is_empty();
            for (seq, chunk) in resend {
                kip.tcp.retransmits += 1;
                send_segment(kip, ci, seq, flags::ACK, chunk, k);
            }
            // An unacked FIN is retransmitted too.
            let fin = {
                let c = &kip.tcp.conns[ci];
                c.fin_seq.filter(|f| c.snd_una <= *f)
            };
            if let Some(f) = fin {
                kip.tcp.retransmits += 1;
                send_segment(kip, ci, f, flags::FIN | flags::ACK, Vec::new(), k);
            }
            if had_any || fin.is_some() {
                arm(kip, ci, k);
            }
        }
        ConnState::Closed => {}
    }
}

fn send_ack(kip: &mut KernelIp, ci: usize, k: &mut KernelCtx<'_>) {
    let seq = kip.tcp.conns[ci].snd_nxt;
    send_segment(kip, ci, seq, flags::ACK, Vec::new(), k);
}

fn send_segment(
    kip: &mut KernelIp,
    ci: usize,
    seq: u32,
    flag_bits: u8,
    data: Vec<u8>,
    k: &mut KernelCtx<'_>,
) {
    let (remote_ip, remote_eth, seg) = {
        let c = &kip.tcp.conns[ci];
        (
            c.remote_ip,
            c.remote_eth,
            Segment {
                src_port: c.local_port,
                dst_port: c.remote_port,
                seq,
                ack: c.rcv_nxt,
                flags: flag_bits,
                window: TCP_WINDOW as u16,
                data,
            },
        )
    };
    if seg.data.is_empty() {
        k.charge("tcp:output", PURE_ACK_COST);
    } else {
        let out_cost = k.costs().transport_input; // output ≈ input
        k.charge("tcp:output", out_cost);
        k.charge("tcp:cksum", cksum_cost(seg.data.len()));
    }
    crate::ip::ip_output_raw(kip.ip, k, PROTO_TCP, remote_ip, remote_eth, &seg.encode());
}

fn arm(kip: &mut KernelIp, ci: usize, k: &mut KernelCtx<'_>) {
    if let Some(t) = kip.tcp.conns[ci].timer.take() {
        k.cancel_timer(t);
    }
    kip.tcp.conns[ci].timer = Some(k.set_timer(TCP_RTO, TCP_TIMER_BASE + ci as u64));
}

fn disarm(kip: &mut KernelIp, ci: usize, k: &mut KernelCtx<'_>) {
    if let Some(t) = kip.tcp.conns[ci].timer.take() {
        k.cancel_timer(t);
    }
}

fn conn_by_sock(kip: &KernelIp, sock: SockId) -> Option<usize> {
    kip.tcp
        .conns
        .iter()
        .position(|c| c.sock == sock && c.state != ConnState::Closed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_round_trip() {
        let s = Segment {
            src_port: 2048,
            dst_port: 23,
            seq: 0xDEAD_BEEF,
            ack: 0x1234_5678,
            flags: flags::ACK | flags::FIN,
            window: 4096,
            data: vec![1, 2, 3],
        };
        assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn decode_rejects_short_or_optioned() {
        assert!(Segment::decode(&[0; 10]).is_none());
        let mut b = Segment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: 0,
            window: 0,
            data: vec![],
        }
        .encode();
        b[12] = 6 << 4; // options present: unsupported
        assert!(Segment::decode(&b).is_none());
    }

    #[test]
    fn wire_sizes_match_the_paper() {
        // 14 + 20 + 20 + 1024 = 1078-byte packets (§6.4).
        assert_eq!(14 + crate::ip::IP_HEADER + TCP_HEADER + MSS_DEFAULT, 1078);
    }
}
