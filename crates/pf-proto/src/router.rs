//! The IP forwarding plane for topology routers, and the glue that
//! deploys a `pf_net::Topology` into a running `World`.
//!
//! `pf-net` defines the [`Forwarder`] boundary but deliberately knows
//! nothing about IP; this module supplies the implementation using the
//! same wire codecs as the kernel-resident stack ([`crate::ip`]):
//! decapsulate, TTL-check and decrement, longest-prefix-match against a
//! static [`RouteTable`], resolve the next hop through the topology's
//! static ARP map, and re-encapsulate on the outgoing medium. A router
//! node in the `World` charges `CostModel::ip_forward` per hop and
//! serializes transmissions per interface, so store-and-forward latency
//! and per-link bandwidth are modeled end to end.

use std::collections::HashMap;

use pf_kernel::{HostId, RouterId, World};
use pf_net::fabric::FabricAction;
use pf_net::medium::Medium;
use pf_net::topology::{Forwarder, ForwarderStats, NodeId, NodeKind, Route, RouteTable, Topology};
use pf_net::{frame, SegmentId};
use pf_sim::time::{SimDuration, SimTime};
use pf_sim::CostModel;

use crate::ip::{decode_ip, encode_ip, IP_ETHERTYPE};

/// Ethertype of the resilience plane's control frames (hellos and
/// link-state updates). Chosen outside the IP/ARP range so plain
/// forwarders count stray control traffic as `not_routable` instead of
/// misparsing it.
pub const CONTROL_ETHERTYPE: u16 = 0x07F0;

const MSG_HELLO: u8 = 1;
const MSG_LSU: u8 = 2;
/// Link-state records per flooded frame (chunked so a full database
/// sync never exceeds a medium's maximum packet size).
const LSU_CHUNK: usize = 40;

/// Timing knobs of the neighbor-liveness state machine.
#[derive(Debug, Clone, Copy)]
pub struct HelloConfig {
    /// How often each router interface emits a hello (and how often the
    /// dead-interval scan runs — the forwarder tick).
    pub hello_interval: SimDuration,
    /// Silence on a neighbor after which it is declared dead. Should be
    /// several hello intervals so one lost hello is not a failure.
    pub dead_interval: SimDuration,
}

impl Default for HelloConfig {
    fn default() -> Self {
        HelloConfig {
            hello_interval: SimDuration::from_millis(20),
            dead_interval: SimDuration::from_millis(60),
        }
    }
}

/// One router-neighbor adjacency as the liveness prober sees it.
#[derive(Debug, Clone)]
struct Neighbor {
    /// Which of our interfaces shares a link with this neighbor.
    iface: usize,
    /// The neighbor's topology node index.
    node: u16,
    /// The neighbor's link address on the shared segment (hello
    /// destination).
    eth: u64,
    /// The neighbor's IP on the shared segment (matches our route
    /// table's `next_hop` entries through it).
    ip: u32,
    /// Last time we heard any control frame from it.
    last_heard: SimTime,
    alive: bool,
}

/// One link-state record: `origin` asserts, with per-origin sequence
/// number `seq`, that the undirected router adjacency `(a, b)` is
/// currently `up`. Only an adjacency's endpoints originate records
/// about it; a pair is treated as down while *any* origin's freshest
/// record says down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LsRecord {
    origin: u16,
    seq: u32,
    a: u16,
    b: u16,
    up: bool,
}

/// The per-router resilience plane: hello/dead-interval neighbor
/// probing, link-state flooding, precomputed-backup failover, and
/// triggered route recomputation over the residual topology.
#[derive(Debug)]
struct ControlPlane {
    cfg: HelloConfig,
    /// Our topology node index.
    node: u16,
    /// The full plan, kept for residual-graph recomputation (the
    /// static topology is the baseline link-state database; floods
    /// carry only failure deltas).
    topo: Topology,
    neighbors: Vec<Neighbor>,
    /// Precomputed strictly-downhill backup next-hops.
    backups: RouteTable,
    /// Failure database: normalized pair → per-origin freshest record.
    adj: HashMap<(u16, u16), HashMap<u16, (u32, bool)>>,
    /// Our own origination sequence (survives crashes: fail-stop with
    /// stable storage).
    my_seq: u32,
    /// Last tick instant; a gap longer than the dead interval means we
    /// were crashed, and neighbor timers get a grace reset on revival.
    last_tick: SimTime,
    /// Best known current time (ticks and control-frame stamps).
    clock: SimTime,
}

fn encode_control(msg: u8, origin: u16, sent_at: SimTime, records: &[LsRecord]) -> Vec<u8> {
    let mut p = Vec::with_capacity(12 + records.len() * 11);
    p.push(msg);
    p.extend_from_slice(&origin.to_be_bytes());
    p.extend_from_slice(&sent_at.as_nanos().to_be_bytes());
    if msg == MSG_LSU {
        debug_assert!(records.len() <= LSU_CHUNK);
        p.push(records.len() as u8);
        for r in records {
            p.extend_from_slice(&r.origin.to_be_bytes());
            p.extend_from_slice(&r.seq.to_be_bytes());
            p.extend_from_slice(&r.a.to_be_bytes());
            p.extend_from_slice(&r.b.to_be_bytes());
            p.push(u8::from(r.up));
        }
    }
    p
}

fn decode_control(body: &[u8]) -> Option<(u8, u16, SimTime, Vec<LsRecord>)> {
    if body.len() < 11 {
        return None;
    }
    let msg = body[0];
    let origin = u16::from_be_bytes([body[1], body[2]]);
    let sent_at = SimTime(u64::from_be_bytes(body[3..11].try_into().ok()?));
    let mut records = Vec::new();
    if msg == MSG_LSU {
        let count = usize::from(*body.get(11)?);
        let mut off = 12;
        for _ in 0..count {
            let rec = body.get(off..off + 11)?;
            records.push(LsRecord {
                origin: u16::from_be_bytes([rec[0], rec[1]]),
                seq: u32::from_be_bytes(rec[2..6].try_into().ok()?),
                a: u16::from_be_bytes([rec[6], rec[7]]),
                b: u16::from_be_bytes([rec[8], rec[9]]),
                up: rec[10] != 0,
            });
            off += 11;
        }
    }
    Some((msg, origin, sent_at, records))
}

impl ControlPlane {
    fn new(topo: &Topology, node: NodeId, cfg: HelloConfig) -> Self {
        let mut neighbors = Vec::new();
        for (vi, iface) in topo.interfaces(node).iter().enumerate() {
            for &m in topo.members(iface.link) {
                if m == node || topo.kind(m) != NodeKind::Router {
                    continue;
                }
                let peer = topo
                    .interfaces(m)
                    .iter()
                    .find(|pi| pi.link == iface.link)
                    .expect("neighbor has an interface on the shared link");
                neighbors.push(Neighbor {
                    iface: vi,
                    node: m.0 as u16,
                    eth: peer.eth,
                    ip: peer.ip,
                    last_heard: SimTime::ZERO,
                    alive: true,
                });
            }
        }
        ControlPlane {
            cfg,
            node: node.0 as u16,
            topo: topo.clone(),
            neighbors,
            backups: topo.backup_route_table(node).clone(),
            adj: HashMap::new(),
            my_seq: 0,
            last_tick: SimTime::ZERO,
            clock: SimTime::ZERO,
        }
    }

    /// Self-originates the next-sequence record about our adjacency with
    /// `peer`.
    fn originate(&mut self, peer: u16, up: bool) -> LsRecord {
        self.my_seq += 1;
        LsRecord {
            origin: self.node,
            seq: self.my_seq,
            a: self.node.min(peer),
            b: self.node.max(peer),
            up,
        }
    }

    /// Merges records into the database; returns the subset that was
    /// actually news (per-origin sequence strictly advanced), which is
    /// exactly what gets re-flooded.
    fn apply(&mut self, records: &[LsRecord]) -> Vec<LsRecord> {
        let mut fresh = Vec::new();
        for &r in records {
            let per = self.adj.entry((r.a.min(r.b), r.a.max(r.b))).or_default();
            let e = per.entry(r.origin).or_insert((0, true));
            if r.seq > e.0 {
                *e = (r.seq, r.up);
                fresh.push(r);
            }
        }
        fresh
    }

    /// Adjacencies to exclude from route computation, sorted so the
    /// result never depends on hash-map iteration order.
    fn blocked_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(u16, u16)> = self
            .adj
            .iter()
            .filter(|(_, per)| per.values().any(|&(_, up)| !up))
            .map(|(&p, _)| p)
            .collect();
        pairs.sort_unstable();
        pairs
            .into_iter()
            .map(|(a, b)| (NodeId(usize::from(a)), NodeId(usize::from(b))))
            .collect()
    }

    /// Every database record, sorted, for a full sync to a revived
    /// neighbor.
    fn all_records(&self) -> Vec<LsRecord> {
        let mut pairs: Vec<_> = self.adj.iter().collect();
        pairs.sort_by_key(|&(&p, _)| p);
        let mut records = Vec::new();
        for (&(a, b), per) in pairs {
            let mut origins: Vec<(&u16, &(u32, bool))> = per.iter().collect();
            origins.sort_by_key(|&(&o, _)| o);
            for (&origin, &(seq, up)) in origins {
                records.push(LsRecord {
                    origin,
                    seq,
                    a,
                    b,
                    up,
                });
            }
        }
        records
    }
}

/// One router interface as the forwarding plane sees it.
#[derive(Debug, Clone)]
pub struct RouterIface {
    /// Medium of the attached segment (frames are re-encapsulated for
    /// it on the way out).
    pub medium: Medium,
    /// The interface's own link-layer address (used as the source of
    /// forwarded frames).
    pub eth: u64,
    /// The interface's IP address.
    pub ip: u32,
}

/// A static-routed IP forwarder: the packet-switch half of the
/// kernel-resident IP stack.
#[derive(Debug)]
pub struct IpRouter {
    ifaces: Vec<RouterIface>,
    table: RouteTable,
    /// Static IP → link-address map covering every next hop and every
    /// directly-attached destination.
    arp: HashMap<u32, u64>,
    stats: ForwarderStats,
    /// `Some` for hardened routers: the liveness/flooding/reconvergence
    /// machinery. Plain static routers carry `None` and never tick.
    control: Option<ControlPlane>,
}

impl IpRouter {
    /// Builds a forwarder from explicit interfaces, routes, and ARP
    /// entries.
    pub fn new(ifaces: Vec<RouterIface>, table: RouteTable, arp: HashMap<u32, u64>) -> Self {
        IpRouter {
            ifaces,
            table,
            arp,
            stats: ForwarderStats::default(),
            control: None,
        }
    }

    /// Builds the forwarder for one router node of a topology, with the
    /// node's computed route table and the global ARP map.
    pub fn for_node(topo: &Topology, node: pf_net::NodeId) -> Self {
        assert_eq!(topo.kind(node), NodeKind::Router, "node is not a router");
        let ifaces = topo
            .interfaces(node)
            .iter()
            .map(|i| RouterIface {
                medium: *topo.medium(i.link),
                eth: i.eth,
                ip: i.ip,
            })
            .collect();
        IpRouter::new(ifaces, topo.route_table(node).clone(), topo.arp().clone())
    }

    /// Builds a hardened forwarder for one router node: the static
    /// plane of [`for_node`](IpRouter::for_node) plus a resilience
    /// plane that probes neighbor liveness, fails over to precomputed
    /// loop-free backups the instant a neighbor dies, floods link-state
    /// updates, and reconverges over the residual topology.
    pub fn for_node_hardened(topo: &Topology, node: pf_net::NodeId, cfg: HelloConfig) -> Self {
        let mut r = IpRouter::for_node(topo, node);
        r.control = Some(ControlPlane::new(topo, node, cfg));
        r
    }

    /// The current route table (longest prefix first).
    pub fn route_table(&self) -> &RouteTable {
        &self.table
    }

    fn control_frame(
        &self,
        cp: &ControlPlane,
        iface: usize,
        dst_eth: u64,
        msg: u8,
        records: &[LsRecord],
    ) -> Option<Vec<u8>> {
        let payload = encode_control(msg, cp.node, cp.clock, records);
        let out = &self.ifaces[iface];
        frame::build(&out.medium, dst_eth, out.eth, CONTROL_ETHERTYPE, &payload).ok()
    }

    /// Unicasts `records` (chunked) to every router neighbor except
    /// those on `except` — split-horizon re-flooding.
    fn flood(
        &self,
        cp: &ControlPlane,
        records: &[LsRecord],
        except: Option<usize>,
    ) -> Vec<(usize, Vec<u8>)> {
        let mut out = Vec::new();
        for n in &cp.neighbors {
            if except == Some(n.iface) {
                continue;
            }
            for chunk in records.chunks(LSU_CHUNK) {
                if let Some(f) = self.control_frame(cp, n.iface, n.eth, MSG_LSU, chunk) {
                    out.push((n.iface, f));
                }
            }
        }
        out
    }

    /// Fast local failover: every route currently pointing at the dead
    /// neighbor switches to its precomputed strictly-downhill backup,
    /// before any flooding or recomputation happens.
    fn failover_around(&mut self, cp: &ControlPlane, dead: usize) {
        let dead_ip = cp.neighbors[dead].ip;
        let switched: Vec<Route> = self
            .table
            .routes()
            .iter()
            .filter(|r| r.next_hop == Some(dead_ip))
            .filter_map(|r| {
                cp.backups
                    .routes()
                    .iter()
                    .find(|b| b.prefix == r.prefix && b.len == r.len && b.next_hop != Some(dead_ip))
                    .copied()
            })
            .collect();
        for b in switched {
            self.table.set(b);
            self.stats.failovers += 1;
            self.stats.route_churn += 1;
            self.stats.last_route_change_ns = cp.clock.as_nanos();
        }
    }

    /// Recomputes this node's routes over the residual topology (all
    /// known-down adjacencies excluded) and installs the result,
    /// counting changed entries as churn.
    fn reconverge(&mut self, cp: &ControlPlane) {
        let blocked = cp.blocked_pairs();
        let tables = cp.topo.routes_avoiding(&blocked);
        let new = &tables[usize::from(cp.node)];
        let mut churn = 0u64;
        for r in new.routes() {
            if !self.table.routes().contains(r) {
                churn += 1;
            }
        }
        for r in self.table.routes() {
            if !new
                .routes()
                .iter()
                .any(|n| n.prefix == r.prefix && n.len == r.len)
            {
                churn += 1;
            }
        }
        self.stats.reconvergences += 1;
        if churn > 0 {
            self.stats.route_churn += churn;
            self.stats.last_route_change_ns = cp.clock.as_nanos();
            self.table = new.clone();
        }
    }

    fn run_tick(&mut self, cp: &mut ControlPlane, now: SimTime) -> Vec<(usize, Vec<u8>)> {
        // Revival grace: a tick gap longer than the dead interval means
        // we were crashed, and every liveness timer is stale. Reset them
        // instead of declaring the whole neighborhood dead at once.
        if cp.last_tick > SimTime::ZERO && now.saturating_since(cp.last_tick) > cp.cfg.dead_interval
        {
            for n in &mut cp.neighbors {
                n.last_heard = now;
            }
        }
        cp.last_tick = now;
        cp.clock = cp.clock.max(now);
        let mut out = Vec::new();
        // Hellos to every router neighbor — dead ones included; that is
        // how a healed link or revived router is re-detected.
        for i in 0..cp.neighbors.len() {
            let (iface, eth) = (cp.neighbors[i].iface, cp.neighbors[i].eth);
            if let Some(f) = self.control_frame(cp, iface, eth, MSG_HELLO, &[]) {
                self.stats.hellos_sent += 1;
                out.push((iface, f));
            }
        }
        // Dead-interval scan: silence past the configured bound kills
        // the adjacency — failover immediately, then tell the fabric.
        let mut news = Vec::new();
        for i in 0..cp.neighbors.len() {
            let (alive, heard, node) = {
                let n = &cp.neighbors[i];
                (n.alive, n.last_heard, n.node)
            };
            if alive && now.saturating_since(heard) > cp.cfg.dead_interval {
                cp.neighbors[i].alive = false;
                self.stats.neighbors_lost += 1;
                self.failover_around(cp, i);
                news.push(cp.originate(node, false));
            }
        }
        if !news.is_empty() {
            let fresh = cp.apply(&news);
            out.extend(self.flood(cp, &fresh, None));
            self.reconverge(cp);
        }
        out
    }

    fn handle_control(
        &mut self,
        cp: &mut ControlPlane,
        iface: usize,
        body: &[u8],
    ) -> Vec<(usize, Vec<u8>)> {
        self.stats.control_in += 1;
        let Some((msg, origin, sent_at, records)) = decode_control(body) else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        cp.clock = cp.clock.max(sent_at);
        let mut out = Vec::new();
        // Any control frame from a neighbor proves it alive.
        let mut revived = None;
        if let Some(i) = cp
            .neighbors
            .iter()
            .position(|n| n.node == origin && n.iface == iface)
        {
            cp.neighbors[i].last_heard = cp.clock;
            if !cp.neighbors[i].alive {
                cp.neighbors[i].alive = true;
                self.stats.neighbors_recovered += 1;
                revived = Some(i);
            }
        }
        match msg {
            MSG_HELLO => {}
            MSG_LSU => {
                let fresh = cp.apply(&records);
                if !fresh.is_empty() {
                    out.extend(self.flood(cp, &fresh, Some(iface)));
                    self.reconverge(cp);
                }
            }
            _ => self.stats.not_routable += 1,
        }
        if let Some(i) = revived {
            let peer = cp.neighbors[i].node;
            let rec = cp.originate(peer, true);
            let fresh = cp.apply(&[rec]);
            out.extend(self.flood(cp, &fresh, None));
            // Full database sync so a neighbor that was partitioned away
            // (or crashed) catches up on everything it missed.
            let (nb_iface, nb_eth) = (cp.neighbors[i].iface, cp.neighbors[i].eth);
            for chunk in cp.all_records().chunks(LSU_CHUNK) {
                if let Some(f) = self.control_frame(cp, nb_iface, nb_eth, MSG_LSU, chunk) {
                    out.push((nb_iface, f));
                }
            }
            self.reconverge(cp);
        }
        out
    }
}

impl Forwarder for IpRouter {
    fn forward(&mut self, iface: usize, frame_bytes: &[u8]) -> Vec<(usize, Vec<u8>)> {
        let in_medium = self.ifaces[iface].medium;
        let Ok(h) = frame::parse(&in_medium, frame_bytes) else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        if h.ethertype == CONTROL_ETHERTYPE {
            let Some(mut cp) = self.control.take() else {
                // A plain router has no resilience plane; control
                // traffic is just an unroutable ethertype to it.
                self.stats.not_routable += 1;
                return Vec::new();
            };
            let out = match frame::payload(&in_medium, frame_bytes) {
                Ok(body) => self.handle_control(&mut cp, iface, body),
                Err(_) => {
                    self.stats.not_routable += 1;
                    Vec::new()
                }
            };
            self.control = Some(cp);
            return out;
        }
        if h.ethertype != IP_ETHERTYPE {
            self.stats.not_routable += 1;
            return Vec::new();
        }
        let Ok(body) = frame::payload(&in_medium, frame_bytes) else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        let Some((ih, payload)) = decode_ip(body) else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        // RFC 791 discipline: a packet arriving with TTL <= 1 cannot be
        // forwarded another hop.
        if ih.ttl <= 1 {
            self.stats.ttl_expired += 1;
            return Vec::new();
        }
        let Some(route) = self.table.lookup(ih.dst).copied() else {
            self.stats.no_route += 1;
            return Vec::new();
        };
        let next_ip = route.next_hop.unwrap_or(ih.dst);
        let Some(&next_eth) = self.arp.get(&next_ip) else {
            self.stats.no_route += 1;
            return Vec::new();
        };
        let mut out_ih = ih;
        out_ih.ttl -= 1;
        let packet = encode_ip(&out_ih, payload);
        let out = &self.ifaces[route.iface];
        let Ok(out_frame) = frame::build(&out.medium, next_eth, out.eth, IP_ETHERTYPE, &packet)
        else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        self.stats.forwarded += 1;
        vec![(route.iface, out_frame)]
    }

    fn stats(&self) -> ForwarderStats {
        self.stats
    }

    fn update_route(&mut self, route: Route) -> bool {
        self.table.set(route);
        true
    }

    fn tick(&mut self, now: SimTime) -> Vec<(usize, Vec<u8>)> {
        let Some(mut cp) = self.control.take() else {
            return Vec::new();
        };
        let out = self.run_tick(&mut cp, now);
        self.control = Some(cp);
        out
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        self.control.as_ref().map(|cp| cp.cfg.hello_interval)
    }
}

/// Ids handed back by [`deploy`], indexed by topology node/link.
#[derive(Debug, Clone)]
pub struct DeployedTopology {
    /// Segment id per topology link, in link order.
    pub segments: Vec<SegmentId>,
    /// Host id per node (`None` for router nodes).
    pub hosts: Vec<Option<HostId>>,
    /// Router id per node (`None` for host nodes).
    pub routers: Vec<Option<RouterId>>,
}

impl DeployedTopology {
    /// The host id of a topology node known to be a host.
    pub fn host(&self, node: pf_net::NodeId) -> HostId {
        self.hosts[node.0].expect("node is a host")
    }

    /// The router id of a topology node known to be a router.
    pub fn router(&self, node: pf_net::NodeId) -> RouterId {
        self.routers[node.0].expect("node is a router")
    }
}

/// Materializes a [`Topology`] into `world`: one segment per link, one
/// host per host node (station on its LAN), and one router per router
/// node running an [`IpRouter`] over all its interfaces. Any
/// [`FabricSchedule`](pf_net::FabricSchedule) attached to the plan is
/// replayed against the world as scheduled router/link state flips.
pub fn deploy(topo: &Topology, world: &mut World, costs: &CostModel) -> DeployedTopology {
    deploy_with(topo, world, costs, None)
}

/// Like [`deploy`], but every router runs the hardened forwarder
/// ([`IpRouter::for_node_hardened`]): liveness probing, backup
/// failover, link-state flooding, and bounded reconvergence under the
/// given [`HelloConfig`].
pub fn deploy_hardened(
    topo: &Topology,
    world: &mut World,
    costs: &CostModel,
    cfg: HelloConfig,
) -> DeployedTopology {
    deploy_with(topo, world, costs, Some(cfg))
}

fn deploy_with(
    topo: &Topology,
    world: &mut World,
    costs: &CostModel,
    hardened: Option<HelloConfig>,
) -> DeployedTopology {
    let segments: Vec<SegmentId> = (0..topo.link_count())
        .map(|l| {
            let link = pf_net::LinkId(l);
            world.add_segment(*topo.medium(link), *topo.faults(link))
        })
        .collect();
    let mut hosts = vec![None; topo.node_count()];
    let mut routers = vec![None; topo.node_count()];
    for n in 0..topo.node_count() {
        let node = pf_net::NodeId(n);
        match topo.kind(node) {
            NodeKind::Host => {
                let i = topo.interfaces(node)[0];
                hosts[n] =
                    Some(world.add_host(topo.name(node), segments[i.link.0], i.eth, costs.clone()));
            }
            NodeKind::Router => {
                let fwd: Box<dyn Forwarder> = match hardened {
                    Some(cfg) => Box::new(IpRouter::for_node_hardened(topo, node, cfg)),
                    None => Box::new(IpRouter::for_node(topo, node)),
                };
                let stations: Vec<(SegmentId, u64)> = topo
                    .interfaces(node)
                    .iter()
                    .map(|i| (segments[i.link.0], i.eth))
                    .collect();
                routers[n] = Some(world.add_router(topo.name(node), stations, fwd, costs.clone()));
            }
        }
    }
    for ev in topo.fabric_schedule().events() {
        match ev.action {
            FabricAction::RouterDown(n) => {
                let r = routers[n.0].expect("fabric schedule names a router node");
                world.schedule_router_state(r, false, ev.at);
            }
            FabricAction::RouterUp(n) => {
                let r = routers[n.0].expect("fabric schedule names a router node");
                world.schedule_router_state(r, true, ev.at);
            }
            FabricAction::LinkDown(l) => world.schedule_link_state(segments[l.0], false, ev.at),
            FabricAction::LinkUp(l) => world.schedule_link_state(segments[l.0], true, ev.at),
        }
    }
    DeployedTopology {
        segments,
        hosts,
        routers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::IpHeader;
    use pf_net::segment::FaultModel;

    fn one_hop_router() -> (IpRouter, Medium) {
        let m = Medium::standard_10mb();
        let mut table = RouteTable::new();
        table.set(Route {
            prefix: 0x0A00_0200,
            len: 24,
            iface: 1,
            next_hop: None,
        });
        let mut arp = HashMap::new();
        arp.insert(0x0A00_0202u32, 0x22u64);
        let r = IpRouter::new(
            vec![
                RouterIface {
                    medium: m,
                    eth: 0x11,
                    ip: 0x0A00_0101,
                },
                RouterIface {
                    medium: m,
                    eth: 0x12,
                    ip: 0x0A00_0201,
                },
            ],
            table,
            arp,
        );
        (r, m)
    }

    fn ip_frame(m: &Medium, dst_eth: u64, ttl: u8, dst_ip: u32) -> Vec<u8> {
        let packet = encode_ip(
            &IpHeader {
                proto: 17,
                ttl,
                src: 0x0A00_0102,
                dst: dst_ip,
                total_len: 0,
            },
            b"payload",
        );
        frame::build(m, dst_eth, 0x33, IP_ETHERTYPE, &packet).unwrap()
    }

    #[test]
    fn forwards_with_ttl_decrement_and_rewritten_link_header() {
        let (mut r, m) = one_hop_router();
        let f = ip_frame(&m, 0x11, 30, 0x0A00_0202);
        let out = r.forward(0, &f);
        assert_eq!(out.len(), 1);
        let (iface, of) = &out[0];
        assert_eq!(*iface, 1);
        let h = frame::parse(&m, of).unwrap();
        assert_eq!(h.dst, 0x22, "delivered to the destination's eth");
        assert_eq!(h.src, 0x12, "sourced from the out interface");
        let (ih, payload) = decode_ip(frame::payload(&m, of).unwrap()).unwrap();
        assert_eq!(ih.ttl, 29, "TTL decremented");
        assert_eq!(payload, b"payload");
        assert_eq!(r.stats().forwarded, 1);
    }

    #[test]
    fn drops_on_ttl_expiry_and_missing_route() {
        let (mut r, m) = one_hop_router();
        assert!(r.forward(0, &ip_frame(&m, 0x11, 1, 0x0A00_0202)).is_empty());
        assert_eq!(r.stats().ttl_expired, 1);
        assert!(r
            .forward(0, &ip_frame(&m, 0x11, 30, 0x0B00_0001))
            .is_empty());
        assert_eq!(r.stats().no_route, 1);
        // Non-IP traffic is not routable.
        let junk = frame::build(&m, 0x11, 0x33, 0x0806, b"arp?").unwrap();
        assert!(r.forward(0, &junk).is_empty());
        assert_eq!(r.stats().not_routable, 1);
    }

    #[test]
    fn update_route_redirects_traffic() {
        let (mut r, m) = one_hop_router();
        assert!(r.update_route(Route {
            prefix: 0x0A00_0200,
            len: 24,
            iface: 0,
            next_hop: Some(0x0A00_0102),
        }));
        let mut arp = HashMap::new();
        arp.insert(0x0A00_0102u32, 0x33u64);
        r.arp.extend(arp);
        let out = r.forward(0, &ip_frame(&m, 0x11, 30, 0x0A00_0202));
        assert_eq!(out[0].0, 0, "rerouted out the updated interface");
    }

    #[test]
    fn for_node_builds_from_topology_tables() {
        let mut b = Topology::builder();
        let h1 = b.host("h1");
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let h2 = b.host("h2");
        b.link(h1, r1, Medium::standard_10mb(), FaultModel::default());
        b.link(r1, r2, Medium::standard_10mb(), FaultModel::default());
        b.link(r2, h2, Medium::standard_10mb(), FaultModel::default());
        let t = b.build();
        let mut fwd = IpRouter::for_node(&t, r1);
        let m = Medium::standard_10mb();
        let first_hop_eth = t.interfaces(r1)[0].eth;
        let f = ip_frame(&m, first_hop_eth, 30, t.ip(h2));
        let out = fwd.forward(0, &f);
        assert_eq!(out.len(), 1, "r1 forwards toward r2");
        assert_eq!(out[0].0, 1, "out the r1–r2 link");
    }

    /// Four routers in a ring, each with one host LAN. Router r_i's
    /// interfaces are (in order): toward r_{i-1}, toward r_{i+1}, host
    /// LAN — except r0, whose first two are toward r1 then r3 (link
    /// creation order).
    fn ring4() -> (Topology, [pf_net::NodeId; 4], [pf_net::NodeId; 4]) {
        let mut b = Topology::builder();
        let r: Vec<_> = (0..4).map(|i| b.router(format!("r{i}"))).collect();
        let h: Vec<_> = (0..4).map(|i| b.host(format!("h{i}"))).collect();
        for i in 0..4 {
            b.link(
                r[i],
                r[(i + 1) % 4],
                Medium::standard_10mb(),
                FaultModel::default(),
            );
        }
        for i in 0..4 {
            b.link(h[i], r[i], Medium::standard_10mb(), FaultModel::default());
        }
        (
            b.build(),
            [r[0], r[1], r[2], r[3]],
            [h[0], h[1], h[2], h[3]],
        )
    }

    fn ms(n: u64) -> SimTime {
        SimTime(n * 1_000_000)
    }

    /// A hello frame from `from` as it would arrive on `iface` of a
    /// router attached to `link`.
    fn hello_from(
        topo: &Topology,
        from: pf_net::NodeId,
        to: pf_net::NodeId,
        at: SimTime,
    ) -> Vec<u8> {
        let fi = topo
            .interfaces(from)
            .iter()
            .find(|i| topo.members(i.link).contains(&to))
            .unwrap();
        let ti = topo
            .interfaces(to)
            .iter()
            .find(|i| i.link == fi.link)
            .unwrap();
        let body = encode_control(MSG_HELLO, from.0 as u16, at, &[]);
        frame::build(
            topo.medium(fi.link),
            ti.eth,
            fi.eth,
            CONTROL_ETHERTYPE,
            &body,
        )
        .unwrap()
    }

    #[test]
    fn dead_interval_failover_floods_and_reconverges() {
        let (t, r, h) = ring4();
        // r2's interfaces: 0 → r1, 1 → r3, 2 → its host LAN.
        let mut fwd = IpRouter::for_node_hardened(&t, r[2], HelloConfig::default());
        assert_eq!(fwd.tick_interval(), Some(SimDuration::from_millis(20)));
        assert_eq!(
            fwd.route_table().lookup(t.ip(h[1])).unwrap().iface,
            0,
            "baseline: h1's LAN reached through r1"
        );
        // r3 keeps saying hello; r1 goes silent from the start.
        let mut lost_at = None;
        for tick in 1..=5u64 {
            let now = ms(20 * tick);
            let out = fwd.tick(now);
            assert!(
                out.len() >= 2,
                "every tick emits a hello per router neighbor"
            );
            if fwd.stats().neighbors_lost > 0 && lost_at.is_none() {
                lost_at = Some(now);
                assert!(
                    out.len() > 2,
                    "the death tick also floods a link-state update"
                );
            }
            let hello = hello_from(&t, r[3], r[2], now);
            fwd.forward(1, &hello);
        }
        let s = fwd.stats();
        assert_eq!(
            lost_at,
            Some(ms(80)),
            "r1 dead one tick past the 60ms bound"
        );
        assert_eq!(s.neighbors_lost, 1);
        assert!(s.failovers >= 1, "backup next-hop installed at detection");
        assert!(s.reconvergences >= 1);
        assert!(s.route_churn >= 1);
        assert_eq!(s.last_route_change_ns, ms(80).as_nanos());
        assert_eq!(
            fwd.route_table().lookup(t.ip(h[1])).unwrap().iface,
            1,
            "h1's LAN rerouted the long way around, through r3"
        );
        assert_eq!(s.hellos_sent, 10, "probing never stops, dead or alive");

        // Revival: r1 speaks again — up-LSU, database sync, reconverge.
        let out = fwd.forward(0, &hello_from(&t, r[1], r[2], ms(100)));
        let s = fwd.stats();
        assert_eq!(s.neighbors_recovered, 1);
        assert!(
            out.len() >= 3,
            "up-LSU to both neighbors plus a database sync to the revived one"
        );
        assert_eq!(
            fwd.route_table().lookup(t.ip(h[1])).unwrap().iface,
            0,
            "healed adjacency wins the route back"
        );
    }

    #[test]
    fn remote_lsu_reroutes_and_refloods_split_horizon() {
        let (t, r, h) = ring4();
        // r0's interfaces: 0 → r1, 1 → r3, 2 → its host LAN.
        let mut fwd = IpRouter::for_node_hardened(&t, r[0], HelloConfig::default());
        assert_eq!(fwd.route_table().lookup(t.ip(h[2])).unwrap().iface, 0);
        let rec = LsRecord {
            origin: r[1].0 as u16,
            seq: 1,
            a: r[1].0 as u16,
            b: r[2].0 as u16,
            up: false,
        };
        let body = encode_control(MSG_LSU, r[1].0 as u16, ms(50), &[rec]);
        let fi = t.interfaces(r[1])[0]; // r1's iface on the r0–r1 link
        let ti = t.interfaces(r[0])[0];
        let f = frame::build(t.medium(fi.link), ti.eth, fi.eth, CONTROL_ETHERTYPE, &body).unwrap();
        let out = fwd.forward(0, &f);
        assert_eq!(
            fwd.route_table().lookup(t.ip(h[2])).unwrap().iface,
            1,
            "r0 detours around the dead r1–r2 adjacency via r3"
        );
        assert_eq!(out.len(), 1, "refloods to r3 only");
        assert_eq!(
            out[0].0, 1,
            "split horizon: never back out the arrival iface"
        );
        let s = fwd.stats();
        assert_eq!((s.control_in, s.reconvergences), (1, 1));
        assert_eq!(
            s.last_route_change_ns,
            ms(50).as_nanos(),
            "stamped from the update"
        );

        // The same record again is stale: no reflood, no recompute.
        let out = fwd.forward(0, &f);
        assert!(out.is_empty());
        let s = fwd.stats();
        assert_eq!((s.control_in, s.reconvergences), (2, 1));
    }

    #[test]
    fn revival_grace_resets_liveness_timers_after_own_outage() {
        let (t, r, _h) = ring4();
        let mut fwd = IpRouter::for_node_hardened(&t, r[2], HelloConfig::default());
        fwd.forward(1, &hello_from(&t, r[3], r[2], ms(15)));
        fwd.tick(ms(20));
        // A 300ms tick gap models our own crash and restart: stale
        // timers must not condemn the whole neighborhood.
        fwd.tick(ms(320));
        assert_eq!(fwd.stats().neighbors_lost, 0, "grace reset after revival");
        // But a genuinely silent neighbor still dies afterwards.
        for tick in 17..=21u64 {
            fwd.tick(ms(20 * tick));
        }
        assert_eq!(
            fwd.stats().neighbors_lost,
            2,
            "both silent neighbors die post-grace"
        );
    }
}
