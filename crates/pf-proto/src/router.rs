//! The IP forwarding plane for topology routers, and the glue that
//! deploys a `pf_net::Topology` into a running `World`.
//!
//! `pf-net` defines the [`Forwarder`] boundary but deliberately knows
//! nothing about IP; this module supplies the implementation using the
//! same wire codecs as the kernel-resident stack ([`crate::ip`]):
//! decapsulate, TTL-check and decrement, longest-prefix-match against a
//! static [`RouteTable`], resolve the next hop through the topology's
//! static ARP map, and re-encapsulate on the outgoing medium. A router
//! node in the `World` charges `CostModel::ip_forward` per hop and
//! serializes transmissions per interface, so store-and-forward latency
//! and per-link bandwidth are modeled end to end.

use std::collections::HashMap;

use pf_kernel::{HostId, RouterId, World};
use pf_net::medium::Medium;
use pf_net::topology::{Forwarder, ForwarderStats, NodeKind, Route, RouteTable, Topology};
use pf_net::{frame, SegmentId};
use pf_sim::CostModel;

use crate::ip::{decode_ip, encode_ip, IP_ETHERTYPE};

/// One router interface as the forwarding plane sees it.
#[derive(Debug, Clone)]
pub struct RouterIface {
    /// Medium of the attached segment (frames are re-encapsulated for
    /// it on the way out).
    pub medium: Medium,
    /// The interface's own link-layer address (used as the source of
    /// forwarded frames).
    pub eth: u64,
    /// The interface's IP address.
    pub ip: u32,
}

/// A static-routed IP forwarder: the packet-switch half of the
/// kernel-resident IP stack.
#[derive(Debug)]
pub struct IpRouter {
    ifaces: Vec<RouterIface>,
    table: RouteTable,
    /// Static IP → link-address map covering every next hop and every
    /// directly-attached destination.
    arp: HashMap<u32, u64>,
    stats: ForwarderStats,
}

impl IpRouter {
    /// Builds a forwarder from explicit interfaces, routes, and ARP
    /// entries.
    pub fn new(ifaces: Vec<RouterIface>, table: RouteTable, arp: HashMap<u32, u64>) -> Self {
        IpRouter {
            ifaces,
            table,
            arp,
            stats: ForwarderStats::default(),
        }
    }

    /// Builds the forwarder for one router node of a topology, with the
    /// node's computed route table and the global ARP map.
    pub fn for_node(topo: &Topology, node: pf_net::NodeId) -> Self {
        assert_eq!(topo.kind(node), NodeKind::Router, "node is not a router");
        let ifaces = topo
            .interfaces(node)
            .iter()
            .map(|i| RouterIface {
                medium: *topo.medium(i.link),
                eth: i.eth,
                ip: i.ip,
            })
            .collect();
        IpRouter::new(ifaces, topo.route_table(node).clone(), topo.arp().clone())
    }

    /// The current route table (longest prefix first).
    pub fn route_table(&self) -> &RouteTable {
        &self.table
    }
}

impl Forwarder for IpRouter {
    fn forward(&mut self, iface: usize, frame_bytes: &[u8]) -> Vec<(usize, Vec<u8>)> {
        let in_medium = self.ifaces[iface].medium;
        let Ok(h) = frame::parse(&in_medium, frame_bytes) else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        if h.ethertype != IP_ETHERTYPE {
            self.stats.not_routable += 1;
            return Vec::new();
        }
        let Ok(body) = frame::payload(&in_medium, frame_bytes) else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        let Some((ih, payload)) = decode_ip(body) else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        // RFC 791 discipline: a packet arriving with TTL <= 1 cannot be
        // forwarded another hop.
        if ih.ttl <= 1 {
            self.stats.ttl_expired += 1;
            return Vec::new();
        }
        let Some(route) = self.table.lookup(ih.dst).copied() else {
            self.stats.no_route += 1;
            return Vec::new();
        };
        let next_ip = route.next_hop.unwrap_or(ih.dst);
        let Some(&next_eth) = self.arp.get(&next_ip) else {
            self.stats.no_route += 1;
            return Vec::new();
        };
        let mut out_ih = ih;
        out_ih.ttl -= 1;
        let packet = encode_ip(&out_ih, payload);
        let out = &self.ifaces[route.iface];
        let Ok(out_frame) = frame::build(&out.medium, next_eth, out.eth, IP_ETHERTYPE, &packet)
        else {
            self.stats.not_routable += 1;
            return Vec::new();
        };
        self.stats.forwarded += 1;
        vec![(route.iface, out_frame)]
    }

    fn stats(&self) -> ForwarderStats {
        self.stats
    }

    fn update_route(&mut self, route: Route) -> bool {
        self.table.set(route);
        true
    }
}

/// Ids handed back by [`deploy`], indexed by topology node/link.
#[derive(Debug, Clone)]
pub struct DeployedTopology {
    /// Segment id per topology link, in link order.
    pub segments: Vec<SegmentId>,
    /// Host id per node (`None` for router nodes).
    pub hosts: Vec<Option<HostId>>,
    /// Router id per node (`None` for host nodes).
    pub routers: Vec<Option<RouterId>>,
}

impl DeployedTopology {
    /// The host id of a topology node known to be a host.
    pub fn host(&self, node: pf_net::NodeId) -> HostId {
        self.hosts[node.0].expect("node is a host")
    }

    /// The router id of a topology node known to be a router.
    pub fn router(&self, node: pf_net::NodeId) -> RouterId {
        self.routers[node.0].expect("node is a router")
    }
}

/// Materializes a [`Topology`] into `world`: one segment per link, one
/// host per host node (station on its LAN), and one router per router
/// node running an [`IpRouter`] over all its interfaces.
pub fn deploy(topo: &Topology, world: &mut World, costs: &CostModel) -> DeployedTopology {
    let segments: Vec<SegmentId> = (0..topo.link_count())
        .map(|l| {
            let link = pf_net::LinkId(l);
            world.add_segment(*topo.medium(link), *topo.faults(link))
        })
        .collect();
    let mut hosts = vec![None; topo.node_count()];
    let mut routers = vec![None; topo.node_count()];
    for n in 0..topo.node_count() {
        let node = pf_net::NodeId(n);
        match topo.kind(node) {
            NodeKind::Host => {
                let i = topo.interfaces(node)[0];
                hosts[n] =
                    Some(world.add_host(topo.name(node), segments[i.link.0], i.eth, costs.clone()));
            }
            NodeKind::Router => {
                let stations: Vec<(SegmentId, u64)> = topo
                    .interfaces(node)
                    .iter()
                    .map(|i| (segments[i.link.0], i.eth))
                    .collect();
                routers[n] = Some(world.add_router(
                    topo.name(node),
                    stations,
                    Box::new(IpRouter::for_node(topo, node)),
                    costs.clone(),
                ));
            }
        }
    }
    DeployedTopology {
        segments,
        hosts,
        routers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::IpHeader;
    use pf_net::segment::FaultModel;

    fn one_hop_router() -> (IpRouter, Medium) {
        let m = Medium::standard_10mb();
        let mut table = RouteTable::new();
        table.set(Route {
            prefix: 0x0A00_0200,
            len: 24,
            iface: 1,
            next_hop: None,
        });
        let mut arp = HashMap::new();
        arp.insert(0x0A00_0202u32, 0x22u64);
        let r = IpRouter::new(
            vec![
                RouterIface {
                    medium: m,
                    eth: 0x11,
                    ip: 0x0A00_0101,
                },
                RouterIface {
                    medium: m,
                    eth: 0x12,
                    ip: 0x0A00_0201,
                },
            ],
            table,
            arp,
        );
        (r, m)
    }

    fn ip_frame(m: &Medium, dst_eth: u64, ttl: u8, dst_ip: u32) -> Vec<u8> {
        let packet = encode_ip(
            &IpHeader {
                proto: 17,
                ttl,
                src: 0x0A00_0102,
                dst: dst_ip,
                total_len: 0,
            },
            b"payload",
        );
        frame::build(m, dst_eth, 0x33, IP_ETHERTYPE, &packet).unwrap()
    }

    #[test]
    fn forwards_with_ttl_decrement_and_rewritten_link_header() {
        let (mut r, m) = one_hop_router();
        let f = ip_frame(&m, 0x11, 30, 0x0A00_0202);
        let out = r.forward(0, &f);
        assert_eq!(out.len(), 1);
        let (iface, of) = &out[0];
        assert_eq!(*iface, 1);
        let h = frame::parse(&m, of).unwrap();
        assert_eq!(h.dst, 0x22, "delivered to the destination's eth");
        assert_eq!(h.src, 0x12, "sourced from the out interface");
        let (ih, payload) = decode_ip(frame::payload(&m, of).unwrap()).unwrap();
        assert_eq!(ih.ttl, 29, "TTL decremented");
        assert_eq!(payload, b"payload");
        assert_eq!(r.stats().forwarded, 1);
    }

    #[test]
    fn drops_on_ttl_expiry_and_missing_route() {
        let (mut r, m) = one_hop_router();
        assert!(r.forward(0, &ip_frame(&m, 0x11, 1, 0x0A00_0202)).is_empty());
        assert_eq!(r.stats().ttl_expired, 1);
        assert!(r
            .forward(0, &ip_frame(&m, 0x11, 30, 0x0B00_0001))
            .is_empty());
        assert_eq!(r.stats().no_route, 1);
        // Non-IP traffic is not routable.
        let junk = frame::build(&m, 0x11, 0x33, 0x0806, b"arp?").unwrap();
        assert!(r.forward(0, &junk).is_empty());
        assert_eq!(r.stats().not_routable, 1);
    }

    #[test]
    fn update_route_redirects_traffic() {
        let (mut r, m) = one_hop_router();
        assert!(r.update_route(Route {
            prefix: 0x0A00_0200,
            len: 24,
            iface: 0,
            next_hop: Some(0x0A00_0102),
        }));
        let mut arp = HashMap::new();
        arp.insert(0x0A00_0102u32, 0x33u64);
        r.arp.extend(arp);
        let out = r.forward(0, &ip_frame(&m, 0x11, 30, 0x0A00_0202));
        assert_eq!(out[0].0, 0, "rerouted out the updated interface");
    }

    #[test]
    fn for_node_builds_from_topology_tables() {
        let mut b = Topology::builder();
        let h1 = b.host("h1");
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let h2 = b.host("h2");
        b.link(h1, r1, Medium::standard_10mb(), FaultModel::default());
        b.link(r1, r2, Medium::standard_10mb(), FaultModel::default());
        b.link(r2, h2, Medium::standard_10mb(), FaultModel::default());
        let t = b.build();
        let mut fwd = IpRouter::for_node(&t, r1);
        let m = Medium::standard_10mb();
        let first_hop_eth = t.interfaces(r1)[0].eth;
        let f = ip_frame(&m, first_hop_eth, 30, t.ip(h2));
        let out = fwd.forward(0, &f);
        assert_eq!(out.len(), 1, "r1 forwards toward r2");
        assert_eq!(out[0].0, 1, "out the r1–r2 link");
    }
}
