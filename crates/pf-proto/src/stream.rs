//! Bulk-stream workload processes over kernel TCP (tables 6-3 and 6-6).
//!
//! "Table 6-6 shows the rates at which the two implementations can
//! transfer bulk data from process to process": these apps are the kernel
//! TCP side of that comparison (the BSP side is
//! [`crate::bsp_app::BspSenderApp`]/[`crate::bsp_app::BspReceiverApp`]).

use crate::ip::ops;
use pf_kernel::app::App;
use pf_kernel::types::SockId;
use pf_kernel::world::ProcCtx;
use pf_sim::time::{SimDuration, SimTime};

/// Bytes handed to the kernel per `write(2)`.
pub const WRITE_CHUNK: usize = 16 * 1024;

/// A process that connects and streams `total_bytes` through kernel TCP.
pub struct TcpBulkSender {
    dst_ip: u32,
    dst_port: u16,
    dst_eth: u64,
    mss: usize,
    total: usize,
    sent: usize,
    sock: Option<SockId>,
    /// Per-chunk data-source cost (zero for memory-to-memory; table 6-6's
    /// FTP variant charges a disk read here).
    pub source_cost_per_chunk: SimDuration,
    /// Connect time.
    pub started_at: Option<SimTime>,
    /// When the final byte was handed to the kernel and acknowledged.
    pub finished_at: Option<SimTime>,
}

impl TcpBulkSender {
    /// Creates a sender for `total_bytes` to `dst_port` at
    /// `dst_ip`/`dst_eth`; `mss = 0` uses the kernel default.
    pub fn new(dst_ip: u32, dst_port: u16, dst_eth: u64, total_bytes: usize, mss: usize) -> Self {
        TcpBulkSender {
            dst_ip,
            dst_port,
            dst_eth,
            mss,
            total: total_bytes,
            sent: 0,
            sock: None,
            source_cost_per_chunk: SimDuration::ZERO,
            started_at: None,
            finished_at: None,
        }
    }

    /// Adds a per-chunk source cost (e.g. reading from a disk file).
    pub fn with_source_cost(mut self, cost: SimDuration) -> Self {
        self.source_cost_per_chunk = cost;
        self
    }

    fn write_next(&mut self, k: &mut ProcCtx<'_>) {
        let sock = self.sock.expect("connected");
        if self.sent >= self.total {
            k.ksock_request(sock, ops::TCP_CLOSE, Vec::new(), [0; 4]);
            self.finished_at = Some(k.now());
            return;
        }
        let n = (self.total - self.sent).min(WRITE_CHUNK);
        if self.source_cost_per_chunk > SimDuration::ZERO {
            k.compute("user:source", self.source_cost_per_chunk);
        }
        let chunk: Vec<u8> = (self.sent..self.sent + n)
            .map(|i| (i % 251) as u8)
            .collect();
        self.sent += n;
        k.ksock_request(sock, ops::TCP_SEND, chunk, [0; 4]);
    }
}

impl App for TcpBulkSender {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("ip").expect("ip stack registered");
        self.sock = Some(sock);
        self.started_at = Some(k.now());
        k.ksock_request(
            sock,
            ops::TCP_CONNECT,
            Vec::new(),
            [
                u64::from(self.dst_ip),
                u64::from(self.dst_port),
                self.dst_eth,
                self.mss as u64,
            ],
        );
    }

    fn on_socket(
        &mut self,
        _sock: SockId,
        op: u32,
        _data: Vec<u8>,
        _meta: [u64; 4],
        k: &mut ProcCtx<'_>,
    ) {
        match op {
            ops::TCP_CONNECTED | ops::TCP_SENDABLE => self.write_next(k),
            _ => {}
        }
    }
}

/// A process that accepts one stream and counts delivered bytes.
pub struct TcpBulkReceiver {
    port: u16,
    sock: Option<SockId>,
    /// Per-byte consumer cost (display, disk write…).
    pub per_byte_cost: SimDuration,
    /// Bytes delivered in order.
    pub bytes: u64,
    /// First-data time.
    pub first_byte_at: Option<SimTime>,
    /// Stream-close time.
    pub closed_at: Option<SimTime>,
}

impl TcpBulkReceiver {
    /// Creates a receiver listening on `port`.
    pub fn new(port: u16) -> Self {
        TcpBulkReceiver {
            port,
            sock: None,
            per_byte_cost: SimDuration::ZERO,
            bytes: 0,
            first_byte_at: None,
            closed_at: None,
        }
    }

    /// Adds a per-byte consumer cost.
    pub fn with_per_byte_cost(mut self, cost: SimDuration) -> Self {
        self.per_byte_cost = cost;
        self
    }

    /// Whether the stream closed.
    pub fn is_done(&self) -> bool {
        self.closed_at.is_some()
    }

    /// Achieved throughput in bytes/second, if complete.
    pub fn throughput_bps(&self) -> Option<f64> {
        let secs = self.closed_at?.since(self.first_byte_at?).as_secs_f64();
        (secs > 0.0).then(|| self.bytes as f64 / secs)
    }
}

impl App for TcpBulkReceiver {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("ip").expect("ip stack registered");
        self.sock = Some(sock);
        k.ksock_request(
            sock,
            ops::TCP_LISTEN,
            Vec::new(),
            [u64::from(self.port), 0, 0, 0],
        );
    }

    fn on_socket(
        &mut self,
        _sock: SockId,
        op: u32,
        data: Vec<u8>,
        _meta: [u64; 4],
        k: &mut ProcCtx<'_>,
    ) {
        match op {
            ops::TCP_RECV => {
                if self.first_byte_at.is_none() {
                    self.first_byte_at = Some(k.now());
                }
                self.bytes += data.len() as u64;
                if self.per_byte_cost > SimDuration::ZERO {
                    k.compute(
                        "user:consume",
                        SimDuration::from_nanos(self.per_byte_cost.as_nanos() * data.len() as u64),
                    );
                }
            }
            ops::TCP_CLOSED => self.closed_at = Some(k.now()),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::KernelIp;
    use pf_kernel::types::HostId;
    use pf_kernel::world::World;
    use pf_net::medium::Medium;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    fn tcp_world(faults: FaultModel) -> (World, HostId, HostId) {
        let mut w = World::new(31);
        let seg = w.add_segment(Medium::standard_10mb(), faults);
        let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
        w.register_protocol(a, Box::new(KernelIp::new(10)));
        w.register_protocol(b, Box::new(KernelIp::new(11)));
        (w, a, b)
    }

    fn run_bulk(total: usize, mss: usize, faults: FaultModel) -> (f64, World, HostId) {
        let (mut w, a, b) = tcp_world(faults);
        let rx = w.spawn(b, Box::new(TcpBulkReceiver::new(5000)));
        w.spawn(a, Box::new(TcpBulkSender::new(11, 5000, 0x0B, total, mss)));
        w.run_until(SimTime(600 * 1_000_000_000));
        let r = w.app_ref::<TcpBulkReceiver>(b, rx).unwrap();
        assert!(r.is_done(), "stream closed ({} bytes)", r.bytes);
        assert_eq!(r.bytes as usize, total, "exact delivery");
        let tput = r.throughput_bps().unwrap();
        (tput, w, b)
    }

    #[test]
    fn bulk_transfer_delivers_and_lands_near_paper_rate() {
        let (tput, _, _) = run_bulk(256 * 1024, 0, FaultModel::default());
        let kbs = tput / 1024.0;
        // §6.4: kernel TCP moved 222 KB/s process-to-process.
        assert!((100.0..400.0).contains(&kbs), "TCP bulk {kbs:.0} KB/s");
    }

    #[test]
    fn small_mss_roughly_halves_throughput() {
        // §6.4: "if TCP is forced to use the smaller packet size, its
        // performance is cut in half."
        let (big, _, _) = run_bulk(128 * 1024, 0, FaultModel::default());
        let (small, _, _) = run_bulk(128 * 1024, 514, FaultModel::default());
        let ratio = big / small;
        assert!((1.5..3.0).contains(&ratio), "MSS ratio {ratio:.2}");
    }

    #[test]
    fn survives_loss() {
        let (tput, w, b) = run_bulk(
            64 * 1024,
            0,
            FaultModel {
                loss: 0.03,
                duplication: 0.0,
                ..FaultModel::default()
            },
        );
        assert!(tput > 0.0);
        let ip = w.protocol_ref::<KernelIp>(b).unwrap();
        let _ = ip;
    }

    #[test]
    fn profiler_sees_tcp_routines() {
        let (_, w, b) = run_bulk(64 * 1024, 0, FaultModel::default());
        let prof = w.profiler(b);
        assert!(prof.stats("tcp:input").calls > 0);
        assert!(prof.stats("ip:input").calls > 0);
        assert!(prof.stats("tcp:cksum").calls > 0, "TCP checksums all data");
    }
}
