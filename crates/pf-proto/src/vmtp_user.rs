//! The packet-filter (user-level) VMTP implementation (§5.2, §6.3).
//!
//! "The first implementation used the packet filter. The user-level
//! implementation allowed rapid development of the protocol specification
//! through experimentation with easily-modified code."
//!
//! [`VmtpUserClient`] and [`VmtpUserServer`] embed the pure machines from
//! [`crate::vmtp`] in ordinary user processes: every protocol packet —
//! including acks, retries, and duplicate suppression — crosses the
//! kernel/user boundary, which is precisely the §6.3 penalty being
//! measured. The client can also take its *received* packets from a pipe
//! instead of its own port, reproducing the interposed user-level
//! demultiplexer of table 6-5.

use crate::vmtp::{
    ClientMachine, ServerMachine, VEffect, VmtpPacket, SEGMENT_BYTES, VMTP_PACE_TOKEN,
    VMTP_RTO_TOKEN,
};
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PipeId, PortConfig, ReadError, ReadMode, RecvPacket, TimerId};
use pf_kernel::world::ProcCtx;
use pf_net::medium::Medium;
use pf_sim::time::{SimDuration, SimTime};

/// Kernel-side input-queue bound for VMTP ports — the historical packet
/// filter defaulted to a small per-port queue, and its overflow under
/// unbatched reads is what makes table 6-4's batching effect so large.
pub const VMTP_PORT_QUEUE: usize = 3;

/// VMTP retransmission timeout — above a full response group's service
/// time (so an in-progress group never triggers a spurious retry) but
/// tight enough that queue-overflow losses are recovered quickly.
pub const VMTP_RTO: SimDuration = SimDuration::from_millis(150);

/// User-level VMTP protocol processing per packet handled (header
/// crunching, transaction table, group bookkeeping — work a kernel
/// implementation does in its input routine).
pub const USER_VMTP_COST: SimDuration = SimDuration::from_micros(700);

/// Cost of the server's file-system read for one request: a `read(2)` from
/// the buffer cache ("the same segment of a file, which therefore stayed
/// in the file system buffer cache", §6.3), excluding the per-byte copy,
/// which is charged separately.
pub const FS_READ_FIXED: SimDuration = SimDuration::from_micros(1_200);

/// Per-byte cost of copying file data out of the buffer cache.
pub const FS_READ_PER_BYTE_NS: u64 = 1_000;

/// The file-read service semantics shared by every VMTP variant in this
/// reproduction: `opcode` is the number of bytes to read; the response is
/// that many bytes of the cached segment.
pub fn file_read_response(opcode: u32) -> Vec<u8> {
    let n = (opcode as usize).min(SEGMENT_BYTES);
    (0..n).map(|i| (i % 239) as u8).collect()
}

/// The cost of serving one file-read request of `n` bytes.
pub fn fs_read_cost(n: usize) -> SimDuration {
    FS_READ_FIXED + SimDuration::from_nanos(FS_READ_PER_BYTE_NS * n as u64)
}

/// How the client receives its packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientInput {
    /// Directly from its own packet-filter port (kernel demultiplexing).
    PacketFilter,
    /// From a pipe fed by a separate demultiplexing process (table 6-5).
    Pipe,
}

/// A sequential-transaction workload definition.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Number of transactions to run.
    pub ops: u64,
    /// Bytes requested per transaction (0 = the minimal operation of
    /// table 6-2; [`SEGMENT_BYTES`] = the bulk reads of table 6-3).
    pub response_bytes: u32,
}

/// The user-level VMTP client process.
pub struct VmtpUserClient {
    entity: u32,
    machine: ClientMachine,
    workload: Workload,
    input: ClientInput,
    batch: bool,
    checksummed: bool,
    /// Queue depth at which the kernel should notify this client of
    /// backpressure; the machine answers by raising its pacing delay.
    backpressure_mark: Option<usize>,
    /// Cost charged per received response payload byte (consumer
    /// processing), as [`crate::bsp_app::BspReceiverApp::with_per_byte_cost`].
    per_byte_cost: SimDuration,
    fd: Option<Fd>,
    timer: Option<TimerId>,
    /// Completed transactions.
    pub completed: u64,
    /// Response payload bytes received across all transactions.
    pub bytes: u64,
    /// Received frames discarded (bad checksum, truncated, not VMTP).
    pub discards: u64,
    /// Time the first transaction was issued.
    pub started_at: Option<SimTime>,
    /// Time the last transaction completed.
    pub finished_at: Option<SimTime>,
    /// Time the machine gave up on a transaction, if it did (the workload
    /// stops there).
    pub failed_at: Option<SimTime>,
}

impl VmtpUserClient {
    /// Creates a client that runs `workload` against `server_entity` at
    /// data-link address `server_eth`.
    pub fn new(entity: u32, server_entity: u32, server_eth: u64, workload: Workload) -> Self {
        VmtpUserClient {
            entity,
            machine: ClientMachine::new(entity, server_entity, server_eth, VMTP_RTO),
            workload,
            input: ClientInput::PacketFilter,
            batch: true,
            checksummed: false,
            backpressure_mark: None,
            per_byte_cost: SimDuration::ZERO,
            fd: None,
            timer: None,
            completed: 0,
            bytes: 0,
            discards: 0,
            started_at: None,
            finished_at: None,
            failed_at: None,
        }
    }

    /// Sends checksummed VMTP packets and relies on the wire checksum to
    /// reject corrupt responses (the chaos experiments; the paper's
    /// implementations did not checksum).
    pub fn with_checksums(mut self) -> Self {
        self.checksummed = true;
        self
    }

    /// Overrides the machine's retry policy (backoff cap, give-up
    /// threshold).
    pub fn with_retry_policy(mut self, cap: pf_sim::time::SimDuration, max_retries: u32) -> Self {
        self.machine.set_retry_policy(cap, max_retries);
        self
    }

    /// Transactions the machine abandoned.
    pub fn machine_giveups(&self) -> u64 {
        self.machine.giveups
    }

    /// Receive via a demultiplexing process and pipe instead (table 6-5).
    pub fn via_pipe(mut self) -> Self {
        self.input = ClientInput::Pipe;
        self
    }

    /// Asks the kernel to notify this client when its port queue reaches
    /// `mark` packets; the machine responds by pacing its transactions.
    pub fn with_backpressure_mark(mut self, mark: usize) -> Self {
        self.backpressure_mark = Some(mark);
        self
    }

    /// Backpressure notifications the machine has honored.
    pub fn machine_backpressure_events(&self) -> u64 {
        self.machine.backpressure_events
    }

    /// Sets the per-byte consumer cost charged for received response
    /// payload (writing the segment out, checksumming it, displaying
    /// it…).
    pub fn with_per_byte_cost(mut self, cost: SimDuration) -> Self {
        self.per_byte_cost = cost;
        self
    }

    /// Disables received-packet batching (table 6-4's ablation).
    pub fn without_batching(mut self) -> Self {
        self.batch = false;
        self
    }

    /// Whether the whole workload completed.
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Mean elapsed time per operation, if complete.
    pub fn per_op(&self) -> Option<SimDuration> {
        let start = self.started_at?;
        let end = self.finished_at?;
        Some(SimDuration::from_nanos(
            end.since(start).as_nanos() / self.workload.ops.max(1),
        ))
    }

    /// Bulk data rate in bytes/second, if complete.
    pub fn throughput_bps(&self) -> Option<f64> {
        let start = self.started_at?;
        let end = self.finished_at?;
        let secs = end.since(start).as_secs_f64();
        (secs > 0.0).then(|| self.bytes as f64 / secs)
    }

    /// Retries performed by the protocol machine.
    pub fn machine_retries(&self) -> u64 {
        self.machine.retries
    }

    /// The filter this client's port (or its demultiplexer) should use.
    pub fn filter(&self) -> pf_filter::program::FilterProgram {
        VmtpPacket::entity_filter(10, self.entity)
    }

    fn apply(&mut self, fx: Vec<VEffect>, k: &mut ProcCtx<'_>) {
        let medium = Medium::standard_10mb();
        let (_, my_eth) = k.link_info();
        for e in fx {
            match e {
                VEffect::Send(pkt, eth_dst) => {
                    k.compute("user:vmtp", USER_VMTP_COST);
                    let f = pkt.encode_frame_opts(&medium, eth_dst, my_eth, self.checksummed);
                    let _ = k.pf_write(self.fd.expect("port open"), &f);
                }
                VEffect::SetTimer(d, token) => {
                    if let Some(t) = self.timer.take() {
                        k.cancel_timer(t);
                    }
                    self.timer = Some(k.set_timer(d, token));
                }
                VEffect::CancelTimer(_) => {
                    if let Some(t) = self.timer.take() {
                        k.cancel_timer(t);
                    }
                }
                VEffect::Failed { .. } => {
                    // Retry exhaustion: stop the workload and record when.
                    self.failed_at = Some(k.now());
                }
                VEffect::Complete { data, .. } => {
                    self.completed += 1;
                    self.bytes += data.len() as u64;
                    if self.completed >= self.workload.ops {
                        self.finished_at = Some(k.now());
                    } else {
                        let pace = self.machine.pacing_delay();
                        if pace > SimDuration::ZERO {
                            // Backpressured: delay the next transaction
                            // instead of re-filling the saturated queue.
                            k.set_timer(pace, VMTP_PACE_TOKEN);
                        } else {
                            let fx = self
                                .machine
                                .invoke(self.workload.response_bytes, Vec::new());
                            self.apply(fx, k);
                        }
                    }
                }
                VEffect::DeliverRequest { .. } => unreachable!("client machine"),
            }
        }
    }

    fn on_frame(&mut self, bytes: &[u8], k: &mut ProcCtx<'_>) {
        k.compute("user:vmtp", USER_VMTP_COST);
        let medium = Medium::standard_10mb();
        match VmtpPacket::decode_frame(&medium, bytes) {
            Some((pkt, _src)) => {
                if self.per_byte_cost > SimDuration::ZERO && !pkt.data.is_empty() {
                    let total = SimDuration::from_nanos(
                        self.per_byte_cost.as_nanos() * pkt.data.len() as u64,
                    );
                    k.compute("user:consume", total);
                }
                let fx = self.machine.on_packet(&pkt);
                self.apply(fx, k);
            }
            None => self.discards += 1,
        }
    }
}

impl App for VmtpUserClient {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        match self.input {
            ClientInput::PacketFilter => {
                k.pf_set_filter(fd, VmtpPacket::entity_filter(10, self.entity));
                k.pf_configure(
                    fd,
                    PortConfig {
                        read_mode: if self.batch {
                            ReadMode::Batch
                        } else {
                            ReadMode::Single
                        },
                        max_queue: VMTP_PORT_QUEUE,
                        backpressure_mark: self.backpressure_mark,
                        ..Default::default()
                    },
                );
                k.pf_read(fd);
            }
            ClientInput::Pipe => {
                // Transmit-only port; reception arrives via the pipe.
            }
        }
        self.fd = Some(fd);
        self.started_at = Some(k.now());
        let fx = self
            .machine
            .invoke(self.workload.response_bytes, Vec::new());
        self.apply(fx, k);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        for p in packets {
            self.on_frame(&p.bytes, k);
        }
        k.pf_read(fd);
    }

    fn on_pipe_data(&mut self, _pipe: PipeId, data: Vec<u8>, k: &mut ProcCtx<'_>) {
        self.on_frame(&data, k);
    }

    fn on_timer(&mut self, token: u64, k: &mut ProcCtx<'_>) {
        if token == VMTP_PACE_TOKEN {
            // The backpressure pacing delay elapsed: issue the next
            // transaction (unless the workload ended meanwhile).
            if self.finished_at.is_none() && self.failed_at.is_none() && !self.machine.busy() {
                let fx = self
                    .machine
                    .invoke(self.workload.response_bytes, Vec::new());
                self.apply(fx, k);
            }
            return;
        }
        self.timer = None;
        if token == VMTP_RTO_TOKEN {
            let fx = self.machine.on_timer(token);
            self.apply(fx, k);
        }
    }

    fn on_backpressure(&mut self, _fd: Fd, _depth: usize, _k: &mut ProcCtx<'_>) {
        self.machine.on_backpressure();
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// The user-level VMTP file-read server process.
pub struct VmtpUserServer {
    entity: u32,
    machine: ServerMachine,
    batch: bool,
    checksummed: bool,
    fd: Option<Fd>,
    /// Requests served (handler invocations; duplicates excluded).
    pub served: u64,
    /// Received frames discarded (bad checksum, truncated, not VMTP).
    pub discards: u64,
}

impl VmtpUserServer {
    /// Creates a server for `entity`.
    pub fn new(entity: u32) -> Self {
        VmtpUserServer {
            entity,
            machine: ServerMachine::new(entity),
            batch: true,
            checksummed: false,
            fd: None,
            served: 0,
            discards: 0,
        }
    }

    /// Disables received-packet batching.
    pub fn without_batching(mut self) -> Self {
        self.batch = false;
        self
    }

    /// Sends checksummed VMTP packets (see
    /// [`VmtpUserClient::with_checksums`]).
    pub fn with_checksums(mut self) -> Self {
        self.checksummed = true;
        self
    }

    fn apply(&mut self, fx: Vec<VEffect>, k: &mut ProcCtx<'_>) {
        let medium = Medium::standard_10mb();
        let (_, my_eth) = k.link_info();
        for e in fx {
            match e {
                VEffect::Send(pkt, eth_dst) => {
                    k.compute("user:vmtp", USER_VMTP_COST);
                    let f = pkt.encode_frame_opts(&medium, eth_dst, my_eth, self.checksummed);
                    let _ = k.pf_write(self.fd.expect("port open"), &f);
                }
                VEffect::DeliverRequest {
                    client,
                    client_eth,
                    trans,
                    opcode,
                    ..
                } => {
                    self.served += 1;
                    let response = file_read_response(opcode);
                    k.compute("user:fsread", fs_read_cost(response.len()));
                    let fx = self.machine.respond(client, client_eth, trans, response);
                    self.apply(fx, k);
                }
                VEffect::SetTimer(..) | VEffect::CancelTimer(_) => {}
                VEffect::Complete { .. } | VEffect::Failed { .. } => {
                    unreachable!("server machine")
                }
            }
        }
    }
}

impl App for VmtpUserServer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, VmtpPacket::entity_filter(10, self.entity));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: if self.batch {
                    ReadMode::Batch
                } else {
                    ReadMode::Single
                },
                max_queue: VMTP_PORT_QUEUE,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let medium = Medium::standard_10mb();
        for p in packets {
            k.compute("user:vmtp", USER_VMTP_COST);
            match VmtpPacket::decode_frame(&medium, &p.bytes) {
                Some((pkt, eth_src)) => {
                    let fx = self.machine.on_packet(&pkt, eth_src);
                    self.apply(fx, k);
                }
                None => self.discards += 1,
            }
        }
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// The interposed user-level demultiplexing process of table 6-5: receives
/// packets matching a filter from its own packet-filter port and relays
/// them, one pipe write per packet, to a destination process.
pub struct DemuxProcess {
    filter: pf_filter::program::FilterProgram,
    target: pf_kernel::types::ProcId,
    batch: bool,
    max_queue: usize,
    fd: Option<Fd>,
    pipe: Option<PipeId>,
    /// Packets relayed.
    pub relayed: u64,
}

impl DemuxProcess {
    /// Creates a demultiplexer that relays packets matching `filter` to
    /// `target`.
    pub fn new(
        filter: pf_filter::program::FilterProgram,
        target: pf_kernel::types::ProcId,
    ) -> Self {
        DemuxProcess {
            filter,
            target,
            batch: true,
            max_queue: 64,
            fd: None,
            pipe: None,
            relayed: 0,
        }
    }

    /// Disables received-packet batching.
    pub fn without_batching(mut self) -> Self {
        self.batch = false;
        self
    }

    /// Sets the kernel-side input-queue bound for the demultiplexer's port.
    pub fn with_queue(mut self, frames: usize) -> Self {
        self.max_queue = frames;
        self
    }
}

impl App for DemuxProcess {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, self.filter.clone());
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: if self.batch {
                    ReadMode::Batch
                } else {
                    ReadMode::Single
                },
                max_queue: self.max_queue,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        self.pipe = Some(k.pipe_to(self.target));
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        for p in packets {
            self.relayed += 1;
            k.pipe_write(self.pipe.expect("pipe created"), p.bytes);
        }
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_kernel::types::{HostId, ProcId};
    use pf_kernel::world::World;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    const SERVER_ENTITY: u32 = 0x20;
    const CLIENT_ENTITY: u32 = 0x10;
    const SERVER_ETH: u64 = 0x0B;

    fn world() -> (World, HostId, HostId) {
        let mut w = World::new(11);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let c = w.add_host("client", seg, 0x0A, CostModel::microvax_ii());
        let s = w.add_host("server", seg, SERVER_ETH, CostModel::microvax_ii());
        (w, c, s)
    }

    fn run_client(
        mut w: World,
        c: HostId,
        client: VmtpUserClient,
        cap_secs: u64,
    ) -> (World, HostId, ProcId) {
        let p = w.spawn(c, Box::new(client));
        w.run_until(SimTime(cap_secs * 1_000_000_000));
        (w, c, p)
    }

    #[test]
    fn minimal_transactions_complete() {
        let (mut w, c, s) = world();
        w.spawn(s, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
        let client = VmtpUserClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops: 20,
                response_bytes: 0,
            },
        );
        let (w, c, p) = run_client(w, c, client, 30);
        let app = w.app_ref::<VmtpUserClient>(c, p).unwrap();
        assert!(app.is_done(), "completed {}", app.completed);
        let per_op = app.per_op().unwrap();
        // §6.3 measured 14.7 ms per minimal operation for the
        // packet-filter implementation; the band here is generous and the
        // bench pins it tighter.
        assert!(
            (5.0..40.0).contains(&per_op.as_millis_f64()),
            "per-op {per_op}"
        );
    }

    #[test]
    fn bulk_segment_reads_complete() {
        let (mut w, c, s) = world();
        w.spawn(s, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
        let client = VmtpUserClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops: 8,
                response_bytes: SEGMENT_BYTES as u32,
            },
        );
        let (w, c, p) = run_client(w, c, client, 120);
        let app = w.app_ref::<VmtpUserClient>(c, p).unwrap();
        assert!(app.is_done());
        assert_eq!(app.bytes, 8 * SEGMENT_BYTES as u64);
        let tput = app.throughput_bps().unwrap() / 1024.0;
        assert!((30.0..400.0).contains(&tput), "throughput {tput:.0} KB/s");
    }

    #[test]
    fn transactions_survive_loss() {
        let mut w = World::new(13);
        let seg = w.add_segment(
            Medium::standard_10mb(),
            FaultModel {
                loss: 0.05,
                duplication: 0.0,
                ..FaultModel::default()
            },
        );
        let c = w.add_host("client", seg, 0x0A, CostModel::microvax_ii());
        let s = w.add_host("server", seg, SERVER_ETH, CostModel::microvax_ii());
        w.spawn(s, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
        let client = VmtpUserClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops: 5,
                response_bytes: 4096,
            },
        );
        let p = w.spawn(c, Box::new(client));
        w.run_until(SimTime(120 * 1_000_000_000));
        let app = w.app_ref::<VmtpUserClient>(c, p).unwrap();
        assert!(
            app.is_done(),
            "finished despite loss ({} done)",
            app.completed
        );
        assert_eq!(app.bytes, 5 * 4096);
        assert!(app.machine.retries > 0, "loss forced retries");
    }

    /// Acceptance: a backpressured VMTP client converges instead of
    /// retry-storming. Unbatched bulk reads overflow the 3-packet port
    /// queue every response group; with a backpressure mark the kernel's
    /// signal raises the machine's pacing delay, spacing transactions so
    /// leftover response segments drain before the next burst lands.
    #[test]
    fn backpressured_client_paces_and_converges() {
        let run = |mark: Option<usize>| {
            let (mut w, c, s) = world();
            w.spawn(s, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
            // A slow consumer (2 µs/byte) cannot drain a response group at
            // arrival rate with unbatched reads: the 3-packet queue
            // overflows and lost segments force whole-group retries.
            let mut client = VmtpUserClient::new(
                CLIENT_ENTITY,
                SERVER_ENTITY,
                SERVER_ETH,
                Workload {
                    ops: 12,
                    response_bytes: SEGMENT_BYTES as u32,
                },
            )
            .without_batching()
            .with_per_byte_cost(SimDuration::from_micros(2));
            if let Some(m) = mark {
                client = client.with_backpressure_mark(m);
            }
            let p = w.spawn(c, Box::new(client));
            w.run_until(SimTime(600 * 1_000_000_000));
            let app = w.app_ref::<VmtpUserClient>(c, p).unwrap();
            assert!(app.is_done(), "completed {} (mark {mark:?})", app.completed);
            assert_eq!(app.bytes, 12 * SEGMENT_BYTES as u64);
            (
                app.machine_retries(),
                app.machine_backpressure_events(),
                app.machine.pacing_delay(),
                app.per_op().unwrap(),
                w.counters(c).backpressure_signals,
            )
        };

        let (storm_retries, _, _, storm_per_op, storm_signals) = run(None);
        let (paced_retries, paced_events, paced_pace, paced_per_op, paced_signals) = run(Some(2));

        // Unpaced: every response group overruns the 3-packet queue and
        // lost segments must be retried.
        assert!(storm_retries > 0, "overflow forces retries");
        assert_eq!(storm_signals, 0);

        // Paced: the client honors the kernel's signal, the pace settles
        // (one raise per transaction, halved per completion) instead of
        // ratcheting to the cap, and convergence costs neither retries
        // nor unbounded latency.
        assert!(paced_signals > 0, "kernel signaled the mark crossing");
        assert!(paced_events > 0, "client honored the signal");
        assert!(
            paced_retries <= storm_retries,
            "pacing did not add retries: {paced_retries} vs {storm_retries}"
        );
        assert!(
            paced_pace <= VMTP_RTO,
            "pace converged near rto/2, not the cap: {paced_pace}"
        );
        assert!(
            paced_per_op.as_nanos() < storm_per_op.as_nanos() * 3 / 2,
            "bounded latency: {paced_per_op} vs {storm_per_op}"
        );
    }

    #[test]
    fn demux_process_path_works_and_costs_more() {
        // Direct delivery.
        let (mut w1, c1, s1) = world();
        w1.spawn(s1, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
        let direct = VmtpUserClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops: 10,
                response_bytes: 0,
            },
        );
        let (w1, c1, p1) = run_client(w1, c1, direct, 60);
        let direct_per_op = w1
            .app_ref::<VmtpUserClient>(c1, p1)
            .unwrap()
            .per_op()
            .unwrap();

        // Via an interposed demultiplexing process.
        let (mut w2, c2, s2) = world();
        w2.spawn(s2, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
        let client = VmtpUserClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops: 10,
                response_bytes: 0,
            },
        )
        .via_pipe();
        let filter = client.filter();
        let p2 = w2.spawn(c2, Box::new(client));
        let d = w2.spawn(c2, Box::new(DemuxProcess::new(filter, p2)));
        w2.run_until(SimTime(60 * 1_000_000_000));
        let app = w2.app_ref::<VmtpUserClient>(c2, p2).unwrap();
        assert!(app.is_done());
        let demux_per_op = app.per_op().unwrap();
        assert!(w2.app_ref::<DemuxProcess>(c2, d).unwrap().relayed >= 10);

        // Table 6-5: user-level demultiplexing adds ~20% latency for
        // minimal operations.
        assert!(
            demux_per_op > direct_per_op,
            "demux {demux_per_op} vs direct {direct_per_op}"
        );
        let ratio = demux_per_op.as_nanos() as f64 / direct_per_op.as_nanos() as f64;
        assert!(
            ratio < 2.0,
            "small-message penalty is modest, got {ratio:.2}"
        );
    }
}
