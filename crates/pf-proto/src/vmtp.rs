//! VMTP — Cheriton's Versatile Message Transaction Protocol (§5.2, §6.3).
//!
//! The paper's most direct comparison: "The only interesting protocol for
//! which there is both a packet-filter based implementation and a
//! kernel-resident implementation is VMTP … while there are minor
//! differences in the actual protocols implemented … they follow
//! essentially the same pattern of packet transport."
//!
//! We make that literally true: this module holds the wire format and the
//! *pure* client/server transaction machines; `vmtp_user` embeds them in
//! user processes over the packet filter, and `vmtp_kernel` embeds the
//! very same machines in a kernel-resident protocol module. The packet
//! pattern on the wire is identical — only where the domain crossings
//! happen differs, which is exactly what tables 6-2/6-3 measure.
//!
//! Transaction shape: a client *invokes* an operation on a server entity;
//! the request is a single packet; the response is a *packet group* of up
//! to [`MAX_GROUP`] packets (a 16 KByte segment, as in the paper's
//! file-read workload). The response acknowledges the request; the client
//! acks the group, and recovers missing group members with a selective
//! retry mask.

use pf_net::frame;
use pf_net::medium::Medium;
use pf_sim::time::SimDuration;
use std::collections::HashMap;

/// Ethernet type for VMTP (V-system era encapsulation, directly over the
/// data link).
pub const VMTP_ETHERTYPE: u16 = 0x805C;

/// VMTP wire header length in bytes (after the data-link header).
pub const VMTP_HEADER: usize = 24;

/// Payload bytes per packet.
pub const DATA_PER_PACKET: usize = 1024;

/// Maximum packets in a response group (one 16 KByte VMTP segment + slop).
pub const MAX_GROUP: usize = 32;

/// A VMTP segment: the paper's bulk test repeatedly reads one 16 KByte
/// file segment.
pub const SEGMENT_BYTES: usize = 16 * 1024;

/// Client retransmission timer token.
pub const VMTP_RTO_TOKEN: u64 = 0x7319;

/// Client backpressure-pacing timer token (delays the next transaction
/// after a kernel backpressure notification).
pub const VMTP_PACE_TOKEN: u64 = 0x7A3E;

/// Header flag bit: the body carries a trailing 16-bit checksum.
///
/// The paper's VMTP implementations "do not" checksum (§6.3), so plain
/// bodies stay byte-identical to the original wire format and the flag is
/// opt-in: the chaos experiments turn it on to survive injected bit flips.
pub const FLAG_CHECKSUM: u8 = 0x01;

/// One's-complement add-and-left-cycle checksum over `b` (the same
/// add-and-rotate family Pup uses), never the all-ones sentinel.
pub fn vmtp_checksum(b: &[u8]) -> u16 {
    let mut sum: u16 = 0;
    let mut i = 0;
    while i < b.len() {
        let hi = b[i] as u16;
        let lo = if i + 1 < b.len() { b[i + 1] as u16 } else { 0 };
        let word = (hi << 8) | lo;
        let (s, carry) = sum.overflowing_add(word);
        sum = s.wrapping_add(u16::from(carry));
        sum = sum.rotate_left(1);
        i += 2;
    }
    if sum == 0xFFFF {
        0
    } else {
        sum
    }
}

/// Packet kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmtpType {
    /// Client → server invocation.
    Request,
    /// Server → client response-group member.
    Response,
    /// Client → server group acknowledgment (transaction complete).
    Ack,
    /// Client → server selective retransmission request (missing mask in
    /// `opcode`).
    Retry,
}

impl VmtpType {
    fn code(self) -> u8 {
        match self {
            VmtpType::Request => 1,
            VmtpType::Response => 2,
            VmtpType::Ack => 3,
            VmtpType::Retry => 4,
        }
    }

    fn decode(code: u8) -> Option<Self> {
        Some(match code {
            1 => VmtpType::Request,
            2 => VmtpType::Response,
            3 => VmtpType::Ack,
            4 => VmtpType::Retry,
            _ => return None,
        })
    }
}

/// A decoded VMTP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmtpPacket {
    /// Destination entity (demultiplexing key; at a fixed offset so the
    /// packet filter can test it).
    pub dst_entity: u32,
    /// Source entity.
    pub src_entity: u32,
    /// Transaction identifier.
    pub trans: u32,
    /// Packet kind.
    pub ptype: VmtpType,
    /// Index of this packet within its group.
    pub index: u8,
    /// Number of packets in the group.
    pub count: u8,
    /// Operation code (requests), or retry mask (retries).
    pub opcode: u32,
    /// Payload.
    pub data: Vec<u8>,
}

impl VmtpPacket {
    /// Encodes the VMTP body (header + data), no data-link header.
    pub fn encode_body(&self) -> Vec<u8> {
        self.encode_body_opts(false)
    }

    /// Encodes the body, optionally appending a trailing 16-bit checksum
    /// (and setting [`FLAG_CHECKSUM`] so receivers verify it).
    pub fn encode_body_opts(&self, checksummed: bool) -> Vec<u8> {
        let mut b = Vec::with_capacity(VMTP_HEADER + self.data.len() + 2);
        b.extend_from_slice(&self.dst_entity.to_be_bytes());
        b.extend_from_slice(&self.src_entity.to_be_bytes());
        b.extend_from_slice(&self.trans.to_be_bytes());
        b.push(self.ptype.code());
        b.push(self.index);
        b.push(self.count);
        b.push(if checksummed { FLAG_CHECKSUM } else { 0 });
        b.extend_from_slice(&self.opcode.to_be_bytes());
        b.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        b.extend_from_slice(&self.data);
        if checksummed {
            let sum = vmtp_checksum(&b);
            b.extend_from_slice(&sum.to_be_bytes());
        }
        b
    }

    /// Encodes as a complete frame on `medium`.
    pub fn encode_frame(&self, medium: &Medium, eth_dst: u64, eth_src: u64) -> Vec<u8> {
        self.encode_frame_opts(medium, eth_dst, eth_src, false)
    }

    /// Encodes as a complete frame, optionally checksummed.
    pub fn encode_frame_opts(
        &self,
        medium: &Medium,
        eth_dst: u64,
        eth_src: u64,
        checksummed: bool,
    ) -> Vec<u8> {
        frame::build(
            medium,
            eth_dst,
            eth_src,
            VMTP_ETHERTYPE,
            &self.encode_body_opts(checksummed),
        )
        .expect("VMTP packet fits the medium")
    }

    /// Decodes a VMTP body. Bodies carrying [`FLAG_CHECKSUM`] are
    /// verified; a corrupt or truncated checksummed body decodes to
    /// `None` (the frame is discarded, retransmission recovers it).
    pub fn decode_body(b: &[u8]) -> Option<VmtpPacket> {
        if b.len() < VMTP_HEADER {
            return None;
        }
        let dlen = u32::from_be_bytes([b[20], b[21], b[22], b[23]]) as usize;
        if b.len() < VMTP_HEADER + dlen {
            return None;
        }
        if b[15] & FLAG_CHECKSUM != 0 {
            let end = VMTP_HEADER + dlen;
            let tail = b.get(end..end + 2)?;
            let want = u16::from_be_bytes([tail[0], tail[1]]);
            if vmtp_checksum(&b[..end]) != want {
                return None;
            }
        }
        Some(VmtpPacket {
            dst_entity: u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            src_entity: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            trans: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
            ptype: VmtpType::decode(b[12])?,
            index: b[13],
            count: b[14],
            opcode: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
            data: b[VMTP_HEADER..VMTP_HEADER + dlen].to_vec(),
        })
    }

    /// Decodes a complete frame, returning the packet and the data-link
    /// source address (for replying).
    pub fn decode_frame(medium: &Medium, frame_bytes: &[u8]) -> Option<(VmtpPacket, u64)> {
        let h = frame::parse(medium, frame_bytes).ok()?;
        if h.ethertype != VMTP_ETHERTYPE {
            return None;
        }
        let body = frame::payload(medium, frame_bytes).ok()?;
        Some((Self::decode_body(body)?, h.src))
    }

    /// A packet-filter program accepting VMTP packets for `entity` on the
    /// 10 Mb Ethernet (type at word 6; dst entity at words 7-8).
    pub fn entity_filter(priority: u8, entity: u32) -> pf_filter::program::FilterProgram {
        use pf_filter::program::Assembler;
        use pf_filter::word::BinaryOp;
        Assembler::new(priority)
            .pushword(8)
            .pushlit_op(BinaryOp::Cand, (entity & 0xFFFF) as u16)
            .pushword(7)
            .pushlit_op(BinaryOp::Cand, (entity >> 16) as u16)
            .pushword(6)
            .pushlit_op(BinaryOp::Eq, VMTP_ETHERTYPE)
            .finish()
    }
}

/// An action a VMTP machine asks its embedding to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VEffect {
    /// Transmit to the given data-link address.
    Send(VmtpPacket, u64),
    /// Arm the retransmission timer.
    SetTimer(SimDuration, u64),
    /// Cancel the retransmission timer.
    CancelTimer(u64),
    /// Client: the current transaction completed with this response.
    Complete {
        /// Transaction id.
        trans: u32,
        /// Reassembled response data.
        data: Vec<u8>,
    },
    /// Client: the current transaction was abandoned after exhausting
    /// `max_retries` backed-off retransmissions.
    Failed {
        /// Transaction id.
        trans: u32,
    },
    /// Server: deliver this request to the service (it answers via
    /// [`ServerMachine::respond`]).
    DeliverRequest {
        /// Requesting client entity.
        client: u32,
        /// The client's data-link address.
        client_eth: u64,
        /// Transaction id.
        trans: u32,
        /// Operation code.
        opcode: u32,
        /// Request payload.
        data: Vec<u8>,
    },
}

/// The client side of sequential VMTP transactions.
#[derive(Debug)]
pub struct ClientMachine {
    entity: u32,
    server_entity: u32,
    server_eth: u64,
    rto: SimDuration,
    /// Upper bound on the backed-off retransmission timeout.
    rto_cap: SimDuration,
    /// Consecutive unanswered retransmissions before giving up.
    max_retries: u32,
    /// Consecutive timeouts without progress (the backoff exponent).
    backoff: u32,
    /// Pacing delay the embedding should insert before the next
    /// transaction: doubled (capped at `rto_cap`) by each kernel
    /// backpressure notification, halved by each completed transaction —
    /// the transactional analogue of a window, so a saturated server port
    /// sees a converging request rate instead of a retry storm.
    pace: SimDuration,
    /// Whether the current transaction has already raised the pace —
    /// like TCP's one-window-reduction-per-RTT rule, every crossing of
    /// the mark within one response group is a single overload episode.
    paced_this_trans: bool,
    next_trans: u32,
    pending: Option<PendingTrans>,
    /// Requests retransmitted and retry masks sent.
    pub retries: u64,
    /// Transactions completed.
    pub completed: u64,
    /// Transactions abandoned after retry exhaustion.
    pub giveups: u64,
    /// Backpressure notifications honored (each raises the pacing delay).
    pub backpressure_events: u64,
}

#[derive(Debug)]
struct PendingTrans {
    trans: u32,
    request: VmtpPacket,
    received: Vec<Option<Vec<u8>>>,
    got_any: bool,
}

impl ClientMachine {
    /// Creates a client entity talking to `server_entity` at `server_eth`.
    pub fn new(entity: u32, server_entity: u32, server_eth: u64, rto: SimDuration) -> Self {
        ClientMachine {
            entity,
            server_entity,
            server_eth,
            rto,
            rto_cap: SimDuration::from_nanos(rto.as_nanos().saturating_mul(16)),
            max_retries: 16,
            backoff: 0,
            pace: SimDuration::ZERO,
            paced_this_trans: false,
            next_trans: 1,
            pending: None,
            retries: 0,
            completed: 0,
            giveups: 0,
            backpressure_events: 0,
        }
    }

    /// Overrides the retry policy (backoff cap and give-up threshold).
    pub fn with_retry_policy(mut self, rto_cap: SimDuration, max_retries: u32) -> Self {
        self.set_retry_policy(rto_cap, max_retries);
        self
    }

    /// In-place variant of [`Self::with_retry_policy`] for embeddings.
    pub fn set_retry_policy(&mut self, rto_cap: SimDuration, max_retries: u32) {
        self.rto_cap = rto_cap;
        self.max_retries = max_retries;
    }

    /// The currently effective (backed-off, capped) retransmission
    /// timeout.
    pub fn current_rto(&self) -> SimDuration {
        crate::bsp::backed_off(self.rto, self.rto_cap, self.backoff)
    }

    /// This client's entity identifier.
    pub fn entity(&self) -> u32 {
        self.entity
    }

    /// Whether a transaction is outstanding.
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    /// The pacing delay the embedding should insert before its next
    /// [`Self::invoke`]; zero when the client is unthrottled.
    pub fn pacing_delay(&self) -> SimDuration {
        self.pace
    }

    /// Responds to a kernel backpressure notification (this client's port
    /// queue crossed its high-water mark): raises the pacing delay —
    /// `rto/2` from a standing start, doubling thereafter, capped at
    /// `rto_cap`. Completed transactions halve it back down, so the
    /// request rate converges on the service rate.
    pub fn on_backpressure(&mut self) {
        self.backpressure_events += 1;
        // One pace increase per transaction, however many times the
        // queue re-crosses the mark while a response group drains.
        if self.paced_this_trans {
            return;
        }
        self.paced_this_trans = true;
        let next = if self.pace == SimDuration::ZERO {
            self.rto.as_nanos() / 2
        } else {
            self.pace.as_nanos().saturating_mul(2)
        };
        self.pace = SimDuration::from_nanos(next.min(self.rto_cap.as_nanos()));
    }

    /// Starts a transaction. Transactions are sequential: panics if one is
    /// outstanding (the paper's workloads are strictly request-response).
    pub fn invoke(&mut self, opcode: u32, data: Vec<u8>) -> Vec<VEffect> {
        assert!(self.pending.is_none(), "sequential transactions only");
        self.paced_this_trans = false;
        let trans = self.next_trans;
        self.next_trans += 1;
        let request = VmtpPacket {
            dst_entity: self.server_entity,
            src_entity: self.entity,
            trans,
            ptype: VmtpType::Request,
            index: 0,
            count: 1,
            opcode,
            data,
        };
        self.pending = Some(PendingTrans {
            trans,
            request: request.clone(),
            received: Vec::new(),
            got_any: false,
        });
        vec![
            VEffect::Send(request, self.server_eth),
            VEffect::SetTimer(self.rto, VMTP_RTO_TOKEN),
        ]
    }

    /// Handles a packet addressed to this entity.
    pub fn on_packet(&mut self, pkt: &VmtpPacket) -> Vec<VEffect> {
        let Some(p) = self.pending.as_mut() else {
            return Vec::new();
        };
        if pkt.ptype != VmtpType::Response || pkt.trans != p.trans {
            return Vec::new();
        }
        let count = usize::from(pkt.count).clamp(1, MAX_GROUP);
        if p.received.len() != count {
            p.received = vec![None; count];
        }
        p.got_any = true;
        // A response member for the live transaction is forward progress:
        // restore the base RTO.
        self.backoff = 0;
        let idx = usize::from(pkt.index);
        if idx < count && p.received[idx].is_none() {
            p.received[idx] = Some(pkt.data.clone());
        }
        if p.received.iter().all(Option::is_some) {
            let p = self.pending.take().expect("checked above");
            self.completed += 1;
            // Forward progress decays the backpressure pacing.
            self.pace = SimDuration::from_nanos(self.pace.as_nanos() / 2);
            let mut data = Vec::new();
            for seg in p.received.into_iter().flatten() {
                data.extend(seg);
            }
            let ack = VmtpPacket {
                dst_entity: self.server_entity,
                src_entity: self.entity,
                trans: p.trans,
                ptype: VmtpType::Ack,
                index: 0,
                count: 1,
                opcode: 0,
                data: Vec::new(),
            };
            vec![
                VEffect::CancelTimer(VMTP_RTO_TOKEN),
                VEffect::Send(ack, self.server_eth),
                VEffect::Complete {
                    trans: p.trans,
                    data,
                },
            ]
        } else {
            Vec::new()
        }
    }

    /// Handles the retransmission timer: resend the request if nothing
    /// arrived, otherwise request exactly the missing group members.
    pub fn on_timer(&mut self, token: u64) -> Vec<VEffect> {
        if token != VMTP_RTO_TOKEN {
            return Vec::new();
        }
        let Some(p) = self.pending.as_ref() else {
            return Vec::new();
        };
        if self.backoff >= self.max_retries {
            // Exhausted: abandon the transaction instead of retrying
            // forever across a dead or partitioned wire.
            let trans = p.trans;
            self.pending = None;
            self.backoff = 0;
            self.giveups += 1;
            return vec![VEffect::Failed { trans }];
        }
        self.backoff += 1;
        self.retries += 1;
        let pkt = if !p.got_any {
            p.request.clone()
        } else {
            let mut mask: u32 = 0;
            for (i, seg) in p.received.iter().enumerate() {
                if seg.is_none() {
                    mask |= 1 << i;
                }
            }
            VmtpPacket {
                dst_entity: self.server_entity,
                src_entity: self.entity,
                trans: p.trans,
                ptype: VmtpType::Retry,
                index: 0,
                count: 1,
                opcode: mask,
                data: Vec::new(),
            }
        };
        vec![
            VEffect::Send(pkt, self.server_eth),
            VEffect::SetTimer(self.current_rto(), VMTP_RTO_TOKEN),
        ]
    }
}

/// The server side: delivers requests up, segments and caches responses.
#[derive(Debug, Default)]
pub struct ServerMachine {
    entity: u32,
    /// Cached response group per client entity (covers duplicate requests
    /// and retry masks), plus the transaction it answers.
    cache: HashMap<u32, (u32, Vec<VmtpPacket>, u64)>,
    /// Duplicate requests answered from the cache.
    pub dup_requests: u64,
}

impl ServerMachine {
    /// Creates a server machine for `entity`.
    pub fn new(entity: u32) -> Self {
        ServerMachine {
            entity,
            cache: HashMap::new(),
            dup_requests: 0,
        }
    }

    /// Handles a packet addressed to this entity. `eth_src` is the
    /// data-link source, kept for replies.
    pub fn on_packet(&mut self, pkt: &VmtpPacket, eth_src: u64) -> Vec<VEffect> {
        match pkt.ptype {
            VmtpType::Request => {
                if let Some((trans, group, eth)) = self.cache.get(&pkt.src_entity) {
                    if *trans == pkt.trans {
                        // Duplicate request: replay the whole group.
                        self.dup_requests += 1;
                        let eth = *eth;
                        return group
                            .clone()
                            .into_iter()
                            .map(|g| VEffect::Send(g, eth))
                            .collect();
                    }
                }
                vec![VEffect::DeliverRequest {
                    client: pkt.src_entity,
                    client_eth: eth_src,
                    trans: pkt.trans,
                    opcode: pkt.opcode,
                    data: pkt.data.clone(),
                }]
            }
            VmtpType::Retry => {
                let Some((trans, group, eth)) = self.cache.get(&pkt.src_entity) else {
                    return Vec::new();
                };
                if *trans != pkt.trans {
                    return Vec::new();
                }
                let eth = *eth;
                group
                    .iter()
                    .filter(|g| pkt.opcode & (1 << u32::from(g.index)) != 0)
                    .cloned()
                    .map(|g| VEffect::Send(g, eth))
                    .collect()
            }
            VmtpType::Ack => {
                if let Some((trans, _, _)) = self.cache.get(&pkt.src_entity) {
                    if *trans == pkt.trans {
                        self.cache.remove(&pkt.src_entity);
                    }
                }
                Vec::new()
            }
            VmtpType::Response => Vec::new(),
        }
    }

    /// Answers a previously delivered request: segments `data` into a
    /// packet group, caches it, and sends it.
    pub fn respond(
        &mut self,
        client: u32,
        client_eth: u64,
        trans: u32,
        data: Vec<u8>,
    ) -> Vec<VEffect> {
        let count = data.len().div_ceil(DATA_PER_PACKET).max(1);
        assert!(
            count <= MAX_GROUP,
            "response exceeds one VMTP segment group"
        );
        let mut group = Vec::with_capacity(count);
        for i in 0..count {
            let lo = i * DATA_PER_PACKET;
            let hi = (lo + DATA_PER_PACKET).min(data.len());
            group.push(VmtpPacket {
                dst_entity: client,
                src_entity: self.entity,
                trans,
                ptype: VmtpType::Response,
                index: i as u8,
                count: count as u8,
                opcode: 0,
                data: data[lo.min(data.len())..hi].to_vec(),
            });
        }
        self.cache
            .insert(client, (trans, group.clone(), client_eth));
        group
            .into_iter()
            .map(|g| VEffect::Send(g, client_eth))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Medium {
        Medium::standard_10mb()
    }

    #[test]
    fn wire_round_trip() {
        let p = VmtpPacket {
            dst_entity: 0x1234_5678,
            src_entity: 0x9ABC_DEF0,
            trans: 42,
            ptype: VmtpType::Response,
            index: 3,
            count: 16,
            opcode: 7,
            data: vec![1, 2, 3, 4],
        };
        let f = p.encode_frame(&medium(), 0x0B, 0x0A);
        let (q, src) = VmtpPacket::decode_frame(&medium(), &f).unwrap();
        assert_eq!(p, q);
        assert_eq!(src, 0x0A);
    }

    #[test]
    fn entity_filter_matches() {
        use pf_filter::interp::CheckedInterpreter;
        use pf_filter::packet::PacketView;
        let interp = CheckedInterpreter::default();
        let filt = VmtpPacket::entity_filter(10, 0x0001_0002);
        let mk = |dst: u32| {
            VmtpPacket {
                dst_entity: dst,
                src_entity: 9,
                trans: 1,
                ptype: VmtpType::Request,
                index: 0,
                count: 1,
                opcode: 0,
                data: vec![],
            }
            .encode_frame(&medium(), 0x0B, 0x0A)
        };
        assert!(interp.eval(&filt, PacketView::new(&mk(0x0001_0002))));
        assert!(!interp.eval(&filt, PacketView::new(&mk(0x0001_0003))));
        assert!(!interp.eval(&filt, PacketView::new(&mk(0x0002_0002))));
    }

    #[test]
    fn minimal_transaction() {
        let mut c = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100));
        let mut s = ServerMachine::new(2);
        let fx = c.invoke(0, Vec::new());
        let VEffect::Send(req, _) = &fx[0] else {
            panic!("request first")
        };
        let fx = s.on_packet(req, 0x0A);
        let VEffect::DeliverRequest {
            client,
            trans,
            client_eth,
            ..
        } = &fx[0]
        else {
            panic!("deliver")
        };
        let fx = s.respond(*client, *client_eth, *trans, Vec::new());
        assert_eq!(fx.len(), 1, "zero-byte response is one packet");
        let VEffect::Send(resp, _) = &fx[0] else {
            panic!()
        };
        let fx = c.on_packet(resp);
        assert!(fx
            .iter()
            .any(|e| matches!(e, VEffect::Complete { data, .. } if data.is_empty())));
        assert!(fx
            .iter()
            .any(|e| matches!(e, VEffect::Send(p, _) if p.ptype == VmtpType::Ack)));
        assert!(!c.busy());
    }

    #[test]
    fn segment_read_reassembles() {
        let mut c = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100));
        let mut s = ServerMachine::new(2);
        let payload: Vec<u8> = (0..SEGMENT_BYTES).map(|i| (i % 241) as u8).collect();
        let fx = c.invoke(1, Vec::new());
        let VEffect::Send(req, _) = &fx[0] else {
            panic!()
        };
        let _ = s.on_packet(req, 0x0A);
        let group = s.respond(1, 0x0A, req.trans, payload.clone());
        assert_eq!(group.len(), SEGMENT_BYTES / DATA_PER_PACKET);
        let mut complete = None;
        for e in group {
            let VEffect::Send(p, _) = e else { continue };
            for fx in c.on_packet(&p) {
                if let VEffect::Complete { data, .. } = fx {
                    complete = Some(data);
                }
            }
        }
        assert_eq!(complete.unwrap(), payload);
    }

    #[test]
    fn out_of_order_group_reassembles() {
        let mut c = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100));
        let mut s = ServerMachine::new(2);
        let payload = vec![9u8; 3 * DATA_PER_PACKET];
        let fx = c.invoke(1, Vec::new());
        let VEffect::Send(req, _) = &fx[0] else {
            panic!()
        };
        let _ = s.on_packet(req, 0x0A);
        let mut group: Vec<VmtpPacket> = s
            .respond(1, 0x0A, req.trans, payload.clone())
            .into_iter()
            .filter_map(|e| match e {
                VEffect::Send(p, _) => Some(p),
                _ => None,
            })
            .collect();
        group.reverse();
        let mut complete = None;
        for p in &group {
            for fx in c.on_packet(p) {
                if let VEffect::Complete { data, .. } = fx {
                    complete = Some(data);
                }
            }
        }
        assert_eq!(complete.unwrap(), payload);
    }

    #[test]
    fn lost_group_member_recovered_by_retry_mask() {
        let mut c = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100));
        let mut s = ServerMachine::new(2);
        let payload = vec![7u8; 4 * DATA_PER_PACKET];
        let fx = c.invoke(1, Vec::new());
        let VEffect::Send(req, _) = &fx[0] else {
            panic!()
        };
        let _ = s.on_packet(req, 0x0A);
        let group: Vec<VmtpPacket> = s
            .respond(1, 0x0A, req.trans, payload.clone())
            .into_iter()
            .filter_map(|e| match e {
                VEffect::Send(p, _) => Some(p),
                _ => None,
            })
            .collect();
        // Deliver all but member 2.
        for p in group.iter().filter(|p| p.index != 2) {
            assert!(c.on_packet(p).is_empty());
        }
        // Timeout: client asks for exactly member 2.
        let fx = c.on_timer(VMTP_RTO_TOKEN);
        let retry = fx
            .iter()
            .find_map(|e| match e {
                VEffect::Send(p, _) if p.ptype == VmtpType::Retry => Some(p.clone()),
                _ => None,
            })
            .expect("retry sent");
        assert_eq!(retry.opcode, 1 << 2);
        let resent: Vec<VmtpPacket> = s
            .on_packet(&retry, 0x0A)
            .into_iter()
            .filter_map(|e| match e {
                VEffect::Send(p, _) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(resent.len(), 1);
        assert_eq!(resent[0].index, 2);
        let fx = c.on_packet(&resent[0]);
        assert!(fx.iter().any(|e| matches!(e, VEffect::Complete { .. })));
        assert_eq!(c.retries, 1);
    }

    #[test]
    fn duplicate_request_replayed_from_cache() {
        let mut s = ServerMachine::new(2);
        let req = VmtpPacket {
            dst_entity: 2,
            src_entity: 1,
            trans: 5,
            ptype: VmtpType::Request,
            index: 0,
            count: 1,
            opcode: 0,
            data: vec![],
        };
        let _ = s.on_packet(&req, 0x0A);
        let _ = s.respond(1, 0x0A, 5, vec![1u8; 10]);
        // Lost response: the client retransmits its request.
        let fx = s.on_packet(&req, 0x0A);
        assert_eq!(fx.len(), 1, "cached group replayed, handler not re-run");
        assert_eq!(s.dup_requests, 1);
    }

    #[test]
    fn ack_clears_cache() {
        let mut s = ServerMachine::new(2);
        let req = VmtpPacket {
            dst_entity: 2,
            src_entity: 1,
            trans: 5,
            ptype: VmtpType::Request,
            index: 0,
            count: 1,
            opcode: 0,
            data: vec![],
        };
        let _ = s.on_packet(&req, 0x0A);
        let _ = s.respond(1, 0x0A, 5, vec![1u8; 10]);
        let ack = VmtpPacket {
            ptype: VmtpType::Ack,
            ..req.clone()
        };
        let _ = s.on_packet(&ack, 0x0A);
        // A duplicate request after the ack is treated as new.
        let fx = s.on_packet(&req, 0x0A);
        assert!(matches!(fx[0], VEffect::DeliverRequest { .. }));
    }

    #[test]
    fn request_retransmitted_before_any_response() {
        let mut c = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100));
        let _ = c.invoke(9, vec![1, 2]);
        let fx = c.on_timer(VMTP_RTO_TOKEN);
        let VEffect::Send(p, _) = &fx[0] else {
            panic!()
        };
        assert_eq!(p.ptype, VmtpType::Request);
        assert_eq!(p.opcode, 9);
        assert_eq!(p.data, vec![1, 2]);
    }

    #[test]
    fn checksummed_round_trip_and_corruption_rejection() {
        let p = VmtpPacket {
            dst_entity: 0x1234_5678,
            src_entity: 0x9ABC_DEF0,
            trans: 42,
            ptype: VmtpType::Response,
            index: 3,
            count: 16,
            opcode: 7,
            data: vec![1, 2, 3, 4, 5],
        };
        let body = p.encode_body_opts(true);
        assert_eq!(body.len(), VMTP_HEADER + 5 + 2);
        assert_eq!(VmtpPacket::decode_body(&body).unwrap(), p);
        // Any single bit flip anywhere in the body must be caught (the
        // flags byte itself is covered: clearing the checksum flag changes
        // the advertised length check or simply skips verification of a
        // body whose tail bytes then confuse nothing — test the data and
        // header regions explicitly).
        for byte in 0..body.len() {
            for bit in 0..8 {
                let mut m = body.clone();
                m[byte] ^= 1 << bit;
                let decoded = VmtpPacket::decode_body(&m);
                if let Some(q) = decoded {
                    // The only survivable flips are ones that clear the
                    // checksum flag itself (reverting to the unchecksummed
                    // format, where the tail reads as slack) — the packet
                    // content must still match in that case.
                    assert_eq!((byte, q.data), (15, p.data.clone()));
                }
            }
        }
    }

    #[test]
    fn truncated_checksummed_bodies_never_decode_or_panic() {
        let p = VmtpPacket {
            dst_entity: 1,
            src_entity: 2,
            trans: 3,
            ptype: VmtpType::Request,
            index: 0,
            count: 1,
            opcode: 9,
            data: vec![7; 100],
        };
        let body = p.encode_body_opts(true);
        for len in 0..body.len() {
            assert!(
                VmtpPacket::decode_body(&body[..len]).is_none(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn client_backs_off_and_gives_up() {
        let mut c = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100))
            .with_retry_policy(SimDuration::from_millis(350), 3);
        let _ = c.invoke(0, Vec::new());
        let mut rtos = Vec::new();
        for _ in 0..3 {
            let fx = c.on_timer(VMTP_RTO_TOKEN);
            rtos.extend(fx.iter().filter_map(|e| match e {
                VEffect::SetTimer(d, _) => Some(d.as_micros()),
                _ => None,
            }));
        }
        assert_eq!(rtos, vec![200_000, 350_000, 350_000], "doubling, capped");
        let fx = c.on_timer(VMTP_RTO_TOKEN);
        assert!(matches!(fx[..], [VEffect::Failed { trans: 1 }]));
        assert!(!c.busy(), "abandoned transaction cleared");
        assert_eq!(c.giveups, 1);
        // The client is reusable after a give-up.
        let fx = c.invoke(0, Vec::new());
        assert!(matches!(fx[0], VEffect::Send(ref p, _) if p.trans == 2));
    }

    #[test]
    fn stale_response_ignored() {
        let mut c = ClientMachine::new(1, 2, 0x0B, SimDuration::from_millis(100));
        let fx = c.invoke(0, Vec::new());
        let VEffect::Send(req, _) = &fx[0] else {
            panic!()
        };
        let stale = VmtpPacket {
            dst_entity: 1,
            src_entity: 2,
            trans: req.trans + 100,
            ptype: VmtpType::Response,
            index: 0,
            count: 1,
            opcode: 0,
            data: vec![1],
        };
        assert!(c.on_packet(&stale).is_empty());
        assert!(c.busy());
    }
}
