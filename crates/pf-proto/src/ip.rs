//! The kernel-resident IP/UDP stack (figure 3-2's "vanilla 4.3BSD" model).
//!
//! This is the baseline the packet filter coexists with (figure 3-3) and
//! is compared against: §6.1 profiles its per-packet input cost (~0.49 ms
//! in the IP layer, ~1.77 ms through UDP/TCP), and table 6-1 its datagram
//! send cost. The stack is deliberately "lite" — real header formats and
//! real demultiplexing, with protocol processing charged from the
//! calibrated cost model rather than re-implemented instruction by
//! instruction.
//!
//! TCP lives in [`crate::tcp`] and plugs into this module's dispatcher.

use crate::tcp::{self, TcpState};
use pf_kernel::kproto::KernelProtocol;
use pf_kernel::types::{ProcId, SockId};
use pf_kernel::world::KernelCtx;
use pf_net::frame;
use pf_sim::time::SimDuration;
use std::collections::HashMap;

/// Ethernet type for IP.
pub const IP_ETHERTYPE: u16 = 0x0800;

/// IP header length (no options — §7 notes option-bearing headers defeat
/// constant-offset filters; the kernel stack doesn't need them).
pub const IP_HEADER: usize = 20;

/// UDP header length.
pub const UDP_HEADER: usize = 8;

/// IP protocol numbers.
pub const PROTO_TCP: u8 = 6;
/// See [`PROTO_TCP`].
pub const PROTO_UDP: u8 = 17;

/// Kernel UDP input processing above the IP layer.
pub const UDP_INPUT_COST: SimDuration = SimDuration::from_micros(310);

/// User request ops for the `ip` kernel protocol.
pub mod ops {
    /// Bind a UDP socket to port `meta[0]`.
    pub const UDP_BIND: u32 = 1;
    /// Send a UDP datagram: `meta = [dst_ip, dst_port, dst_eth, checksum]`.
    pub const UDP_SEND: u32 = 2;
    /// TCP passive open on port `meta[0]`.
    pub const TCP_LISTEN: u32 = 3;
    /// TCP active open: `meta = [dst_ip, dst_port, dst_eth, 0]`.
    pub const TCP_CONNECT: u32 = 4;
    /// Send stream data on a connected TCP socket.
    pub const TCP_SEND: u32 = 5;
    /// Close a TCP stream (sends FIN after queued data).
    pub const TCP_CLOSE: u32 = 6;
    /// Completion: UDP datagram arrived; `meta = [src_ip, src_port, 0, 0]`.
    pub const UDP_RECV: u32 = 10;
    /// Completion: TCP connection established.
    pub const TCP_CONNECTED: u32 = 11;
    /// Completion: in-order TCP stream data.
    pub const TCP_RECV: u32 = 12;
    /// Completion: peer closed its direction (all data delivered).
    pub const TCP_CLOSED: u32 = 13;
    /// Completion: everything the application queued has been sent and
    /// acknowledged; it may write more (the write-side flow control).
    pub const TCP_SENDABLE: u32 = 14;
}

/// A decoded IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpHeader {
    /// IP protocol number ([`PROTO_TCP`]/[`PROTO_UDP`]).
    pub proto: u8,
    /// Time to live.
    pub ttl: u8,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Total length (header + payload).
    pub total_len: u16,
}

/// Encodes an IP packet (header + payload).
pub fn encode_ip(h: &IpHeader, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(IP_HEADER + payload.len());
    b.push(0x45); // version 4, IHL 5
    b.push(0); // TOS
    let total = (IP_HEADER + payload.len()) as u16;
    b.extend_from_slice(&total.to_be_bytes());
    b.extend_from_slice(&[0, 0, 0, 0]); // id, frag
    b.push(h.ttl);
    b.push(h.proto);
    b.extend_from_slice(&[0, 0]); // header checksum (simulated as valid)
    b.extend_from_slice(&h.src.to_be_bytes());
    b.extend_from_slice(&h.dst.to_be_bytes());
    b.extend_from_slice(payload);
    b
}

/// Decodes an IP packet; returns the header and payload slice.
pub fn decode_ip(b: &[u8]) -> Option<(IpHeader, &[u8])> {
    if b.len() < IP_HEADER || b[0] != 0x45 {
        return None;
    }
    let total_len = u16::from_be_bytes([b[2], b[3]]);
    let total = usize::from(total_len);
    if total < IP_HEADER || total > b.len() {
        return None;
    }
    Some((
        IpHeader {
            ttl: b[8],
            proto: b[9],
            src: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
            dst: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
            total_len,
        },
        &b[IP_HEADER..total],
    ))
}

/// Encodes a UDP datagram (header + data).
pub fn encode_udp(src_port: u16, dst_port: u16, data: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(UDP_HEADER + data.len());
    b.extend_from_slice(&src_port.to_be_bytes());
    b.extend_from_slice(&dst_port.to_be_bytes());
    b.extend_from_slice(&((UDP_HEADER + data.len()) as u16).to_be_bytes());
    b.extend_from_slice(&[0, 0]); // checksum (the unchecksummed variant)
    b.extend_from_slice(data);
    b
}

/// Decodes a UDP datagram; returns (src_port, dst_port, data).
pub fn decode_udp(b: &[u8]) -> Option<(u16, u16, &[u8])> {
    if b.len() < UDP_HEADER {
        return None;
    }
    let len = usize::from(u16::from_be_bytes([b[4], b[5]]));
    if len < UDP_HEADER || len > b.len() {
        return None;
    }
    Some((
        u16::from_be_bytes([b[0], b[1]]),
        u16::from_be_bytes([b[2], b[3]]),
        &b[UDP_HEADER..len],
    ))
}

/// The kernel-resident IP stack: UDP sockets plus TCP-lite connections.
pub struct KernelIp {
    /// This host's IP address.
    pub ip: u32,
    udp_binds: HashMap<u16, SockId>,
    next_ephemeral: u16,
    pub(crate) tcp: TcpState,
    /// IP datagrams processed by `ip_input`.
    pub packets_in: u64,
}

impl KernelIp {
    /// Creates the stack for a host with address `ip`.
    pub fn new(ip: u32) -> Self {
        KernelIp {
            ip,
            udp_binds: HashMap::new(),
            next_ephemeral: 1024,
            tcp: TcpState::default(),
            packets_in: 0,
        }
    }
}

/// Transmits an IP payload from `src_ip` to `dst_ip` at data-link address
/// `dst_eth`, charging output-path costs.
pub(crate) fn ip_output_raw(
    src_ip: u32,
    k: &mut KernelCtx<'_>,
    proto: u8,
    dst_ip: u32,
    dst_eth: u64,
    payload: &[u8],
) {
    let cost = k.costs().ip_input; // output ≈ input at the IP layer
    k.charge("ip:output", cost);
    let ip = encode_ip(
        &IpHeader {
            proto,
            ttl: 30,
            src: src_ip,
            dst: dst_ip,
            total_len: 0,
        },
        payload,
    );
    let (medium, my_eth) = k.link_info();
    let f = frame::build(&medium, dst_eth, my_eth, IP_ETHERTYPE, &ip)
        .expect("IP packet sized for the medium");
    k.transmit(&f);
}

impl KernelProtocol for KernelIp {
    fn name(&self) -> &'static str {
        "ip"
    }

    fn claims(&self, ethertype: u16) -> bool {
        ethertype == IP_ETHERTYPE
    }

    fn input(&mut self, frame_bytes: Vec<u8>, k: &mut KernelCtx<'_>) {
        let (medium, _) = k.link_info();
        let Ok(payload) = frame::payload(&medium, &frame_bytes) else {
            return;
        };
        let Some((header, eth)) = frame::parse(&medium, &frame_bytes).ok().map(|h| (h, h.src))
        else {
            return;
        };
        let _ = header;
        self.packets_in += 1;
        let ip_cost = k.costs().ip_input;
        k.charge("ip:input", ip_cost);
        let Some((ih, body)) = decode_ip(payload) else {
            return;
        };
        if ih.dst != self.ip {
            return; // not ours; no forwarding in this host stack
        }
        match ih.proto {
            PROTO_UDP => {
                k.charge("udp:input", UDP_INPUT_COST);
                let Some((src_port, dst_port, data)) = decode_udp(body) else {
                    return;
                };
                if let Some(&sock) = self.udp_binds.get(&dst_port) {
                    k.complete(
                        sock,
                        ops::UDP_RECV,
                        data.to_vec(),
                        [u64::from(ih.src), u64::from(src_port), 0, 0],
                    );
                }
            }
            PROTO_TCP => {
                tcp::tcp_input(self, ih.src, eth, body.to_vec(), k);
            }
            _ => {}
        }
    }

    fn user_request(
        &mut self,
        _proc: ProcId,
        sock: SockId,
        op: u32,
        data: Vec<u8>,
        meta: [u64; 4],
        k: &mut KernelCtx<'_>,
    ) {
        match op {
            ops::UDP_BIND => {
                self.udp_binds.insert(meta[0] as u16, sock);
            }
            ops::UDP_SEND => {
                let dst_ip = meta[0] as u32;
                let dst_port = meta[1] as u16;
                let dst_eth = meta[2];
                let src_port = self.next_ephemeral;
                self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(1024);
                // Socket-layer + UDP output processing (table 6-1's
                // "choose a route … compute a checksum" work lives here).
                let cost = k.costs().udp_send_fixed;
                k.charge("udp:output", cost);
                let udp = encode_udp(src_port, dst_port, &data);
                ip_output_raw(self.ip, k, PROTO_UDP, dst_ip, dst_eth, &udp);
            }
            ops::TCP_LISTEN => tcp::user_listen(self, sock, meta[0] as u16),
            ops::TCP_CONNECT => tcp::user_connect(
                self,
                sock,
                meta[0] as u32,
                meta[1] as u16,
                meta[2],
                meta[3] as usize,
                k,
            ),
            ops::TCP_SEND => tcp::user_send(self, sock, data, k),
            ops::TCP_CLOSE => tcp::user_close(self, sock, k),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, k: &mut KernelCtx<'_>) {
        tcp::on_timer(self, token, k);
    }

    fn sock_closed(&mut self, sock: SockId, k: &mut KernelCtx<'_>) {
        self.udp_binds.retain(|_, s| *s != sock);
        tcp::sock_closed(self, sock, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_net::medium::Medium;

    #[test]
    fn ip_round_trip() {
        let h = IpHeader {
            proto: PROTO_UDP,
            ttl: 30,
            src: 0xC0A80001,
            dst: 0xC0A80002,
            total_len: 0,
        };
        let p = encode_ip(&h, &[1, 2, 3]);
        let (q, body) = decode_ip(&p).unwrap();
        assert_eq!(q.proto, PROTO_UDP);
        assert_eq!(q.src, 0xC0A80001);
        assert_eq!(q.dst, 0xC0A80002);
        assert_eq!(q.total_len as usize, IP_HEADER + 3);
        assert_eq!(body, &[1, 2, 3]);
    }

    #[test]
    fn ip_rejects_garbage() {
        assert!(decode_ip(&[0; 10]).is_none());
        let mut p = encode_ip(
            &IpHeader {
                proto: 6,
                ttl: 1,
                src: 1,
                dst: 2,
                total_len: 0,
            },
            &[],
        );
        p[0] = 0x46; // IHL 6: options unsupported
        assert!(decode_ip(&p).is_none());
        // Declared length beyond the buffer.
        let mut p = encode_ip(
            &IpHeader {
                proto: 6,
                ttl: 1,
                src: 1,
                dst: 2,
                total_len: 0,
            },
            &[1, 2],
        );
        p[2] = 0xFF;
        p[3] = 0xFF;
        assert!(decode_ip(&p).is_none());
    }

    #[test]
    fn udp_round_trip() {
        let d = encode_udp(1234, 53, b"query");
        let (s, dp, data) = decode_udp(&d).unwrap();
        assert_eq!((s, dp), (1234, 53));
        assert_eq!(data, b"query");
    }

    #[test]
    fn udp_rejects_bad_length() {
        let mut d = encode_udp(1, 2, b"xy");
        d[4] = 0xFF;
        d[5] = 0xFF;
        assert!(decode_udp(&d).is_none());
        assert!(decode_udp(&[0; 4]).is_none());
    }

    #[test]
    fn ip_payload_nests_in_ethernet_frame() {
        let medium = Medium::standard_10mb();
        let h = IpHeader {
            proto: PROTO_UDP,
            ttl: 30,
            src: 10,
            dst: 11,
            total_len: 0,
        };
        let ip = encode_ip(&h, &encode_udp(99, 100, &[7; 64]));
        let f = frame::build(&medium, 0x0B, 0x0A, IP_ETHERTYPE, &ip).unwrap();
        let body = frame::payload(&medium, &f).unwrap();
        let (ih, udp) = decode_ip(body).unwrap();
        assert_eq!(ih.dst, 11);
        let (_, _, data) = decode_udp(udp).unwrap();
        assert_eq!(data, &[7u8; 64][..]);
    }
}
