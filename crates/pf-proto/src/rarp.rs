//! RARP, implemented entirely at user level over the packet filter (§5.3).
//!
//! "One issue in the definition of this protocol was whether it should be
//! a layer above IP, or a parallel layer. The former leads to a
//! chicken-or-egg dilemma; the latter is cleaner but raised questions of
//! implementability under 4.2BSD. With the packet filter, however, a RARP
//! implementation was easy; the work was done in a few weeks by a student
//! who had no experience with network programming."
//!
//! The server keeps the Ethernet→IP table and answers requests; the client
//! is a diskless workstation determining its own IP address at boot, with
//! timeout-driven retries — the §3 "write; read with timeout; retry if
//! necessary" paradigm verbatim.

use crate::arp::{oper, ArpPacket, RARP_ETHERTYPE};
use pf_filter::builder::Expr;
use pf_filter::program::FilterProgram;
use pf_kernel::app::App;
use pf_kernel::types::{BlockPolicy, Fd, PortConfig, ReadError, RecvPacket};
use pf_kernel::world::ProcCtx;
use pf_net::frame;
use pf_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// A packet-filter program accepting RARP packets with the given
/// operation code, built with the expression DSL (the filter tests two
/// layers at once, as §3.1 notes filters may).
///
/// On the 10 Mb Ethernet the type field is word 6 and the ARP `oper`
/// field word 10.
pub fn rarp_filter(priority: u8, op: u16) -> FilterProgram {
    Expr::word(6)
        .eq(RARP_ETHERTYPE)
        .and(Expr::word(10).eq(op))
        .compile(priority)
        .expect("static filter compiles")
}

/// The user-level RARP server.
pub struct RarpServer {
    /// Ethernet address → IP address assignments.
    table: HashMap<u64, u32>,
    fd: Option<Fd>,
    /// Requests answered.
    pub answered: u64,
    /// Requests for unknown hardware addresses (ignored, per the RFC).
    pub unknown: u64,
}

impl RarpServer {
    /// Creates a server with the given Ethernet→IP table.
    pub fn new(table: HashMap<u64, u32>) -> Self {
        RarpServer {
            table,
            fd: None,
            answered: 0,
            unknown: 0,
        }
    }
}

impl App for RarpServer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, rarp_filter(10, oper::RARP_REQUEST));
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let (medium, my_eth) = k.link_info();
        for p in packets {
            let Ok(body) = frame::payload(&medium, &p.bytes) else {
                continue;
            };
            let Some(req) = ArpPacket::decode_body(body) else {
                continue;
            };
            if req.oper != oper::RARP_REQUEST {
                continue;
            }
            match self.table.get(&req.tha) {
                Some(&ip) => {
                    self.answered += 1;
                    let reply = ArpPacket {
                        oper: oper::RARP_REPLY,
                        sha: my_eth,
                        spa: 0,
                        tha: req.tha,
                        tpa: ip,
                    };
                    let f = reply.encode_frame(&medium, RARP_ETHERTYPE, req.sha, my_eth);
                    let _ = k.pf_write(fd, &f);
                }
                None => self.unknown += 1,
            }
        }
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// The diskless-workstation RARP client: broadcasts "who am I?" until a
/// server answers (or it gives up).
pub struct RarpClient {
    fd: Option<Fd>,
    attempts_left: u32,
    /// Retry interval.
    pub retry_after: SimDuration,
    /// The learned IP address, once a reply arrives.
    pub my_ip: Option<u32>,
    /// When the address was learned.
    pub resolved_at: Option<SimTime>,
    /// Requests transmitted.
    pub requests_sent: u64,
}

impl RarpClient {
    /// Creates a client that retries up to `attempts` times.
    pub fn new(attempts: u32) -> Self {
        RarpClient {
            fd: None,
            attempts_left: attempts,
            retry_after: SimDuration::from_millis(500),
            my_ip: None,
            resolved_at: None,
            requests_sent: 0,
        }
    }

    fn send_request(&mut self, k: &mut ProcCtx<'_>) {
        let (medium, my_eth) = k.link_info();
        let req = ArpPacket {
            oper: oper::RARP_REQUEST,
            sha: my_eth,
            spa: 0,
            tha: my_eth, // asking about ourselves
            tpa: 0,
        };
        let f = req.encode_frame(&medium, RARP_ETHERTYPE, medium.broadcast, my_eth);
        let _ = k.pf_write(self.fd.expect("port open"), &f);
        self.requests_sent += 1;
        k.pf_read(self.fd.expect("port open"));
    }
}

impl App for RarpClient {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, rarp_filter(10, oper::RARP_REPLY));
        k.pf_configure(
            fd,
            PortConfig {
                block: BlockPolicy::Timeout(self.retry_after),
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        self.send_request(k);
    }

    fn on_packets(&mut self, _fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let (medium, my_eth) = k.link_info();
        for p in packets {
            let Ok(body) = frame::payload(&medium, &p.bytes) else {
                continue;
            };
            let Some(reply) = ArpPacket::decode_body(body) else {
                continue;
            };
            if reply.oper == oper::RARP_REPLY && reply.tha == my_eth && self.my_ip.is_none() {
                self.my_ip = Some(reply.tpa);
                self.resolved_at = Some(k.now());
            }
        }
    }

    fn on_read_error(&mut self, _fd: Fd, err: ReadError, k: &mut ProcCtx<'_>) {
        // The §3 paradigm: write; read with timeout; retry if necessary.
        if err == ReadError::TimedOut && self.my_ip.is_none() && self.attempts_left > 0 {
            self.attempts_left -= 1;
            self.send_request(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_kernel::world::World;
    use pf_net::medium::Medium;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    fn world_with_server(loss: f64) -> (World, pf_kernel::types::HostId, pf_kernel::types::HostId) {
        let mut w = World::new(5);
        let seg = w.add_segment(
            Medium::standard_10mb(),
            FaultModel {
                loss,
                duplication: 0.0,
                ..FaultModel::default()
            },
        );
        let station = w.add_host("diskless", seg, 0x0A, CostModel::microvax_ii());
        let server = w.add_host("server", seg, 0x0B, CostModel::microvax_ii());
        (w, station, server)
    }

    #[test]
    fn boot_exchange_resolves_address() {
        let (mut w, station, server) = world_with_server(0.0);
        let mut table = HashMap::new();
        table.insert(0x0Au64, 0xC0A8_000A_u32);
        let srv = w.spawn(server, Box::new(RarpServer::new(table)));
        let cli = w.spawn(station, Box::new(RarpClient::new(3)));
        w.run_until(SimTime(10_000_000_000));
        let c = w.app_ref::<RarpClient>(station, cli).unwrap();
        assert_eq!(c.my_ip, Some(0xC0A8_000A));
        assert_eq!(c.requests_sent, 1, "no retries needed");
        assert_eq!(w.app_ref::<RarpServer>(server, srv).unwrap().answered, 1);
    }

    #[test]
    fn client_retries_through_loss() {
        let (mut w, station, server) = world_with_server(0.7);
        let mut table = HashMap::new();
        table.insert(0x0Au64, 7);
        w.spawn(server, Box::new(RarpServer::new(table)));
        let cli = w.spawn(station, Box::new(RarpClient::new(50)));
        w.run_until(SimTime(120_000_000_000));
        let c = w.app_ref::<RarpClient>(station, cli).unwrap();
        assert_eq!(
            c.my_ip,
            Some(7),
            "resolved after {} attempts",
            c.requests_sent
        );
        assert!(c.requests_sent > 1, "loss forced retries");
    }

    #[test]
    fn unknown_stations_are_ignored() {
        let (mut w, station, server) = world_with_server(0.0);
        let srv = w.spawn(server, Box::new(RarpServer::new(HashMap::new())));
        let cli = w.spawn(station, Box::new(RarpClient::new(2)));
        w.run_until(SimTime(30_000_000_000));
        let c = w.app_ref::<RarpClient>(station, cli).unwrap();
        assert_eq!(c.my_ip, None);
        let s = w.app_ref::<RarpServer>(server, srv).unwrap();
        assert_eq!(s.answered, 0);
        assert_eq!(s.unknown, 3, "initial + 2 retries, all unknown");
    }

    #[test]
    fn filters_separate_requests_from_replies() {
        // The server's filter must not accept its own replies (or other
        // servers' replies), and the client's must not see requests.
        use pf_filter::interp::CheckedInterpreter;
        use pf_filter::packet::PacketView;
        let medium = Medium::standard_10mb();
        let interp = CheckedInterpreter::default();
        let req = ArpPacket {
            oper: oper::RARP_REQUEST,
            sha: 1,
            spa: 0,
            tha: 1,
            tpa: 0,
        }
        .encode_frame(&medium, RARP_ETHERTYPE, medium.broadcast, 1);
        let rep = ArpPacket {
            oper: oper::RARP_REPLY,
            sha: 2,
            spa: 0,
            tha: 1,
            tpa: 9,
        }
        .encode_frame(&medium, RARP_ETHERTYPE, 1, 2);
        let f_req = rarp_filter(10, oper::RARP_REQUEST);
        let f_rep = rarp_filter(10, oper::RARP_REPLY);
        assert!(interp.eval(&f_req, PacketView::new(&req)));
        assert!(!interp.eval(&f_req, PacketView::new(&rep)));
        assert!(interp.eval(&f_rep, PacketView::new(&rep)));
        assert!(!interp.eval(&f_rep, PacketView::new(&req)));
    }
}
