//! Pup Echo — the simplest Pup protocol (§5.1), and the clearest example
//! of the §3 programming model: "Simple programs can be written using a
//! 'write; read with timeout; retry if necessary' paradigm."
//!
//! The server answers `EchoMe` Pups with `ImAnEcho`, payload intact; the
//! client pings N times, measuring round trips and retrying lost ones.

use crate::pup::{types, Pup, PupAddr};
use pf_kernel::app::App;
use pf_kernel::types::{BlockPolicy, Fd, PortConfig, ReadError, RecvPacket};
use pf_kernel::world::ProcCtx;
use pf_net::medium::Medium;
use pf_sim::time::{SimDuration, SimTime};

/// The user-level Pup echo server.
pub struct EchoServer {
    local: PupAddr,
    fd: Option<Fd>,
    /// Echoes answered.
    pub answered: u64,
}

impl EchoServer {
    /// Creates a server listening on `local`.
    pub fn new(local: PupAddr) -> Self {
        EchoServer {
            local,
            fd: None,
            answered: 0,
        }
    }
}

impl App for EchoServer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, Pup::socket_filter(10, self.local.socket));
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let medium = Medium::experimental_3mb();
        for p in packets {
            let Ok(pup) = Pup::decode_frame(&medium, &p.bytes) else {
                continue;
            };
            if pup.ptype != types::ECHO_ME {
                continue;
            }
            self.answered += 1;
            let reply = Pup::new(types::IM_AN_ECHO, pup.id, pup.src, self.local, pup.data);
            let _ = k.pf_write(fd, &reply.encode_frame(&medium, false));
        }
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _e: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// The echo client: the §3 "write; read with timeout; retry" paradigm.
pub struct EchoClient {
    local: PupAddr,
    server: PupAddr,
    remaining: u32,
    payload: Vec<u8>,
    timeout: SimDuration,
    fd: Option<Fd>,
    next_id: u32,
    sent_at: Option<SimTime>,
    /// Round-trip times of completed echoes.
    pub rtts: Vec<SimDuration>,
    /// Retransmissions forced by timeouts.
    pub retries: u64,
    /// Replies whose payload did not match what was sent.
    pub corrupt: u64,
}

impl EchoClient {
    /// Creates a client that will ping `server` `count` times with the
    /// given payload.
    pub fn new(local: PupAddr, server: PupAddr, count: u32, payload: Vec<u8>) -> Self {
        EchoClient {
            local,
            server,
            remaining: count,
            payload,
            timeout: SimDuration::from_millis(200),
            fd: None,
            next_id: 1,
            sent_at: None,
            rtts: Vec::new(),
            retries: 0,
            corrupt: 0,
        }
    }

    /// Whether all echoes completed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Mean round-trip time, if any completed.
    pub fn mean_rtt(&self) -> Option<SimDuration> {
        if self.rtts.is_empty() {
            return None;
        }
        let total: u64 = self.rtts.iter().map(|r| r.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / self.rtts.len() as u64))
    }

    fn ping(&mut self, k: &mut ProcCtx<'_>) {
        // write…
        let medium = Medium::experimental_3mb();
        let pup = Pup::new(
            types::ECHO_ME,
            self.next_id,
            self.server,
            self.local,
            self.payload.clone(),
        );
        let _ = k.pf_write(self.fd.expect("open"), &pup.encode_frame(&medium, false));
        self.sent_at = Some(k.now());
        // …read with timeout…
        k.pf_read(self.fd.expect("open"));
    }
}

impl App for EchoClient {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, Pup::socket_filter(10, self.local.socket));
        k.pf_configure(
            fd,
            PortConfig {
                block: BlockPolicy::Timeout(self.timeout),
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        if self.remaining > 0 {
            self.ping(k);
        }
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let medium = Medium::experimental_3mb();
        for p in packets {
            let Ok(pup) = Pup::decode_frame(&medium, &p.bytes) else {
                continue;
            };
            if pup.ptype != types::IM_AN_ECHO || pup.id != self.next_id {
                continue; // stale or foreign echo
            }
            if pup.data != self.payload {
                self.corrupt += 1;
            }
            if let Some(t0) = self.sent_at.take() {
                self.rtts.push(k.now().since(t0));
            }
            self.remaining -= 1;
            self.next_id += 1;
            if self.remaining > 0 {
                self.ping(k);
                return;
            }
            return;
        }
        // Nothing useful in the batch: keep waiting out the timeout.
        if self.remaining > 0 {
            k.pf_read(fd);
        }
    }

    fn on_read_error(&mut self, _fd: Fd, err: ReadError, k: &mut ProcCtx<'_>) {
        // …retry if necessary.
        if err == ReadError::TimedOut && self.remaining > 0 {
            self.retries += 1;
            self.ping(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_kernel::world::World;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    fn echo_world(loss: f64) -> (World, pf_kernel::types::HostId, pf_kernel::types::HostId) {
        let mut w = World::new(31);
        let seg = w.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                loss,
                duplication: 0.0,
                ..FaultModel::default()
            },
        );
        let c = w.add_host("client", seg, 0x0A, CostModel::microvax_ii());
        let s = w.add_host("server", seg, 0x0B, CostModel::microvax_ii());
        (w, c, s)
    }

    #[test]
    fn echoes_complete_with_sane_rtts() {
        let (mut w, c, s) = echo_world(0.0);
        let client = PupAddr::new(1, 0x0A, 0x111);
        let server = PupAddr::new(1, 0x0B, 0x5); // the well-known echo socket
        w.spawn(s, Box::new(EchoServer::new(server)));
        let p = w.spawn(
            c,
            Box::new(EchoClient::new(client, server, 20, b"ping".to_vec())),
        );
        w.run_until(SimTime(60_000_000_000));
        let app = w.app_ref::<EchoClient>(c, p).unwrap();
        assert!(app.is_done());
        assert_eq!(app.rtts.len(), 20);
        assert_eq!(app.retries, 0);
        assert_eq!(app.corrupt, 0);
        let rtt = app.mean_rtt().unwrap().as_millis_f64();
        // Send (~1.9) + recv (~2) on each side, plus wire time.
        assert!((4.0..15.0).contains(&rtt), "mean RTT {rtt:.2} ms");
    }

    #[test]
    fn retries_recover_from_loss() {
        let (mut w, c, s) = echo_world(0.25);
        let client = PupAddr::new(1, 0x0A, 0x111);
        let server = PupAddr::new(1, 0x0B, 0x5);
        let srv = w.spawn(s, Box::new(EchoServer::new(server)));
        let p = w.spawn(
            c,
            Box::new(EchoClient::new(client, server, 15, vec![7; 100])),
        );
        w.run_until(SimTime(300_000_000_000));
        let app = w.app_ref::<EchoClient>(c, p).unwrap();
        assert!(app.is_done(), "completed {} of 15", app.rtts.len());
        assert!(app.retries > 0, "25% loss must force retries");
        assert!(w.app_ref::<EchoServer>(s, srv).unwrap().answered >= 15);
    }

    #[test]
    fn echo_payload_round_trips_exactly() {
        let (mut w, c, s) = echo_world(0.0);
        let client = PupAddr::new(1, 0x0A, 0x111);
        let server = PupAddr::new(1, 0x0B, 0x5);
        w.spawn(s, Box::new(EchoServer::new(server)));
        let payload: Vec<u8> = (0..=255).collect();
        let p = w.spawn(c, Box::new(EchoClient::new(client, server, 3, payload)));
        w.run_until(SimTime(30_000_000_000));
        let app = w.app_ref::<EchoClient>(c, p).unwrap();
        assert!(app.is_done());
        assert_eq!(app.corrupt, 0);
    }
}
