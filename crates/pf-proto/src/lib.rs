//! Protocol implementations for the packet-filter evaluation.
//!
//! Everything §5 and §6 of the paper run on top of the packet filter or
//! against it:
//!
//! * [`pup`] / [`bsp`] / [`bsp_app`] — the Pup datagram and the BSP byte
//!   stream protocol, implemented at user level over the packet filter
//!   (§5.1, table 6-6);
//! * [`vmtp`] / [`vmtp_user`] / [`vmtp_kernel`] — the same VMTP
//!   transaction machines embedded both as user processes over the packet
//!   filter and as a kernel-resident protocol (§5.2, tables 6-2/6-3/6-5);
//! * [`ip`] / [`tcp`] / [`stream`] — the kernel-resident IP/UDP/TCP-lite
//!   stack and its bulk-stream workloads (figure 3-2, §6.1, table 6-6);
//! * [`arp`] / [`rarp`] — kernel ARP and the §5.3 user-level RARP;
//! * [`router`] — the static-routed IP forwarding plane for
//!   `pf_net::Topology` routers, plus the glue deploying a topology
//!   into a `World`;
//! * [`telnet`] — the remote-terminal character streams of table 6-7.
//!
//! Protocol state machines are pure (effect-emitting) wherever a protocol
//! has both user-level and kernel-resident embeddings, so the two variants
//! provably run the same code — the paper's "essentially the same pattern
//! of packet transport", made literal.

pub mod arp;
pub mod bsp;
pub mod bsp_app;
pub mod echo;
pub mod group;
pub mod ip;
pub mod pup;
pub mod rarp;
pub mod router;
pub mod stream;
pub mod tcp;
pub mod telnet;
pub mod vmtp;
pub mod vmtp_kernel;
pub mod vmtp_user;
