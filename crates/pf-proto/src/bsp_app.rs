//! Packet-filter process adapters for the BSP state machines.
//!
//! These are the §5.1 user-level protocol processes: each opens a
//! packet-filter port, binds a figure-3-9-style socket filter, and maps
//! [`Effect`]s from the pure machines onto system calls. Per-packet
//! user-level protocol processing is charged via [`ProcCtx::compute`], so
//! the measured cost of user-level implementation includes the work the
//! kernel would otherwise have done in `tcp_input`-style routines.

use crate::bsp::{BspConfig, Effect, ReceiverMachine, SenderMachine};
use crate::pup::{Pup, PupAddr};
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PortConfig, ReadError, ReadMode, RecvPacket, TimerId};
use pf_kernel::world::ProcCtx;
use pf_net::medium::Medium;
use pf_sim::time::{SimDuration, SimTime};

/// User-level protocol processing charged per packet handled (send or
/// receive) — header construction/parsing, window bookkeeping. Roughly
/// what a kernel implementation spends in its protocol input routine.
pub const USER_PROTO_COST: SimDuration = SimDuration::from_micros(350);

/// Software Pup checksum cost per byte, charged on send and on receive
/// when the configuration asks for checksummed Pups.
pub const CKSUM_PER_BYTE_NS: u64 = 600;

fn cksum_cost(bytes: usize) -> SimDuration {
    SimDuration::from_nanos(CKSUM_PER_BYTE_NS * bytes as u64)
}

/// Shared adapter plumbing: a port plus retransmission-timer bookkeeping.
struct Endpoint {
    fd: Option<Fd>,
    timer: Option<TimerId>,
    checksummed: bool,
}

impl Endpoint {
    fn new(checksummed: bool) -> Self {
        Endpoint {
            fd: None,
            timer: None,
            checksummed,
        }
    }

    /// Charges receive-side checksum verification for one Pup.
    fn charge_rx_cksum(&self, k: &mut ProcCtx<'_>, bytes: usize) {
        if self.checksummed && bytes > 0 {
            k.compute("user:pup-cksum", cksum_cost(bytes));
        }
    }

    fn open(&mut self, k: &mut ProcCtx<'_>, local: PupAddr, batch: bool, mark: Option<usize>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, Pup::socket_filter(10, local.socket));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: if batch {
                    ReadMode::Batch
                } else {
                    ReadMode::Single
                },
                backpressure_mark: mark,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
    }

    /// Applies machine effects that do not feed back into the machine;
    /// returns the feedback events (connected / closed / delivered bytes).
    fn apply(&mut self, fx: Vec<Effect>, k: &mut ProcCtx<'_>) -> Feedback {
        let medium = Medium::experimental_3mb();
        let mut fb = Feedback::default();
        for e in fx {
            match e {
                Effect::Send(pup) => {
                    k.compute("user:bsp", USER_PROTO_COST);
                    if self.checksummed && !pup.data.is_empty() {
                        k.compute("user:pup-cksum", cksum_cost(pup.data.len()));
                    }
                    let frame = pup.encode_frame(&medium, self.checksummed);
                    let _ = k.pf_write(self.fd.expect("port open"), &frame);
                }
                Effect::SetTimer(d, token) => {
                    if let Some(t) = self.timer.take() {
                        k.cancel_timer(t);
                    }
                    self.timer = Some(k.set_timer(d, token));
                }
                Effect::CancelTimer(_) => {
                    if let Some(t) = self.timer.take() {
                        k.cancel_timer(t);
                    }
                }
                Effect::Deliver(data) => fb.delivered.extend(data),
                Effect::Connected => fb.connected = true,
                Effect::Closed => fb.closed = true,
                Effect::Failed => fb.failed = true,
            }
        }
        fb
    }
}

#[derive(Default)]
struct Feedback {
    connected: bool,
    closed: bool,
    failed: bool,
    delivered: Vec<u8>,
}

/// A user-level BSP bulk sender: connects, streams `payload`, closes.
pub struct BspSenderApp {
    local: PupAddr,
    remote: PupAddr,
    payload: Vec<u8>,
    offered: usize,
    /// If set, the payload is read from a chunked source (a disk file):
    /// each chunk of the given size costs the given time before it can be
    /// offered to the protocol (table 6-6's FTP variant).
    source: Option<(usize, SimDuration)>,
    machine: SenderMachine,
    ep: Endpoint,
    batch: bool,
    /// When the connection was initiated.
    pub started_at: Option<SimTime>,
    /// When the stream fully closed.
    pub closed_at: Option<SimTime>,
    /// When the sender gave up (retry exhaustion), if it did.
    pub failed_at: Option<SimTime>,
    /// Received frames discarded because they failed to decode (bad
    /// checksum, truncated header, not a Pup).
    pub discards: u64,
}

impl BspSenderApp {
    /// Creates a sender that will stream `payload` to `remote`.
    pub fn new(local: PupAddr, remote: PupAddr, payload: Vec<u8>, cfg: BspConfig) -> Self {
        let checksummed = cfg.checksummed;
        let batch = cfg.batch;
        BspSenderApp {
            machine: SenderMachine::new(local, remote, cfg),
            local,
            remote,
            payload,
            offered: 0,
            source: None,
            ep: Endpoint::new(checksummed),
            batch,
            started_at: None,
            closed_at: None,
            failed_at: None,
            discards: 0,
        }
    }

    /// Reads the payload from a chunked source: each `chunk`-byte read
    /// costs `cost` (e.g. a disk file instead of memory).
    pub fn with_chunked_source(mut self, chunk: usize, cost: SimDuration) -> Self {
        self.source = Some((chunk, cost));
        self
    }

    /// Sender-machine statistics.
    pub fn stats(&self) -> crate::bsp::SenderStats {
        self.machine.stats
    }

    /// Whether the transfer completed.
    pub fn is_done(&self) -> bool {
        self.closed_at.is_some()
    }

    /// Whether the sender gave up after exhausting its retries.
    pub fn is_failed(&self) -> bool {
        self.failed_at.is_some()
    }

    fn drive(&mut self, fx: Vec<Effect>, k: &mut ProcCtx<'_>) {
        let fb = self.ep.apply(fx, k);
        if fb.connected {
            self.offer_more(k);
        }
        if fb.closed {
            self.closed_at = Some(k.now());
        }
        if fb.failed {
            self.failed_at = Some(k.now());
        }
    }

    /// Offers payload to the machine: everything at once from memory, or
    /// chunk by chunk (with per-chunk cost) from a simulated disk source.
    fn offer_more(&mut self, k: &mut ProcCtx<'_>) {
        if self.offered >= self.payload.len() {
            return;
        }
        match self.source {
            None => {
                let fx = self.machine.offer(&self.payload[self.offered..]);
                self.offered = self.payload.len();
                let _ = self.ep.apply(fx, k);
            }
            Some((chunk, cost)) => {
                // Keep one chunk ahead of the protocol.
                while self.offered < self.payload.len() && self.machine.buffered_bytes() < chunk {
                    let hi = (self.offered + chunk).min(self.payload.len());
                    k.compute("user:disk-read", cost);
                    let slice: Vec<u8> = self.payload[self.offered..hi].to_vec();
                    self.offered = hi;
                    let fx = self.machine.offer(&slice);
                    let _ = self.ep.apply(fx, k);
                }
            }
        }
        if self.offered >= self.payload.len() {
            let fx = self.machine.finish();
            let _ = self.ep.apply(fx, k);
        }
    }
}

impl App for BspSenderApp {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let _ = self.remote;
        let batch = self.batch;
        self.ep.open(k, self.local, batch, None);
        self.started_at = Some(k.now());
        let fx = self.machine.connect();
        self.drive(fx, k);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let medium = Medium::experimental_3mb();
        for p in packets {
            k.compute("user:bsp", USER_PROTO_COST);
            match Pup::decode_frame(&medium, &p.bytes) {
                Ok(pup) => {
                    let fx = self.machine.on_pup(&pup);
                    self.drive(fx, k);
                }
                Err(_) => self.discards += 1,
            }
        }
        if self.machine.is_established() {
            self.offer_more(k);
        }
        k.pf_read(fd);
    }

    fn on_timer(&mut self, token: u64, k: &mut ProcCtx<'_>) {
        self.ep.timer = None;
        let fx = self.machine.on_timer(token);
        self.drive(fx, k);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// A user-level BSP receiver: listens, counts delivered bytes, optionally
/// charging a per-byte consumer cost (the telnet display, a disk write…).
pub struct BspReceiverApp {
    local: PupAddr,
    machine: ReceiverMachine,
    ep: Endpoint,
    batch: bool,
    /// Queue depth at which the kernel should notify this receiver of
    /// backpressure; reflected to the sender as a `BSP_THROTTLE`.
    backpressure_mark: Option<usize>,
    /// Cost charged per delivered payload byte (consumer processing).
    pub per_byte_cost: SimDuration,
    /// Total payload bytes delivered in order.
    pub bytes: u64,
    /// Time of the first delivered byte.
    pub first_byte_at: Option<SimTime>,
    /// When the stream closed.
    pub closed_at: Option<SimTime>,
    /// Received frames discarded because they failed to decode (bad
    /// checksum, truncated header, not a Pup).
    pub discards: u64,
}

impl BspReceiverApp {
    /// Creates a receiver listening on `local`.
    pub fn new(local: PupAddr, cfg: BspConfig) -> Self {
        let checksummed = cfg.checksummed;
        let batch = cfg.batch;
        BspReceiverApp {
            machine: ReceiverMachine::new(local),
            local,
            ep: Endpoint::new(checksummed),
            batch,
            backpressure_mark: None,
            per_byte_cost: SimDuration::ZERO,
            bytes: 0,
            first_byte_at: None,
            closed_at: None,
            discards: 0,
        }
    }

    /// Sets the per-byte consumer cost.
    pub fn with_per_byte_cost(mut self, cost: SimDuration) -> Self {
        self.per_byte_cost = cost;
        self
    }

    /// Asks the kernel to notify this receiver when its port queue reaches
    /// `mark` packets; the notification is reflected to the sender as a
    /// `BSP_THROTTLE` so its window shrinks instead of the queue
    /// overflowing.
    pub fn with_backpressure_mark(mut self, mark: usize) -> Self {
        self.backpressure_mark = Some(mark);
        self
    }

    /// Receiver-machine statistics.
    pub fn stats(&self) -> crate::bsp::ReceiverStats {
        self.machine.stats
    }

    /// Whether the stream has closed.
    pub fn is_done(&self) -> bool {
        self.closed_at.is_some()
    }

    /// Achieved throughput in bytes/second of virtual time, if complete.
    pub fn throughput_bps(&self) -> Option<f64> {
        let start = self.first_byte_at?;
        let end = self.closed_at?;
        let secs = end.since(start).as_secs_f64();
        (secs > 0.0).then(|| self.bytes as f64 / secs)
    }
}

impl App for BspReceiverApp {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let batch = self.batch;
        let mark = self.backpressure_mark;
        self.ep.open(k, self.local, batch, mark);
    }

    fn on_backpressure(&mut self, _fd: Fd, _depth: usize, k: &mut ProcCtx<'_>) {
        let fx = self.machine.on_backpressure();
        let _ = self.ep.apply(fx, k);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let medium = Medium::experimental_3mb();
        for p in packets {
            k.compute("user:bsp", USER_PROTO_COST);
            let pup = match Pup::decode_frame(&medium, &p.bytes) {
                Ok(pup) => pup,
                Err(_) => {
                    self.discards += 1;
                    continue;
                }
            };
            self.ep.charge_rx_cksum(k, pup.data.len());
            let fx = self.machine.on_pup(&pup);
            let fb = self.ep.apply(fx, k);
            if !fb.delivered.is_empty() {
                if self.first_byte_at.is_none() {
                    self.first_byte_at = Some(k.now());
                }
                self.bytes += fb.delivered.len() as u64;
                if self.per_byte_cost > SimDuration::ZERO {
                    let total = SimDuration::from_nanos(
                        self.per_byte_cost.as_nanos() * fb.delivered.len() as u64,
                    );
                    k.compute("user:consume", total);
                }
            }
            if fb.closed {
                self.closed_at = Some(k.now());
            }
        }
        k.pf_read(fd);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_kernel::world::World;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    fn setup(
        payload_len: usize,
        faults: FaultModel,
        cfg: BspConfig,
    ) -> (
        World,
        pf_kernel::types::HostId,
        pf_kernel::types::ProcId,
        pf_kernel::types::HostId,
        pf_kernel::types::ProcId,
    ) {
        let mut w = World::new(7);
        let seg = w.add_segment(Medium::experimental_3mb(), faults);
        let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
        let src = PupAddr::new(1, 0x0A, 0x300);
        let dst = PupAddr::new(1, 0x0B, 0x400);
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 253) as u8).collect();
        let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
        let tx = w.spawn(a, Box::new(BspSenderApp::new(src, dst, payload, cfg)));
        (w, a, tx, b, rx)
    }

    #[test]
    fn bulk_transfer_over_simulated_kernel() {
        let (mut w, a, tx, b, rx) = setup(50_000, FaultModel::default(), BspConfig::default());
        w.run();
        let s = w.app_ref::<BspSenderApp>(a, tx).unwrap();
        let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
        assert!(s.is_done(), "sender closed");
        assert!(r.is_done(), "receiver closed");
        assert_eq!(r.bytes, 50_000);
        assert_eq!(s.stats().retransmits, 0, "lossless run");
        // Throughput lands in the tens of KB/s on MicroVAX-II costs
        // (§6.4 measured 38 KB/s for BSP).
        let tput = r.throughput_bps().unwrap();
        assert!(
            (10_000.0..120_000.0).contains(&tput),
            "throughput {tput:.0} B/s"
        );
    }

    #[test]
    fn transfer_survives_packet_loss() {
        let faults = FaultModel {
            loss: 0.05,
            duplication: 0.0,
            ..FaultModel::default()
        };
        let (mut w, a, tx, b, rx) = setup(20_000, faults, BspConfig::default());
        w.run_until(pf_sim::time::SimTime(60_000_000_000)); // 60 s cap
        let s = w.app_ref::<BspSenderApp>(a, tx).unwrap();
        let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
        assert!(s.is_done(), "sender recovered from loss");
        assert_eq!(r.bytes, 20_000, "exact byte stream despite loss");
        assert!(s.stats().retransmits > 0, "loss forced retransmissions");
    }

    #[test]
    fn transfer_survives_duplication() {
        let faults = FaultModel {
            loss: 0.0,
            duplication: 0.1,
            ..FaultModel::default()
        };
        let (mut w, _a, _tx, b, rx) = setup(20_000, faults, BspConfig::default());
        w.run_until(pf_sim::time::SimTime(60_000_000_000));
        let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
        assert_eq!(r.bytes, 20_000, "duplicates filtered");
        assert!(r.stats().duplicates > 0);
    }

    #[test]
    fn transfer_survives_corruption_with_checksums() {
        let faults = FaultModel {
            corruption: 0.2,
            ..FaultModel::default()
        };
        let cfg = BspConfig {
            checksummed: true,
            ..BspConfig::default()
        };
        let (mut w, a, tx, b, rx) = setup(20_000, faults, cfg);
        w.run_until(pf_sim::time::SimTime(60_000_000_000));
        let s = w.app_ref::<BspSenderApp>(a, tx).unwrap();
        let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
        assert!(s.is_done(), "sender recovered from corruption");
        assert_eq!(r.bytes, 20_000, "exact byte stream despite bit flips");
        assert!(
            s.discards + r.discards > 0,
            "checksums caught corrupt frames"
        );
    }

    #[test]
    fn transfer_survives_truncation_and_reorder() {
        let faults = FaultModel {
            truncation: 0.1,
            reorder: 0.2,
            ..FaultModel::default()
        };
        let cfg = BspConfig {
            checksummed: true,
            ..BspConfig::default()
        };
        let (mut w, a, tx, b, rx) = setup(20_000, faults, cfg);
        w.run_until(pf_sim::time::SimTime(60_000_000_000));
        let s = w.app_ref::<BspSenderApp>(a, tx).unwrap();
        let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
        assert!(s.is_done(), "sender recovered from truncation + reorder");
        assert_eq!(r.bytes, 20_000);
    }

    #[test]
    fn sender_gives_up_across_a_permanent_partition() {
        let faults = FaultModel {
            loss: 1.0,
            ..FaultModel::default()
        };
        let cfg = BspConfig {
            max_retries: 4,
            ..BspConfig::default()
        };
        let (mut w, a, tx, _b, _rx) = setup(1_000, faults, cfg);
        w.run_until(pf_sim::time::SimTime(120_000_000_000));
        let s = w.app_ref::<BspSenderApp>(a, tx).unwrap();
        assert!(s.is_failed(), "retry cap turns a dead wire into a failure");
        assert!(!s.is_done());
        assert_eq!(s.stats().giveups, 1);
    }

    /// Acceptance: a backpressured sender converges instead of
    /// retry-storming. A window far wider than the receiver's port queue
    /// against a slow consumer overflows the queue and forces
    /// retransmissions; with a backpressure mark the kernel's signal is
    /// reflected as `BSP_THROTTLE`, the sender's window halves, and the
    /// overload becomes bounded latency instead of drops.
    #[test]
    fn backpressured_sender_converges_instead_of_retry_storming() {
        let run = |mark: Option<usize>| {
            let mut w = World::new(7);
            let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
            let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
            let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
            let cfg = BspConfig {
                window: 48,
                segment: 100,
                ..BspConfig::default()
            };
            let src = PupAddr::new(1, 0x0A, 0x300);
            let dst = PupAddr::new(1, 0x0B, 0x400);
            let payload: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
            let mut r = BspReceiverApp::new(dst, cfg.clone())
                .with_per_byte_cost(SimDuration::from_micros(50));
            if let Some(m) = mark {
                r = r.with_backpressure_mark(m);
            }
            let rx = w.spawn(b, Box::new(r));
            let tx = w.spawn(a, Box::new(BspSenderApp::new(src, dst, payload, cfg)));
            w.run_until(pf_sim::time::SimTime(300_000_000_000));
            let s = w.app_ref::<BspSenderApp>(a, tx).unwrap();
            let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
            assert!(s.is_done(), "transfer finished (mark {mark:?})");
            assert_eq!(r.bytes, 20_000, "exact byte stream (mark {mark:?})");
            let c = w.counters(b);
            (
                s.stats(),
                r.stats(),
                c.drops_queue_full + c.drops_interface,
                c.backpressure_signals,
            )
        };

        let (storm_tx, _storm_rx, storm_drops, storm_signals) = run(None);
        let (calm_tx, calm_rx, calm_drops, calm_signals) = run(Some(8));

        // Unthrottled: the 48-segment bursts overrun the receiver's kernel
        // queues (the NIC ring first, at these rates) and every loss costs
        // a go-back-N storm of retransmissions.
        assert!(storm_drops > 100, "wide window floods the receiver");
        assert!(storm_tx.retransmits > 100, "drops force a retry storm");
        assert_eq!(storm_signals, 0);
        assert_eq!(storm_tx.backpressure_events, 0);

        // Throttled: the kernel's mark crossing reaches the sender and the
        // window converges to what the receiver can absorb.
        assert!(calm_signals > 0, "kernel signaled the mark crossing");
        assert!(calm_rx.throttles_sent > 0, "receiver reflected it");
        assert!(calm_tx.backpressure_events > 0, "sender honored it");
        assert!(
            calm_drops * 4 < storm_drops,
            "backpressure cut drops: {calm_drops} vs {storm_drops}"
        );
        assert!(
            calm_tx.retransmits * 4 < storm_tx.retransmits,
            "and retransmissions: {} vs {}",
            calm_tx.retransmits,
            storm_tx.retransmits
        );
    }

    #[test]
    fn two_concurrent_streams_demultiplex_by_socket() {
        let mut w = World::new(7);
        let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
        let cfg = BspConfig::default();
        let rx1 = w.spawn(
            b,
            Box::new(BspReceiverApp::new(
                PupAddr::new(1, 0x0B, 0x111),
                cfg.clone(),
            )),
        );
        let rx2 = w.spawn(
            b,
            Box::new(BspReceiverApp::new(
                PupAddr::new(1, 0x0B, 0x222),
                cfg.clone(),
            )),
        );
        w.spawn(
            a,
            Box::new(BspSenderApp::new(
                PupAddr::new(1, 0x0A, 0x501),
                PupAddr::new(1, 0x0B, 0x111),
                vec![1u8; 5_000],
                cfg.clone(),
            )),
        );
        w.spawn(
            a,
            Box::new(BspSenderApp::new(
                PupAddr::new(1, 0x0A, 0x502),
                PupAddr::new(1, 0x0B, 0x222),
                vec![2u8; 7_000],
                cfg,
            )),
        );
        w.run();
        let r1 = w.app_ref::<BspReceiverApp>(b, rx1).unwrap();
        let r2 = w.app_ref::<BspReceiverApp>(b, rx2).unwrap();
        assert_eq!(r1.bytes, 5_000);
        assert_eq!(r2.bytes, 7_000);
        assert!(r1.is_done() && r2.is_done());
    }
}
