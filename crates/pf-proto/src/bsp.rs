//! BSP — the Pup Byte Stream Protocol, implemented at user level over the
//! packet filter (§5.1, measured in §6.4).
//!
//! The protocol proper is implemented as *pure state machines*
//! ([`SenderMachine`], [`ReceiverMachine`]) that consume Pups and timer
//! ticks and emit [`Effect`]s; thin adapters
//! ([`BspSenderApp`](crate::bsp_app::BspSenderApp),
//! [`BspReceiverApp`](crate::bsp_app::BspReceiverApp)) bind those machines
//! to the simulated kernel's
//! packet-filter system calls. This keeps the protocol unit-testable
//! without the simulator and lets the telnet experiment reuse the same
//! machines in streaming mode.
//!
//! Protocol shape (go-back-N, packet-sequenced):
//!
//! * connection: `RFC` → `OPEN` (retransmitted on timeout);
//! * data: `DATA`/`ADATA` packets carry a sequence number in the Pup id;
//!   `ADATA` ("acknowledgment requested") marks the last packet of a
//!   window burst, and the receiver answers it — these acks are exactly
//!   the "overhead packets" of figure 2-3 that a user-level implementation
//!   pays domain crossings for;
//! * acks are cumulative: the id is the next expected sequence number;
//!   out-of-order data is dropped and re-acked (go-back-N);
//! * close: `END` → `END_REPLY`, both retransmittable.
//!
//! "Pup (hence BSP) allows a maximum packet size of 568 bytes" (§6.4):
//! segments default to [`crate::pup::MAX_PUP_DATA`].

use crate::pup::{types, Pup, PupAddr, MAX_PUP_DATA};
use pf_sim::time::SimDuration;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// The sender's retransmission-timer token.
pub const RTO_TOKEN: u64 = 0xB59;

/// BSP tuning parameters.
#[derive(Debug, Clone)]
pub struct BspConfig {
    /// Window size in packets.
    pub window: usize,
    /// Data bytes per packet.
    pub segment: usize,
    /// Base retransmission timeout. Consecutive timeouts without forward
    /// progress back off exponentially from here.
    pub rto: SimDuration,
    /// Upper bound on the backed-off retransmission timeout.
    pub rto_cap: SimDuration,
    /// Consecutive unanswered retransmissions before the sender gives up
    /// and fails the channel (`Effect::Failed`).
    pub max_retries: u32,
    /// Whether to compute real Pup checksums (the paper's implementations
    /// did not — §6.3: "TCP checksums all data, whereas these
    /// implementations of VMTP do not", likewise BSP).
    pub checksummed: bool,
    /// In push mode, partial segments are sent as soon as the window
    /// allows (character streams); otherwise only full segments are sent
    /// until the stream is finished (bulk transfer).
    pub push: bool,
    /// Whether the endpoint uses received-packet batching. The original
    /// Stanford BSP code predates the batching feature (§3), so the table
    /// 6-6 measurements run with this off.
    pub batch: bool,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig {
            window: 4,
            segment: MAX_PUP_DATA,
            rto: SimDuration::from_millis(200),
            rto_cap: SimDuration::from_secs(3),
            max_retries: 16,
            checksummed: false,
            push: false,
            batch: true,
        }
    }
}

/// The exponentially backed-off timeout: `base << exponent`, capped.
///
/// Shared by BSP and VMTP so both stacks degrade the same way under
/// sustained loss or partition.
pub(crate) fn backed_off(base: SimDuration, cap: SimDuration, exponent: u32) -> SimDuration {
    let shifted = base.as_nanos().saturating_mul(1u64 << exponent.min(20));
    SimDuration::from_nanos(shifted.min(cap.as_nanos().max(base.as_nanos())))
}

/// An action a machine asks its host environment to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Transmit this Pup.
    Send(Pup),
    /// (Re)arm the retransmission timer.
    SetTimer(SimDuration, u64),
    /// Cancel the retransmission timer.
    CancelTimer(u64),
    /// In-order payload bytes for the application (receiver only).
    Deliver(Vec<u8>),
    /// The connection is established (sender only).
    Connected,
    /// The stream is fully closed.
    Closed,
    /// The sender exhausted `max_retries` backed-off retransmissions and
    /// gave up (sender only; the channel is dead).
    Failed,
}

/// Sender connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendState {
    Idle,
    Connecting,
    Established,
    Ending,
    Closed,
    Failed,
}

/// Counters the experiments harvest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Data packets transmitted (including retransmissions).
    pub data_packets: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// Cumulative acks processed.
    pub acks: u64,
    /// Payload bytes acknowledged.
    pub bytes_acked: u64,
    /// Channels abandoned after `max_retries` consecutive timeouts.
    pub giveups: u64,
    /// Backpressure notifications honored (each halves the effective
    /// window).
    pub backpressure_events: u64,
}

/// The BSP sending endpoint as a pure state machine.
#[derive(Debug)]
pub struct SenderMachine {
    cfg: BspConfig,
    local: PupAddr,
    remote: PupAddr,
    state: SendState,
    /// Next sequence number to assign.
    next_seq: u32,
    /// Lowest unacknowledged sequence number.
    base: u32,
    /// Sent, unacknowledged segments.
    inflight: BTreeMap<u32, Vec<u8>>,
    /// Bytes offered but not yet packetized.
    buffer: VecDeque<u8>,
    /// The application has finished offering data.
    eof: bool,
    end_seq: Option<u32>,
    timer_armed: bool,
    /// Consecutive retransmission timeouts without forward progress; the
    /// exponent of the backed-off RTO, reset whenever an ack advances,
    /// the connection opens, or the close completes.
    backoff: u32,
    /// Consecutive stale (non-advancing) acks seen; the third triggers a
    /// go-back retransmission. Reacting to *every* stale ack amplifies:
    /// each retransmitted duplicate provokes another stale ack, which
    /// would trigger another full-window resend, and so on without bound.
    dup_acks: u32,
    /// Effective window in packets: starts at `cfg.window`, halves on each
    /// kernel backpressure notification (never below 1), and recovers one
    /// packet per advancing ack — AIMD, so a saturated receiver port turns
    /// overload into bounded queueing instead of overflow churn.
    cwnd: usize,
    /// Statistics.
    pub stats: SenderStats,
}

impl SenderMachine {
    /// Creates a sender for `local` → `remote`.
    pub fn new(local: PupAddr, remote: PupAddr, cfg: BspConfig) -> Self {
        let cwnd = cfg.window;
        SenderMachine {
            cfg,
            local,
            remote,
            state: SendState::Idle,
            next_seq: 1,
            base: 1,
            inflight: BTreeMap::new(),
            buffer: VecDeque::new(),
            eof: false,
            end_seq: None,
            timer_armed: false,
            backoff: 0,
            dup_acks: 0,
            cwnd,
            stats: SenderStats::default(),
        }
    }

    /// Whether the stream is fully closed.
    pub fn is_closed(&self) -> bool {
        self.state == SendState::Closed
    }

    /// Whether the sender gave up after exhausting its retries.
    pub fn is_failed(&self) -> bool {
        self.state == SendState::Failed
    }

    /// The currently effective (backed-off, capped) retransmission
    /// timeout.
    pub fn current_rto(&self) -> SimDuration {
        backed_off(self.cfg.rto, self.cfg.rto_cap, self.backoff)
    }

    /// Whether the connection is established.
    pub fn is_established(&self) -> bool {
        matches!(self.state, SendState::Established | SendState::Ending)
    }

    /// Packets currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// The effective (backpressure-adjusted) window in packets.
    pub fn effective_window(&self) -> usize {
        self.cwnd
    }

    /// Responds to a kernel backpressure notification (the receiver port's
    /// queue crossed its high-water mark): halves the effective window,
    /// never below one packet. The window recovers one packet per
    /// advancing ack, so throughput converges on what the receiver drains
    /// instead of retry-storming a full queue.
    pub fn on_backpressure(&mut self) {
        self.stats.backpressure_events += 1;
        self.cwnd = (self.cwnd / 2).max(1);
    }

    /// Bytes offered but not yet packetized.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Initiates the connection.
    pub fn connect(&mut self) -> Vec<Effect> {
        assert_eq!(self.state, SendState::Idle, "connect() once");
        self.state = SendState::Connecting;
        let mut fx = vec![Effect::Send(self.rfc())];
        self.arm(&mut fx);
        fx
    }

    /// Offers payload bytes to the stream.
    pub fn offer(&mut self, data: &[u8]) -> Vec<Effect> {
        assert!(!self.eof, "offer() after finish()");
        self.buffer.extend(data.iter().copied());
        let mut fx = Vec::new();
        self.pump(&mut fx);
        fx
    }

    /// Declares end of stream; the machine closes once everything is
    /// acknowledged.
    pub fn finish(&mut self) -> Vec<Effect> {
        self.eof = true;
        let mut fx = Vec::new();
        self.pump(&mut fx);
        self.maybe_end(&mut fx);
        fx
    }

    /// Handles a received Pup addressed to this endpoint.
    pub fn on_pup(&mut self, pup: &Pup) -> Vec<Effect> {
        let mut fx = Vec::new();
        match (self.state, pup.ptype) {
            (SendState::Connecting, types::BSP_OPEN) => {
                self.state = SendState::Established;
                self.backoff = 0;
                self.disarm(&mut fx);
                fx.push(Effect::Connected);
                self.pump(&mut fx);
                self.maybe_end(&mut fx);
            }
            (SendState::Established | SendState::Ending, types::BSP_ACK) => {
                self.stats.acks += 1;
                let acked_to = pup.id;
                if acked_to > self.base {
                    while let Some((&seq, _)) = self.inflight.first_key_value() {
                        if seq < acked_to {
                            let (_, seg) =
                                self.inflight.pop_first().expect("first_key_value saw it");
                            self.stats.bytes_acked += seg.len() as u64;
                        } else {
                            break;
                        }
                    }
                    self.base = acked_to;
                    self.dup_acks = 0;
                    self.backoff = 0;
                    // Additive recovery from backpressure shrinkage: one
                    // packet of window per advancing ack.
                    self.cwnd = (self.cwnd + 1).min(self.cfg.window);
                    // Fresh progress: restart (or clear) the timer.
                    self.disarm(&mut fx);
                    if !self.inflight.is_empty() || self.end_seq.is_some() {
                        self.arm(&mut fx);
                    }
                } else if acked_to == self.base && acked_to < self.next_seq {
                    // A re-ack of exactly the current base: the receiver
                    // may be missing the base segment, or this may be the
                    // echo of a duplicate we ourselves retransmitted. Only
                    // a *third* consecutive stale ack goes back and
                    // resends — reacting to every one amplifies without
                    // bound. Acks older than the base carry no signal at
                    // all: a path switch mid-transfer (fabric failover)
                    // reorders in-flight acks, and an ack overtaken by a
                    // newer one is evidence of rerouting, not of loss.
                    self.dup_acks += 1;
                    if self.dup_acks >= 3 {
                        self.dup_acks = 0;
                        self.retransmit(&mut fx);
                    }
                }
                self.pump(&mut fx);
                self.maybe_end(&mut fx);
            }
            (SendState::Established | SendState::Ending, types::BSP_THROTTLE) => {
                self.on_backpressure();
            }
            (SendState::Ending, types::BSP_END_REPLY) => {
                self.state = SendState::Closed;
                self.backoff = 0;
                self.disarm(&mut fx);
                fx.push(Effect::Closed);
            }
            _ => {} // stray or duplicate control traffic
        }
        fx
    }

    /// Handles the retransmission timer.
    pub fn on_timer(&mut self, token: u64) -> Vec<Effect> {
        let mut fx = Vec::new();
        if token != RTO_TOKEN {
            return fx;
        }
        self.timer_armed = false;
        if matches!(
            self.state,
            SendState::Connecting | SendState::Established | SendState::Ending
        ) {
            if self.backoff >= self.cfg.max_retries {
                // Exhausted: fail the channel instead of retrying forever.
                self.state = SendState::Failed;
                self.stats.giveups += 1;
                fx.push(Effect::Failed);
                return fx;
            }
            self.backoff += 1;
        }
        match self.state {
            SendState::Connecting => {
                self.stats.retransmits += 1;
                fx.push(Effect::Send(self.rfc()));
                self.arm(&mut fx);
            }
            SendState::Established => {
                self.retransmit(&mut fx);
            }
            SendState::Ending => {
                self.stats.retransmits += 1;
                fx.push(Effect::Send(self.end_pup()));
                self.arm(&mut fx);
            }
            _ => {}
        }
        fx
    }

    fn rfc(&self) -> Pup {
        Pup::new(types::BSP_RFC, 0, self.remote, self.local, Vec::new())
    }

    fn end_pup(&self) -> Pup {
        Pup::new(
            types::BSP_END,
            self.end_seq.expect("END sent"),
            self.remote,
            self.local,
            Vec::new(),
        )
    }

    /// Sends as much of the buffer as the window allows.
    fn pump(&mut self, fx: &mut Vec<Effect>) {
        if self.state != SendState::Established {
            return;
        }
        loop {
            let window_open = (self.next_seq - self.base) < self.cwnd as u32;
            let full = self.buffer.len() >= self.cfg.segment;
            let flushable = !self.buffer.is_empty() && (self.eof || self.cfg.push);
            if !window_open || !(full || flushable) {
                break;
            }
            let n = self.buffer.len().min(self.cfg.segment);
            let chunk: Vec<u8> = self.buffer.drain(..n).collect();
            let seq = self.next_seq;
            self.next_seq += 1;
            // Ask for an ack when this fills the window or drains the
            // buffer — the end of a burst either way.
            let burst_end =
                (self.next_seq - self.base) >= self.cwnd as u32 || self.buffer.is_empty();
            let ptype = if burst_end {
                types::BSP_ADATA
            } else {
                types::BSP_DATA
            };
            let pup = Pup::new(ptype, seq, self.remote, self.local, chunk.clone());
            self.inflight.insert(seq, chunk);
            self.stats.data_packets += 1;
            fx.push(Effect::Send(pup));
            if !self.timer_armed {
                self.arm(fx);
            }
        }
    }

    /// Go-back-N: resend everything in flight, last packet asking for ack.
    fn retransmit(&mut self, fx: &mut Vec<Effect>) {
        if self.inflight.is_empty() {
            return;
        }
        let last = *self.inflight.keys().next_back().expect("non-empty");
        let packets: Vec<Pup> = self
            .inflight
            .iter()
            .map(|(&seq, seg)| {
                let ptype = if seq == last {
                    types::BSP_ADATA
                } else {
                    types::BSP_DATA
                };
                Pup::new(ptype, seq, self.remote, self.local, seg.clone())
            })
            .collect();
        for p in packets {
            self.stats.retransmits += 1;
            self.stats.data_packets += 1;
            fx.push(Effect::Send(p));
        }
        self.disarm(fx);
        self.arm(fx);
    }

    /// Sends END once everything is delivered and acknowledged.
    fn maybe_end(&mut self, fx: &mut Vec<Effect>) {
        if self.state == SendState::Established
            && self.eof
            && self.buffer.is_empty()
            && self.inflight.is_empty()
            && self.end_seq.is_none()
        {
            self.end_seq = Some(self.next_seq);
            self.state = SendState::Ending;
            fx.push(Effect::Send(self.end_pup()));
            self.disarm(fx);
            self.arm(fx);
        }
    }

    fn arm(&mut self, fx: &mut Vec<Effect>) {
        self.timer_armed = true;
        fx.push(Effect::SetTimer(self.current_rto(), RTO_TOKEN));
    }

    fn disarm(&mut self, fx: &mut Vec<Effect>) {
        if self.timer_armed {
            self.timer_armed = false;
            fx.push(Effect::CancelTimer(RTO_TOKEN));
        }
    }
}

/// Receiver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// In-order data packets delivered.
    pub delivered_packets: u64,
    /// Payload bytes delivered in order.
    pub delivered_bytes: u64,
    /// Duplicate packets discarded.
    pub duplicates: u64,
    /// Out-of-order packets discarded (go-back-N).
    pub out_of_order: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Throttle packets sent in response to kernel backpressure.
    pub throttles_sent: u64,
}

/// The BSP receiving endpoint as a pure state machine.
#[derive(Debug)]
pub struct ReceiverMachine {
    local: PupAddr,
    /// Next expected sequence number.
    expected: u32,
    /// Whether the stream has closed.
    closed: bool,
    /// The sending peer, learned from the first packet seen (where
    /// kernel-backpressure throttles are addressed).
    peer: Option<PupAddr>,
    /// Statistics.
    pub stats: ReceiverStats,
}

impl ReceiverMachine {
    /// Creates a receiver listening on `local`.
    pub fn new(local: PupAddr) -> Self {
        ReceiverMachine {
            local,
            expected: 1,
            closed: false,
            peer: None,
            stats: ReceiverStats::default(),
        }
    }

    /// Whether the stream has closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Responds to the kernel's backpressure notification on this
    /// endpoint's port: sends the peer a `BSP_THROTTLE` so the sender
    /// shrinks its window instead of overflowing the queue. A no-op until
    /// a peer is known.
    pub fn on_backpressure(&mut self) -> Vec<Effect> {
        let mut fx = Vec::new();
        if let Some(peer) = self.peer {
            self.stats.throttles_sent += 1;
            fx.push(Effect::Send(Pup::new(
                types::BSP_THROTTLE,
                self.expected,
                peer,
                self.local,
                Vec::new(),
            )));
        }
        fx
    }

    /// Handles a received Pup addressed to this endpoint.
    pub fn on_pup(&mut self, pup: &Pup) -> Vec<Effect> {
        let mut fx = Vec::new();
        self.peer = Some(pup.src);
        match pup.ptype {
            types::BSP_RFC => {
                fx.push(Effect::Send(Pup::new(
                    types::BSP_OPEN,
                    0,
                    pup.src,
                    self.local,
                    Vec::new(),
                )));
            }
            types::BSP_DATA | types::BSP_ADATA => {
                if pup.id == self.expected {
                    self.expected += 1;
                    self.stats.delivered_packets += 1;
                    self.stats.delivered_bytes += pup.data.len() as u64;
                    fx.push(Effect::Deliver(pup.data.clone()));
                    if pup.ptype == types::BSP_ADATA {
                        self.ack(pup.src, &mut fx);
                    }
                } else if pup.id < self.expected {
                    self.stats.duplicates += 1;
                    self.ack(pup.src, &mut fx);
                } else {
                    // A gap: drop and re-ack what we expect (go-back-N).
                    self.stats.out_of_order += 1;
                    self.ack(pup.src, &mut fx);
                }
            }
            types::BSP_END => {
                if pup.id == self.expected && !self.closed {
                    self.closed = true;
                    fx.push(Effect::Closed);
                }
                // Always answer (covers a lost END_REPLY).
                if pup.id <= self.expected {
                    fx.push(Effect::Send(Pup::new(
                        types::BSP_END_REPLY,
                        pup.id,
                        pup.src,
                        self.local,
                        Vec::new(),
                    )));
                }
            }
            _ => {}
        }
        fx
    }

    fn ack(&mut self, to: PupAddr, fx: &mut Vec<Effect>) {
        self.stats.acks_sent += 1;
        fx.push(Effect::Send(Pup::new(
            types::BSP_ACK,
            self.expected,
            to,
            self.local,
            Vec::new(),
        )));
    }
}

#[cfg(test)]
mod machine_tests {
    use super::*;

    fn addrs() -> (PupAddr, PupAddr) {
        (PupAddr::new(1, 0x0A, 0x100), PupAddr::new(1, 0x0B, 0x200))
    }

    /// Runs sender and receiver to completion over a perfect in-order
    /// channel, returning delivered bytes.
    fn run_lossless(payload: &[u8], cfg: BspConfig) -> Vec<u8> {
        let (sa, ra) = addrs();
        let mut s = SenderMachine::new(sa, ra, cfg);
        let mut r = ReceiverMachine::new(ra);
        let mut delivered = Vec::new();
        let mut to_recv: VecDeque<Pup> = VecDeque::new();
        let mut to_send: VecDeque<Pup> = VecDeque::new();

        let handle = |fx: Vec<Effect>, to_other: &mut VecDeque<Pup>, delivered: &mut Vec<u8>| {
            for e in fx {
                match e {
                    Effect::Send(p) => to_other.push_back(p),
                    Effect::Deliver(d) => delivered.extend(d),
                    _ => {}
                }
            }
        };

        handle(s.connect(), &mut to_recv, &mut delivered);
        handle(s.offer(payload), &mut to_recv, &mut delivered);
        handle(s.finish(), &mut to_recv, &mut delivered);
        let mut steps = 0;
        while !(s.is_closed() && to_recv.is_empty() && to_send.is_empty()) {
            steps += 1;
            assert!(steps < 100_000, "machine livelock");
            if let Some(p) = to_recv.pop_front() {
                handle(r.on_pup(&p), &mut to_send, &mut delivered);
            }
            if let Some(p) = to_send.pop_front() {
                handle(s.on_pup(&p), &mut to_recv, &mut delivered);
            }
        }
        assert!(r.is_closed());
        delivered
    }

    #[test]
    fn lossless_transfer_delivers_exact_stream() {
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let got = run_lossless(&payload, BspConfig::default());
        assert_eq!(got, payload);
    }

    #[test]
    fn empty_stream_closes() {
        let got = run_lossless(&[], BspConfig::default());
        assert!(got.is_empty());
    }

    #[test]
    fn single_byte_stream() {
        let got = run_lossless(
            &[42],
            BspConfig {
                push: true,
                ..Default::default()
            },
        );
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn segments_respect_max_size() {
        let (sa, ra) = addrs();
        let mut s = SenderMachine::new(sa, ra, BspConfig::default());
        let _ = s.connect();
        let open = Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new());
        let _ = s.on_pup(&open);
        let fx = s.offer(&vec![0u8; 5000]);
        for e in fx {
            if let Effect::Send(p) = e {
                assert!(p.data.len() <= MAX_PUP_DATA);
            }
        }
    }

    #[test]
    fn window_limits_inflight() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 3,
            segment: 100,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let fx = s.offer(&vec![0u8; 10_000]);
        let sent = fx.iter().filter(|e| matches!(e, Effect::Send(_))).count();
        assert_eq!(sent, 3, "window of 3 caps the burst");
        assert_eq!(s.inflight(), 3);
    }

    #[test]
    fn burst_end_requests_ack() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 3,
            segment: 100,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let fx = s.offer(&vec![0u8; 10_000]);
        let types_sent: Vec<u8> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Send(p) => Some(p.ptype),
                _ => None,
            })
            .collect();
        assert_eq!(
            types_sent,
            vec![types::BSP_DATA, types::BSP_DATA, types::BSP_ADATA],
            "only the last packet of the burst demands an ack"
        );
    }

    #[test]
    fn retransmit_on_timeout_is_go_back_n() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 2,
            segment: 10,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let _ = s.offer(&[1u8; 20]);
        assert_eq!(s.inflight(), 2);
        let fx = s.on_timer(RTO_TOKEN);
        let resent: Vec<u32> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Send(p) => Some(p.id),
                _ => None,
            })
            .collect();
        assert_eq!(resent, vec![1, 2]);
        assert_eq!(s.stats.retransmits, 2);
    }

    #[test]
    fn reordered_stale_acks_are_not_loss_evidence() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 4,
            segment: 10,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let _ = s.offer(&[7u8; 40]);
        assert_eq!(s.inflight(), 4);
        // The cumulative ack for 1..3 arrives first; the per-segment acks
        // it overtook (a path switch reordered them) straggle in after.
        let ack = |n: u32| Pup::new(types::BSP_ACK, n, ra, sa, Vec::new());
        let _ = s.on_pup(&ack(3));
        for old in [2u32, 1, 2, 1, 2, 1] {
            let _ = s.on_pup(&ack(old));
        }
        assert_eq!(
            s.stats.retransmits, 0,
            "overtaken acks are rerouting evidence, not loss evidence"
        );
        // Re-acks of the *current* base still mean the base is missing:
        // the third one goes back and resends.
        for _ in 0..3 {
            let _ = s.on_pup(&ack(3));
        }
        assert!(s.stats.retransmits > 0, "true dup-ack signal still fires");
        assert_eq!(s.stats.giveups, 0);
    }

    /// A transfer that survives a mid-stream path switch: at the flip
    /// point every queued packet in both directions is duplicated and
    /// the copies delivered in reverse order (old path drains late while
    /// the new path races ahead). The stream must complete with no
    /// give-up.
    #[test]
    fn transfer_survives_path_switch_reordering() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 4,
            segment: 100,
            ..Default::default()
        };
        let payload: Vec<u8> = (0..2_000u32).map(|i| (i % 241) as u8).collect();
        let mut s = SenderMachine::new(sa, ra, cfg);
        let mut r = ReceiverMachine::new(ra);
        let mut delivered = Vec::new();
        let mut to_recv: VecDeque<Pup> = VecDeque::new();
        let mut to_send: VecDeque<Pup> = VecDeque::new();
        let handle = |fx: Vec<Effect>, out: &mut VecDeque<Pup>, delivered: &mut Vec<u8>| {
            for e in fx {
                match e {
                    Effect::Send(p) => out.push_back(p),
                    Effect::Deliver(d) => delivered.extend(d),
                    _ => {}
                }
            }
        };
        handle(s.connect(), &mut to_recv, &mut delivered);
        handle(s.offer(&payload), &mut to_recv, &mut delivered);
        handle(s.finish(), &mut to_recv, &mut delivered);
        let mut steps = 0u32;
        let mut flipped = false;
        while !(s.is_closed() && to_recv.is_empty() && to_send.is_empty()) {
            steps += 1;
            assert!(steps < 100_000, "machine livelock");
            if steps == 10 && !flipped {
                flipped = true;
                let reroute = |q: &mut VecDeque<Pup>| {
                    let dup: Vec<Pup> = q.iter().rev().cloned().collect();
                    q.extend(dup);
                };
                reroute(&mut to_recv);
                reroute(&mut to_send);
            }
            if let Some(p) = to_recv.pop_front() {
                handle(r.on_pup(&p), &mut to_send, &mut delivered);
            }
            if let Some(p) = to_send.pop_front() {
                handle(s.on_pup(&p), &mut to_recv, &mut delivered);
            }
        }
        assert!(flipped, "the path switch actually happened");
        assert_eq!(delivered, payload, "exact stream despite dup + reorder");
        assert_eq!(s.stats.giveups, 0);
        assert!(r.is_closed());
    }

    #[test]
    fn receiver_drops_out_of_order_and_reacks() {
        let (sa, ra) = addrs();
        let mut r = ReceiverMachine::new(ra);
        // Sequence 2 arrives before 1.
        let fx = r.on_pup(&Pup::new(types::BSP_ADATA, 2, ra, sa, vec![2]));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Send(p) if p.ptype == types::BSP_ACK && p.id == 1)));
        assert!(!fx.iter().any(|e| matches!(e, Effect::Deliver(_))));
        assert_eq!(r.stats.out_of_order, 1);
        // Now 1 arrives: delivered; 2 must be retransmitted by the sender.
        let fx = r.on_pup(&Pup::new(types::BSP_DATA, 1, ra, sa, vec![1]));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Deliver(d) if d == &vec![1u8])));
    }

    #[test]
    fn receiver_discards_duplicates() {
        let (sa, ra) = addrs();
        let mut r = ReceiverMachine::new(ra);
        let p = Pup::new(types::BSP_ADATA, 1, ra, sa, vec![7]);
        let _ = r.on_pup(&p);
        let fx = r.on_pup(&p);
        assert!(!fx.iter().any(|e| matches!(e, Effect::Deliver(_))));
        assert_eq!(r.stats.duplicates, 1);
        assert_eq!(r.stats.delivered_bytes, 1);
    }

    #[test]
    fn third_stale_ack_triggers_fast_retransmit() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 4,
            segment: 10,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let _ = s.offer(&[1u8; 40]);
        // Two stale acks: patience (duplicates may just be echoes).
        let stale = Pup::new(types::BSP_ACK, 1, sa, ra, Vec::new());
        assert!(!s
            .on_pup(&stale)
            .iter()
            .any(|e| matches!(e, Effect::Send(_))));
        assert!(!s
            .on_pup(&stale)
            .iter()
            .any(|e| matches!(e, Effect::Send(_))));
        // The third goes back and resends the window.
        let fx = s.on_pup(&stale);
        let resent = fx.iter().filter(|e| matches!(e, Effect::Send(_))).count();
        assert_eq!(resent, 4, "whole window resent on the third stale ack");
    }

    #[test]
    fn end_reply_lost_is_recovered() {
        let (sa, ra) = addrs();
        let mut r = ReceiverMachine::new(ra);
        let end = Pup::new(types::BSP_END, 1, ra, sa, Vec::new());
        let fx1 = r.on_pup(&end);
        assert!(fx1.iter().any(|e| matches!(e, Effect::Closed)));
        // The sender never got END_REPLY and retransmits END: the closed
        // receiver must answer again, without a second Closed.
        let fx2 = r.on_pup(&end);
        assert!(fx2
            .iter()
            .any(|e| matches!(e, Effect::Send(p) if p.ptype == types::BSP_END_REPLY)));
        assert!(!fx2.iter().any(|e| matches!(e, Effect::Closed)));
    }

    #[test]
    fn rfc_retransmitted_until_open() {
        let (sa, ra) = addrs();
        let mut s = SenderMachine::new(sa, ra, BspConfig::default());
        let _ = s.connect();
        let fx = s.on_timer(RTO_TOKEN);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Send(p) if p.ptype == types::BSP_RFC)));
        assert!(!s.is_established());
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        assert!(s.is_established());
    }

    #[test]
    fn timeouts_back_off_exponentially_to_the_cap() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            rto: SimDuration::from_millis(100),
            rto_cap: SimDuration::from_millis(450),
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let mut rtos = Vec::new();
        for _ in 0..4 {
            let fx = s.on_timer(RTO_TOKEN);
            rtos.extend(fx.iter().filter_map(|e| match e {
                Effect::SetTimer(d, _) => Some(d.as_micros()),
                _ => None,
            }));
        }
        assert_eq!(
            rtos,
            vec![200_000, 400_000, 450_000, 450_000],
            "doubling from the base, then pinned at the cap"
        );
    }

    #[test]
    fn progress_resets_the_backoff() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 2,
            segment: 10,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let _ = s.offer(&[1u8; 20]);
        let _ = s.on_timer(RTO_TOKEN);
        let _ = s.on_timer(RTO_TOKEN);
        assert!(s.current_rto() > s.cfg.rto);
        // An advancing ack restores the base RTO.
        let _ = s.on_pup(&Pup::new(types::BSP_ACK, 2, sa, ra, Vec::new()));
        assert_eq!(s.current_rto(), s.cfg.rto);
    }

    #[test]
    fn retry_exhaustion_fails_the_channel() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            max_retries: 3,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        for _ in 0..3 {
            let fx = s.on_timer(RTO_TOKEN);
            assert!(fx
                .iter()
                .any(|e| matches!(e, Effect::Send(p) if p.ptype == types::BSP_RFC)));
        }
        let fx = s.on_timer(RTO_TOKEN);
        assert!(fx.iter().any(|e| matches!(e, Effect::Failed)));
        assert!(!fx.iter().any(|e| matches!(e, Effect::Send(_))));
        assert!(s.is_failed());
        assert_eq!(s.stats.giveups, 1);
        // A failed channel is inert.
        assert!(s.on_timer(RTO_TOKEN).is_empty());
    }

    #[test]
    fn throttle_halves_the_window_and_acks_recover_it() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            window: 8,
            segment: 10,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        assert_eq!(s.effective_window(), 8);
        // Receiver-side kernel backpressure arrives as a THROTTLE pup.
        let throttle = Pup::new(types::BSP_THROTTLE, 1, sa, ra, Vec::new());
        let _ = s.on_pup(&throttle);
        assert_eq!(s.effective_window(), 4);
        let _ = s.on_pup(&throttle);
        let _ = s.on_pup(&throttle);
        let _ = s.on_pup(&throttle);
        assert_eq!(s.effective_window(), 1, "never below one packet");
        assert_eq!(s.stats.backpressure_events, 4);
        // The shrunken window caps the burst.
        let fx = s.offer(&[1u8; 80]);
        let sent = fx.iter().filter(|e| matches!(e, Effect::Send(_))).count();
        assert_eq!(sent, 1, "one packet in flight under full throttle");
        // Advancing acks recover the window additively.
        let _ = s.on_pup(&Pup::new(types::BSP_ACK, 2, sa, ra, Vec::new()));
        assert_eq!(s.effective_window(), 2);
        let _ = s.on_pup(&Pup::new(types::BSP_ACK, 4, sa, ra, Vec::new()));
        assert_eq!(s.effective_window(), 3);
    }

    #[test]
    fn receiver_reflects_backpressure_to_the_learned_peer() {
        let (sa, ra) = addrs();
        let mut r = ReceiverMachine::new(ra);
        // No peer yet: nothing to throttle.
        assert!(r.on_backpressure().is_empty());
        let _ = r.on_pup(&Pup::new(types::BSP_ADATA, 1, ra, sa, vec![7]));
        let fx = r.on_backpressure();
        assert!(fx.iter().any(
            |e| matches!(e, Effect::Send(p) if p.ptype == types::BSP_THROTTLE && p.dst == sa)
        ));
        assert_eq!(r.stats.throttles_sent, 1);
    }

    #[test]
    fn push_mode_sends_partial_segments() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            push: true,
            segment: 100,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let fx = s.offer(b"abc");
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Send(p) if p.data == b"abc".to_vec())));
    }

    #[test]
    fn bulk_mode_waits_for_full_segments() {
        let (sa, ra) = addrs();
        let cfg = BspConfig {
            push: false,
            segment: 100,
            ..Default::default()
        };
        let mut s = SenderMachine::new(sa, ra, cfg);
        let _ = s.connect();
        let _ = s.on_pup(&Pup::new(types::BSP_OPEN, 0, sa, ra, Vec::new()));
        let fx = s.offer(b"abc");
        assert!(!fx.iter().any(|e| matches!(e, Effect::Send(_))));
        // finish() flushes the remainder.
        let fx = s.finish();
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Send(p) if p.data == b"abc".to_vec())));
    }
}
