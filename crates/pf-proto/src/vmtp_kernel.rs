//! The kernel-resident VMTP implementation (§6.3's comparison point).
//!
//! The same [`crate::vmtp`] machines as the user-level variant, embedded
//! in a [`KernelProtocol`]: protocol packets — responses, acks, retries,
//! duplicate suppression — are confined to the kernel (figure 2-3), and a
//! user process crosses the domain boundary only twice per *transaction*
//! (request in, completion out) instead of twice per *packet*.

use crate::vmtp::{ClientMachine, ServerMachine, VEffect, VmtpPacket, VMTP_ETHERTYPE};
use crate::vmtp_user::{file_read_response, fs_read_cost, Workload};
use pf_kernel::app::App;
use pf_kernel::kproto::KernelProtocol;
use pf_kernel::types::{ProcId, SockId};
use pf_kernel::world::{KernelCtx, ProcCtx};
use pf_net::medium::Medium;
use pf_sim::queue::EventHandle;
use pf_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Kernel VMTP input processing per packet (no data checksum — §6.3).
pub const VMTP_KIN: SimDuration = SimDuration::from_micros(950);

/// Kernel VMTP output processing per packet.
pub const VMTP_KOUT: SimDuration = SimDuration::from_micros(850);

/// User request ops.
pub mod ops {
    /// Register as the server for entity `meta[0]`.
    pub const LISTEN: u32 = 1;
    /// Start a transaction: `meta = [server_entity, server_eth,
    /// response_bytes, client_entity]`, `data` = request payload.
    pub const INVOKE: u32 = 2;
    /// Answer a delivered request: `meta = [client, trans, client_eth, 0]`,
    /// `data` = response payload.
    pub const RESPOND: u32 = 3;
    /// Completion to a server: a request arrived;
    /// `meta = [client, trans, opcode, client_eth]`.
    pub const REQUEST: u32 = 10;
    /// Completion to a client: the transaction finished; `meta[0]` = trans.
    pub const DONE: u32 = 11;
    /// Completion to a client: the transaction was abandoned after retry
    /// exhaustion; `meta[0]` = trans.
    pub const FAILED: u32 = 12;
}

struct ClientSlot {
    machine: ClientMachine,
    timer: Option<EventHandle>,
}

/// Kernel-resident VMTP.
#[derive(Default)]
pub struct KernelVmtp {
    clients: HashMap<SockId, ClientSlot>,
    /// Server entity → (machine, owning socket).
    servers: HashMap<u32, (ServerMachine, SockId)>,
    /// Packets processed by the kernel input routine.
    pub packets_in: u64,
    /// Frames discarded by the input routine (undecodable or corrupt).
    pub discards: u64,
    /// Client transactions abandoned after retry exhaustion.
    pub giveups: u64,
}

impl KernelVmtp {
    /// Creates the protocol module.
    pub fn new() -> Self {
        Self::default()
    }

    fn apply_client(&mut self, sock: SockId, fx: Vec<VEffect>, k: &mut KernelCtx<'_>) {
        let medium = Medium::standard_10mb();
        let (_, my_eth) = k.link_info();
        for e in fx {
            match e {
                VEffect::Send(pkt, eth_dst) => {
                    k.charge("vmtp:output", VMTP_KOUT);
                    k.transmit(&pkt.encode_frame(&medium, eth_dst, my_eth));
                }
                VEffect::SetTimer(d, _) => {
                    let slot = self.clients.get_mut(&sock).expect("client slot");
                    if let Some(h) = slot.timer.take() {
                        k.cancel_timer(h);
                    }
                    slot.timer = Some(k.set_timer(d, sock.0 as u64));
                }
                VEffect::CancelTimer(_) => {
                    let slot = self.clients.get_mut(&sock).expect("client slot");
                    if let Some(h) = slot.timer.take() {
                        k.cancel_timer(h);
                    }
                }
                VEffect::Complete { trans, data } => {
                    k.complete(sock, ops::DONE, data, [u64::from(trans), 0, 0, 0]);
                }
                VEffect::Failed { trans } => {
                    self.giveups += 1;
                    k.complete(sock, ops::FAILED, Vec::new(), [u64::from(trans), 0, 0, 0]);
                }
                VEffect::DeliverRequest { .. } => unreachable!("client machine"),
            }
        }
    }

    fn apply_server(&mut self, entity: u32, fx: Vec<VEffect>, k: &mut KernelCtx<'_>) {
        let medium = Medium::standard_10mb();
        let (_, my_eth) = k.link_info();
        for e in fx {
            match e {
                VEffect::Send(pkt, eth_dst) => {
                    k.charge("vmtp:output", VMTP_KOUT);
                    k.transmit(&pkt.encode_frame(&medium, eth_dst, my_eth));
                }
                VEffect::DeliverRequest {
                    client,
                    client_eth,
                    trans,
                    opcode,
                    data,
                } => {
                    let (_, sock) = self.servers[&entity];
                    k.complete(
                        sock,
                        ops::REQUEST,
                        data,
                        [
                            u64::from(client),
                            u64::from(trans),
                            u64::from(opcode),
                            client_eth,
                        ],
                    );
                }
                VEffect::SetTimer(..) | VEffect::CancelTimer(_) => {}
                VEffect::Complete { .. } | VEffect::Failed { .. } => {
                    unreachable!("server machine")
                }
            }
        }
    }
}

impl KernelProtocol for KernelVmtp {
    fn name(&self) -> &'static str {
        "vmtp"
    }

    fn claims(&self, ethertype: u16) -> bool {
        ethertype == VMTP_ETHERTYPE
    }

    fn input(&mut self, frame: Vec<u8>, k: &mut KernelCtx<'_>) {
        let medium = Medium::standard_10mb();
        let Some((pkt, eth_src)) = VmtpPacket::decode_frame(&medium, &frame) else {
            self.discards += 1;
            return;
        };
        self.packets_in += 1;
        k.charge("vmtp:input", VMTP_KIN);
        let dst = pkt.dst_entity;
        if let Some((machine, _)) = self.servers.get_mut(&dst) {
            let fx = machine.on_packet(&pkt, eth_src);
            self.apply_server(dst, fx, k);
            return;
        }
        // Route to the client socket whose machine owns this entity.
        let target = self
            .clients
            .iter()
            .find(|(_, slot)| slot.machine.entity() == dst)
            .map(|(s, _)| *s);
        if let Some(sock) = target {
            let fx = {
                let slot = self.clients.get_mut(&sock).expect("slot");
                slot.machine.on_packet(&pkt)
            };
            self.apply_client(sock, fx, k);
        }
    }

    fn user_request(
        &mut self,
        _proc: ProcId,
        sock: SockId,
        op: u32,
        data: Vec<u8>,
        meta: [u64; 4],
        k: &mut KernelCtx<'_>,
    ) {
        match op {
            ops::LISTEN => {
                let entity = meta[0] as u32;
                self.servers
                    .insert(entity, (ServerMachine::new(entity), sock));
            }
            ops::INVOKE => {
                let server_entity = meta[0] as u32;
                let server_eth = meta[1];
                let response_bytes = meta[2] as u32;
                let client_entity = meta[3] as u32;
                let slot = self.clients.entry(sock).or_insert_with(|| ClientSlot {
                    machine: ClientMachine::new(
                        client_entity,
                        server_entity,
                        server_eth,
                        SimDuration::from_millis(200),
                    ),
                    timer: None,
                });
                let fx = slot.machine.invoke(response_bytes, data);
                self.apply_client(sock, fx, k);
            }
            ops::RESPOND => {
                let client = meta[0] as u32;
                let trans = meta[1] as u32;
                let client_eth = meta[2];
                // Find the server machine owned by this socket.
                let entity = self
                    .servers
                    .iter()
                    .find(|(_, (_, s))| *s == sock)
                    .map(|(e, _)| *e);
                if let Some(entity) = entity {
                    let fx = {
                        let (machine, _) = self.servers.get_mut(&entity).expect("found");
                        machine.respond(client, client_eth, trans, data)
                    };
                    self.apply_server(entity, fx, k);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, k: &mut KernelCtx<'_>) {
        let sock = SockId(token as usize);
        let fx = match self.clients.get_mut(&sock) {
            Some(slot) => {
                slot.timer = None;
                slot.machine.on_timer(crate::vmtp::VMTP_RTO_TOKEN)
            }
            None => return,
        };
        self.apply_client(sock, fx, k);
    }

    fn sock_closed(&mut self, sock: SockId, k: &mut KernelCtx<'_>) {
        if let Some(slot) = self.clients.remove(&sock) {
            if let Some(h) = slot.timer {
                k.cancel_timer(h);
            }
        }
        self.servers.retain(|_, (_, s)| *s != sock);
    }
}

/// A client process using the kernel-resident VMTP: one system call per
/// transaction, one completion per transaction.
pub struct KVmtpClient {
    entity: u32,
    server_entity: u32,
    server_eth: u64,
    workload: Workload,
    sock: Option<SockId>,
    /// Completed transactions.
    pub completed: u64,
    /// Response bytes received.
    pub bytes: u64,
    /// First invoke time.
    pub started_at: Option<SimTime>,
    /// Last completion time.
    pub finished_at: Option<SimTime>,
}

impl KVmtpClient {
    /// Creates a client for `workload` against `server_entity`@`server_eth`.
    pub fn new(entity: u32, server_entity: u32, server_eth: u64, workload: Workload) -> Self {
        KVmtpClient {
            entity,
            server_entity,
            server_eth,
            workload,
            sock: None,
            completed: 0,
            bytes: 0,
            started_at: None,
            finished_at: None,
        }
    }

    /// Whether the workload completed.
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Mean elapsed time per operation, if complete.
    pub fn per_op(&self) -> Option<SimDuration> {
        Some(SimDuration::from_nanos(
            self.finished_at?.since(self.started_at?).as_nanos() / self.workload.ops.max(1),
        ))
    }

    /// Bulk rate in bytes/second, if complete.
    pub fn throughput_bps(&self) -> Option<f64> {
        let secs = self.finished_at?.since(self.started_at?).as_secs_f64();
        (secs > 0.0).then(|| self.bytes as f64 / secs)
    }

    fn invoke(&mut self, k: &mut ProcCtx<'_>) {
        k.ksock_request(
            self.sock.expect("sock open"),
            ops::INVOKE,
            Vec::new(),
            [
                u64::from(self.server_entity),
                self.server_eth,
                u64::from(self.workload.response_bytes),
                u64::from(self.entity),
            ],
        );
    }
}

impl App for KVmtpClient {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        self.sock = Some(k.ksock_open("vmtp").expect("vmtp registered"));
        self.started_at = Some(k.now());
        self.invoke(k);
    }

    fn on_socket(
        &mut self,
        _sock: SockId,
        op: u32,
        data: Vec<u8>,
        _meta: [u64; 4],
        k: &mut ProcCtx<'_>,
    ) {
        if op != ops::DONE {
            return;
        }
        self.completed += 1;
        self.bytes += data.len() as u64;
        if self.completed >= self.workload.ops {
            self.finished_at = Some(k.now());
        } else {
            self.invoke(k);
        }
    }
}

/// A file-read server process over the kernel-resident VMTP.
pub struct KVmtpServer {
    entity: u32,
    sock: Option<SockId>,
    /// Requests served.
    pub served: u64,
}

impl KVmtpServer {
    /// Creates a server for `entity`.
    pub fn new(entity: u32) -> Self {
        KVmtpServer {
            entity,
            sock: None,
            served: 0,
        }
    }
}

impl App for KVmtpServer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("vmtp").expect("vmtp registered");
        k.ksock_request(
            sock,
            ops::LISTEN,
            Vec::new(),
            [u64::from(self.entity), 0, 0, 0],
        );
        self.sock = Some(sock);
    }

    fn on_socket(
        &mut self,
        sock: SockId,
        op: u32,
        _data: Vec<u8>,
        meta: [u64; 4],
        k: &mut ProcCtx<'_>,
    ) {
        if op != ops::REQUEST {
            return;
        }
        self.served += 1;
        let response = file_read_response(meta[2] as u32);
        // The kernel-resident implementation hands buffer-cache pages to
        // the protocol without a separate user-space copy of the file
        // data; only the fixed file-system lookup cost applies here. (The
        // user-level server cannot avoid its read(2) copy — one of the
        // §6.3 penalties of living outside the kernel.)
        k.compute("user:fsread", fs_read_cost(0));
        k.ksock_request(sock, ops::RESPOND, response, [meta[0], meta[1], meta[3], 0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmtp::SEGMENT_BYTES;
    use crate::vmtp_user::{VmtpUserClient, VmtpUserServer};
    use pf_kernel::types::HostId;
    use pf_kernel::world::World;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::SimClock;

    const SERVER_ENTITY: u32 = 0x20;
    const CLIENT_ENTITY: u32 = 0x10;
    const SERVER_ETH: u64 = 0x0B;

    fn kernel_world(costs: CostModel) -> (World, HostId, HostId) {
        let mut w = World::new(17);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let c = w.add_host("client", seg, 0x0A, costs.clone());
        let s = w.add_host("server", seg, SERVER_ETH, costs);
        w.register_protocol(c, Box::new(KernelVmtp::new()));
        w.register_protocol(s, Box::new(KernelVmtp::new()));
        (w, c, s)
    }

    fn run_kernel(ops: u64, response_bytes: u32, costs: CostModel) -> (SimDuration, f64) {
        let (mut w, c, s) = kernel_world(costs);
        w.spawn(s, Box::new(KVmtpServer::new(SERVER_ENTITY)));
        let p = w.spawn(
            c,
            Box::new(KVmtpClient::new(
                CLIENT_ENTITY,
                SERVER_ENTITY,
                SERVER_ETH,
                Workload {
                    ops,
                    response_bytes,
                },
            )),
        );
        w.run_until(SimTime(300 * 1_000_000_000));
        let app = w.app_ref::<KVmtpClient>(c, p).unwrap();
        assert!(app.is_done(), "completed {}", app.completed);
        (app.per_op().unwrap(), app.throughput_bps().unwrap_or(0.0))
    }

    #[test]
    fn kernel_minimal_transactions() {
        let (per_op, _) = run_kernel(20, 0, CostModel::microvax_ii());
        // §6.3: Unix kernel VMTP 7.44 ms per minimal operation.
        assert!(
            (3.0..15.0).contains(&per_op.as_millis_f64()),
            "per-op {per_op}"
        );
    }

    #[test]
    fn kernel_bulk_reads() {
        let (_, tput) = run_kernel(16, SEGMENT_BYTES as u32, CostModel::microvax_ii());
        let kbs = tput / 1024.0;
        // §6.3: Unix kernel VMTP 336 KB/s bulk.
        assert!((100.0..800.0).contains(&kbs), "throughput {kbs:.0} KB/s");
    }

    #[test]
    fn kernel_is_faster_than_user_level() {
        // The paper's headline §6.3 result: user-level VMTP pays about 2×
        // on minimal RTT.
        let (kernel_per_op, _) = run_kernel(20, 0, CostModel::microvax_ii());

        let mut w = World::new(17);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let c = w.add_host("client", seg, 0x0A, CostModel::microvax_ii());
        let s = w.add_host("server", seg, SERVER_ETH, CostModel::microvax_ii());
        w.spawn(s, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
        let p = w.spawn(
            c,
            Box::new(VmtpUserClient::new(
                CLIENT_ENTITY,
                SERVER_ENTITY,
                SERVER_ETH,
                Workload {
                    ops: 20,
                    response_bytes: 0,
                },
            )),
        );
        w.run_until(SimTime(300 * 1_000_000_000));
        let user_per_op = w
            .app_ref::<VmtpUserClient>(c, p)
            .unwrap()
            .per_op()
            .expect("user workload done");

        let ratio = user_per_op.as_nanos() as f64 / kernel_per_op.as_nanos() as f64;
        assert!(
            (1.3..4.0).contains(&ratio),
            "user {user_per_op} vs kernel {kernel_per_op} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn v_kernel_profile_is_at_least_as_fast() {
        let (unix, _) = run_kernel(20, 0, CostModel::microvax_ii());
        let (v, _) = run_kernel(20, 0, CostModel::v_kernel());
        assert!(v <= unix, "V kernel {v} vs Unix {unix}");
    }

    #[test]
    fn kernel_transactions_survive_loss() {
        let mut w = World::new(23);
        let seg = w.add_segment(
            Medium::standard_10mb(),
            FaultModel {
                loss: 0.05,
                duplication: 0.02,
                ..FaultModel::default()
            },
        );
        let c = w.add_host("client", seg, 0x0A, CostModel::microvax_ii());
        let s = w.add_host("server", seg, SERVER_ETH, CostModel::microvax_ii());
        w.register_protocol(c, Box::new(KernelVmtp::new()));
        w.register_protocol(s, Box::new(KernelVmtp::new()));
        w.spawn(s, Box::new(KVmtpServer::new(SERVER_ENTITY)));
        let p = w.spawn(
            c,
            Box::new(KVmtpClient::new(
                CLIENT_ENTITY,
                SERVER_ENTITY,
                SERVER_ETH,
                Workload {
                    ops: 10,
                    response_bytes: 4096,
                },
            )),
        );
        w.run_until(SimTime(300 * 1_000_000_000));
        let app = w.app_ref::<KVmtpClient>(c, p).unwrap();
        assert!(app.is_done(), "completed {}", app.completed);
        assert_eq!(app.bytes, 10 * 4096);
    }
}
