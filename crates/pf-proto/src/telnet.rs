//! Telnet-style remote-terminal streams (table 6-7).
//!
//! "A program on the 'server' host prints characters which are transmitted
//! across the network and displayed at the 'user' host." The same
//! character stream runs over the user-level Pup/BSP implementation and
//! over kernel TCP; the paper's point is that the *display*, not the
//! protocol implementation, is the bottleneck — BSP and TCP land within a
//! few percent of each other on both a fast workstation display and a
//! 9600-baud terminal.
//!
//! Display sinks are modeled as per-character consumer costs:
//!
//! * the MC68010 workstation "capable of displaying about 3350 characters
//!   per second" achieved ~half that end to end — the per-character cost
//!   here is display plus tty-driver processing (~590 µs/char ≈ 1700 c/s
//!   ceiling);
//! * a 9600-baud terminal draws at most 960 c/s (1042 µs/char).

use crate::bsp::{BspConfig, Effect, SenderMachine};
use crate::bsp_app::BspReceiverApp;
use crate::ip::ops;
use crate::pup::{Pup, PupAddr};
use pf_kernel::app::App;
use pf_kernel::types::{Fd, PortConfig, ReadError, ReadMode, RecvPacket, SockId, TimerId};
use pf_kernel::world::ProcCtx;
use pf_net::medium::Medium;
use pf_sim::time::SimDuration;

/// Characters written per chunk by the printing program.
pub const TELNET_CHUNK: usize = 64;

/// Server-side cost to produce one character (the printing program plus
/// the pseudo-terminal path into the network process).
pub const CHAR_GEN_COST: SimDuration = SimDuration::from_micros(200);

/// Per-character sink cost for the MC68010 workstation display path.
pub const WORKSTATION_CHAR_COST: SimDuration = SimDuration::from_micros(590);

/// Per-character sink cost for a 9600-baud terminal (960 c/s ceiling).
pub const TERMINAL_9600_CHAR_COST: SimDuration = SimDuration::from_micros(1042);

/// Keep at most this many characters buffered in the protocol machine.
const BUFFER_TARGET: usize = 4 * TELNET_CHUNK;

/// The telnet "server" over user-level BSP: generates `total_chars` and
/// streams them in push mode.
pub struct TelnetBspServer {
    machine: SenderMachine,
    total: usize,
    generated: usize,
    fd: Option<Fd>,
    timer: Option<TimerId>,
    local: PupAddr,
    finish_issued: bool,
    /// Whether the stream has fully closed.
    pub done: bool,
}

impl TelnetBspServer {
    /// Creates a server streaming `total_chars` from `local` to `remote`.
    pub fn new(local: PupAddr, remote: PupAddr, total_chars: usize) -> Self {
        let cfg = BspConfig {
            push: true,
            segment: TELNET_CHUNK,
            window: 4,
            ..Default::default()
        };
        TelnetBspServer {
            machine: SenderMachine::new(local, remote, cfg),
            total: total_chars,
            generated: 0,
            fd: None,
            timer: None,
            local,
            finish_issued: false,
            done: false,
        }
    }

    /// Generates more characters while the machine's buffer has room.
    fn generate(&mut self, k: &mut ProcCtx<'_>) {
        while self.generated < self.total
            && self.machine.is_established()
            && self.machine.buffered_bytes() < BUFFER_TARGET
        {
            let n = TELNET_CHUNK.min(self.total - self.generated);
            k.compute("user:print", CHAR_GEN_COST.times(n as u64));
            let chunk: Vec<u8> = (0..n)
                .map(|i| b'a' + ((self.generated + i) % 26) as u8)
                .collect();
            self.generated += n;
            let fx = self.machine.offer(&chunk);
            self.apply(fx, k);
        }
        if self.generated >= self.total && !self.finish_issued && self.machine.is_established() {
            self.finish_issued = true;
            let fx = self.machine.finish();
            self.apply(fx, k);
        }
    }

    fn apply(&mut self, fx: Vec<Effect>, k: &mut ProcCtx<'_>) {
        let medium = Medium::experimental_3mb();
        for e in fx {
            match e {
                Effect::Send(pup) => {
                    k.compute("user:bsp", crate::bsp_app::USER_PROTO_COST);
                    let f = pup.encode_frame(&medium, false);
                    let _ = k.pf_write(self.fd.expect("open"), &f);
                }
                Effect::SetTimer(d, token) => {
                    if let Some(t) = self.timer.take() {
                        k.cancel_timer(t);
                    }
                    self.timer = Some(k.set_timer(d, token));
                }
                Effect::CancelTimer(_) => {
                    if let Some(t) = self.timer.take() {
                        k.cancel_timer(t);
                    }
                }
                Effect::Connected => {}
                Effect::Closed => self.done = true,
                // The telnet experiment runs over a lossless segment; a
                // give-up would only mean the experiment is misconfigured.
                Effect::Failed => self.done = true,
                Effect::Deliver(_) => {}
            }
        }
    }
}

impl App for TelnetBspServer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let fd = k.pf_open();
        k.pf_set_filter(fd, Pup::socket_filter(10, self.local.socket));
        k.pf_configure(
            fd,
            PortConfig {
                read_mode: ReadMode::Batch,
                ..Default::default()
            },
        );
        self.fd = Some(fd);
        k.pf_read(fd);
        let fx = self.machine.connect();
        self.apply(fx, k);
    }

    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        let medium = Medium::experimental_3mb();
        for p in packets {
            k.compute("user:bsp", crate::bsp_app::USER_PROTO_COST);
            if let Ok(pup) = Pup::decode_frame(&medium, &p.bytes) {
                let fx = self.machine.on_pup(&pup);
                self.apply(fx, k);
            }
        }
        self.generate(k);
        k.pf_read(fd);
    }

    fn on_timer(&mut self, token: u64, k: &mut ProcCtx<'_>) {
        self.timer = None;
        let fx = self.machine.on_timer(token);
        self.apply(fx, k);
    }

    fn on_read_error(&mut self, fd: Fd, _err: ReadError, k: &mut ProcCtx<'_>) {
        k.pf_read(fd);
    }
}

/// The telnet "user" side over BSP is just a [`BspReceiverApp`] with a
/// per-character display cost.
pub fn telnet_bsp_client(local: PupAddr, char_cost: SimDuration) -> BspReceiverApp {
    let cfg = BspConfig {
        push: true,
        segment: TELNET_CHUNK,
        window: 4,
        ..Default::default()
    };
    BspReceiverApp::new(local, cfg).with_per_byte_cost(char_cost)
}

/// The telnet server over kernel TCP: same generation pattern, writes
/// [`TELNET_CHUNK`]-character chunks through the socket.
pub struct TelnetTcpServer {
    dst_ip: u32,
    dst_port: u16,
    dst_eth: u64,
    total: usize,
    generated: usize,
    sock: Option<SockId>,
}

impl TelnetTcpServer {
    /// Creates a server streaming `total_chars` to `dst_port` at
    /// `dst_ip`/`dst_eth`.
    pub fn new(dst_ip: u32, dst_port: u16, dst_eth: u64, total_chars: usize) -> Self {
        TelnetTcpServer {
            dst_ip,
            dst_port,
            dst_eth,
            total: total_chars,
            generated: 0,
            sock: None,
        }
    }

    fn write_next(&mut self, k: &mut ProcCtx<'_>) {
        let sock = self.sock.expect("connected");
        if self.generated >= self.total {
            k.ksock_request(sock, ops::TCP_CLOSE, Vec::new(), [0; 4]);
            return;
        }
        let n = TELNET_CHUNK.min(self.total - self.generated);
        k.compute("user:print", CHAR_GEN_COST.times(n as u64));
        let chunk: Vec<u8> = (0..n)
            .map(|i| b'a' + ((self.generated + i) % 26) as u8)
            .collect();
        self.generated += n;
        k.ksock_request(sock, ops::TCP_SEND, chunk, [0; 4]);
    }
}

impl App for TelnetTcpServer {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("ip").expect("ip registered");
        self.sock = Some(sock);
        k.ksock_request(
            sock,
            ops::TCP_CONNECT,
            Vec::new(),
            [
                u64::from(self.dst_ip),
                u64::from(self.dst_port),
                self.dst_eth,
                0,
            ],
        );
    }

    fn on_socket(
        &mut self,
        _sock: SockId,
        op: u32,
        _data: Vec<u8>,
        _meta: [u64; 4],
        k: &mut ProcCtx<'_>,
    ) {
        if op == ops::TCP_CONNECTED || op == ops::TCP_SENDABLE {
            self.write_next(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::KernelIp;
    use crate::stream::TcpBulkReceiver;
    use pf_kernel::world::World;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::time::SimTime;
    use pf_sim::SimClock;

    const CHARS: usize = 4_000;

    fn bsp_rate(char_cost: SimDuration) -> f64 {
        let mut w = World::new(9);
        let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
        let server = w.add_host("server", seg, 0x0A, CostModel::microvax_ii());
        let user = w.add_host("user", seg, 0x0B, CostModel::microvax_ii());
        let src = PupAddr::new(1, 0x0A, 0x17);
        let dst = PupAddr::new(1, 0x0B, 0x18);
        let rx = w.spawn(user, Box::new(telnet_bsp_client(dst, char_cost)));
        w.spawn(server, Box::new(TelnetBspServer::new(src, dst, CHARS)));
        w.run_until(SimTime(300 * 1_000_000_000));
        let r = w.app_ref::<BspReceiverApp>(user, rx).unwrap();
        assert!(r.is_done(), "stream closed; got {} chars", r.bytes);
        assert_eq!(r.bytes as usize, CHARS);
        r.throughput_bps().unwrap()
    }

    fn tcp_rate(char_cost: SimDuration) -> f64 {
        let mut w = World::new(9);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let server = w.add_host("server", seg, 0x0A, CostModel::microvax_ii());
        let user = w.add_host("user", seg, 0x0B, CostModel::microvax_ii());
        w.register_protocol(server, Box::new(KernelIp::new(10)));
        w.register_protocol(user, Box::new(KernelIp::new(11)));
        let rx = w.spawn(
            user,
            Box::new(TcpBulkReceiver::new(23).with_per_byte_cost(char_cost)),
        );
        w.spawn(server, Box::new(TelnetTcpServer::new(11, 23, 0x0B, CHARS)));
        w.run_until(SimTime(300 * 1_000_000_000));
        let r = w.app_ref::<TcpBulkReceiver>(user, rx).unwrap();
        assert!(r.is_done(), "stream closed; got {} chars", r.bytes);
        assert_eq!(r.bytes as usize, CHARS);
        r.throughput_bps().unwrap()
    }

    #[test]
    fn workstation_display_rates_match_table_6_7_band() {
        // Paper: BSP 1635 c/s, TCP 1757 c/s on the fast display.
        let bsp = bsp_rate(WORKSTATION_CHAR_COST);
        let tcp = tcp_rate(WORKSTATION_CHAR_COST);
        assert!((1_000.0..2_500.0).contains(&bsp), "BSP {bsp:.0} c/s");
        assert!((1_000.0..2_500.0).contains(&tcp), "TCP {tcp:.0} c/s");
    }

    #[test]
    fn terminal_9600_rates_match_table_6_7_band() {
        // Paper: BSP 878 c/s, TCP 933 c/s on the 9600-baud terminal.
        let bsp = bsp_rate(TERMINAL_9600_CHAR_COST);
        let tcp = tcp_rate(TERMINAL_9600_CHAR_COST);
        assert!((700.0..960.0).contains(&bsp), "BSP {bsp:.0} c/s");
        assert!((700.0..960.0).contains(&tcp), "TCP {tcp:.0} c/s");
    }

    #[test]
    fn display_is_the_bottleneck_not_the_protocol() {
        // The paper's qualitative claim: output rates vary "only slightly
        // according to whether TCP or BSP (and thus the packet filter) is
        // used" — the display rate dominates.
        let bsp = bsp_rate(TERMINAL_9600_CHAR_COST);
        let tcp = tcp_rate(TERMINAL_9600_CHAR_COST);
        let ratio = tcp / bsp;
        assert!((0.8..1.35).contains(&ratio), "BSP {bsp:.0} vs TCP {tcp:.0}");
    }
}
