//! ARP (kernel-resident) and the shared ARP/RARP wire format.
//!
//! ARP is part of the kernel stack (it is 10% of the §6.1 profiling
//! workload); RARP — the §5.3 showcase for the packet filter — lives in
//! [`crate::rarp`] as pure user-level code.

use pf_kernel::kproto::KernelProtocol;
use pf_kernel::types::{ProcId, SockId};
use pf_kernel::world::KernelCtx;
use pf_net::frame;
use pf_net::medium::Medium;
use std::collections::HashMap;

/// Ethernet type for ARP.
pub const ARP_ETHERTYPE: u16 = 0x0806;

/// Ethernet type for RARP (a *parallel* layer to IP — the §5.3 design
/// question the packet filter made easy to answer).
pub const RARP_ETHERTYPE: u16 = 0x8035;

/// ARP/RARP operation codes.
pub mod oper {
    /// ARP request.
    pub const ARP_REQUEST: u16 = 1;
    /// ARP reply.
    pub const ARP_REPLY: u16 = 2;
    /// RARP request ("who am I?").
    pub const RARP_REQUEST: u16 = 3;
    /// RARP reply.
    pub const RARP_REPLY: u16 = 4;
}

/// A decoded ARP/RARP packet (Ethernet/IPv4 flavor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation code (see [`oper`]).
    pub oper: u16,
    /// Sender hardware address.
    pub sha: u64,
    /// Sender protocol (IP) address.
    pub spa: u32,
    /// Target hardware address.
    pub tha: u64,
    /// Target protocol (IP) address.
    pub tpa: u32,
}

impl ArpPacket {
    /// Encodes the 28-byte body.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(28);
        b.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        b.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IP
        b.push(6); // hlen
        b.push(4); // plen
        b.extend_from_slice(&self.oper.to_be_bytes());
        b.extend_from_slice(&self.sha.to_be_bytes()[2..8]);
        b.extend_from_slice(&self.spa.to_be_bytes());
        b.extend_from_slice(&self.tha.to_be_bytes()[2..8]);
        b.extend_from_slice(&self.tpa.to_be_bytes());
        b
    }

    /// Decodes a body.
    pub fn decode_body(b: &[u8]) -> Option<ArpPacket> {
        if b.len() < 28 || b[0] != 0 || b[1] != 1 || b[4] != 6 || b[5] != 4 {
            return None;
        }
        let mut sha = [0u8; 8];
        sha[2..8].copy_from_slice(&b[8..14]);
        let mut tha = [0u8; 8];
        tha[2..8].copy_from_slice(&b[18..24]);
        Some(ArpPacket {
            oper: u16::from_be_bytes([b[6], b[7]]),
            sha: u64::from_be_bytes(sha),
            spa: u32::from_be_bytes([b[14], b[15], b[16], b[17]]),
            tha: u64::from_be_bytes(tha),
            tpa: u32::from_be_bytes([b[24], b[25], b[26], b[27]]),
        })
    }

    /// Encodes as a complete frame with the given Ethernet type
    /// ([`ARP_ETHERTYPE`] or [`RARP_ETHERTYPE`]).
    pub fn encode_frame(
        &self,
        medium: &Medium,
        ethertype: u16,
        eth_dst: u64,
        eth_src: u64,
    ) -> Vec<u8> {
        frame::build(medium, eth_dst, eth_src, ethertype, &self.encode_body())
            .expect("ARP fits any medium")
    }
}

/// The kernel-resident ARP module: answers requests for this host's
/// address and learns mappings from traffic it sees.
pub struct KernelArp {
    /// This host's IP address.
    pub ip: u32,
    /// Learned IP → Ethernet mappings.
    pub cache: HashMap<u32, u64>,
    /// ARP packets processed.
    pub packets_in: u64,
}

impl KernelArp {
    /// Creates the module for a host with address `ip`.
    pub fn new(ip: u32) -> Self {
        KernelArp {
            ip,
            cache: HashMap::new(),
            packets_in: 0,
        }
    }
}

impl KernelProtocol for KernelArp {
    fn name(&self) -> &'static str {
        "arp"
    }

    fn claims(&self, ethertype: u16) -> bool {
        ethertype == ARP_ETHERTYPE
    }

    fn input(&mut self, frame_bytes: Vec<u8>, k: &mut KernelCtx<'_>) {
        let (medium, my_eth) = k.link_info();
        let Ok(body) = frame::payload(&medium, &frame_bytes) else {
            return;
        };
        let Some(pkt) = ArpPacket::decode_body(body) else {
            return;
        };
        self.packets_in += 1;
        let cost = k.costs().arp_input;
        k.charge("arp:input", cost);
        if pkt.spa != 0 {
            self.cache.insert(pkt.spa, pkt.sha);
        }
        if pkt.oper == oper::ARP_REQUEST && pkt.tpa == self.ip {
            let reply = ArpPacket {
                oper: oper::ARP_REPLY,
                sha: my_eth,
                spa: self.ip,
                tha: pkt.sha,
                tpa: pkt.spa,
            };
            k.transmit(&reply.encode_frame(&medium, ARP_ETHERTYPE, pkt.sha, my_eth));
        }
    }

    fn user_request(
        &mut self,
        _proc: ProcId,
        _sock: SockId,
        _op: u32,
        _data: Vec<u8>,
        _meta: [u64; 4],
        _k: &mut KernelCtx<'_>,
    ) {
        // ARP has no user-visible socket interface.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_kernel::world::World;
    use pf_net::segment::FaultModel;
    use pf_sim::cost::CostModel;
    use pf_sim::time::SimTime;
    use pf_sim::SimClock;

    #[test]
    fn body_round_trip() {
        let p = ArpPacket {
            oper: oper::RARP_REQUEST,
            sha: 0x0A0B0C0D0E0F,
            spa: 0,
            tha: 0x0A0B0C0D0E0F,
            tpa: 0,
        };
        assert_eq!(ArpPacket::decode_body(&p.encode_body()), Some(p));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ArpPacket::decode_body(&[0; 27]).is_none());
        let mut b = ArpPacket {
            oper: 1,
            sha: 1,
            spa: 2,
            tha: 3,
            tpa: 4,
        }
        .encode_body();
        b[4] = 8; // wrong hlen
        assert!(ArpPacket::decode_body(&b).is_none());
    }

    #[test]
    fn kernel_arp_answers_requests_for_its_ip() {
        let mut w = World::new(3);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let asker = w.add_host("asker", seg, 0x0A, CostModel::microvax_ii());
        let owner = w.add_host("owner", seg, 0x0B, CostModel::microvax_ii());
        w.register_protocol(owner, Box::new(KernelArp::new(42)));
        w.register_protocol(asker, Box::new(KernelArp::new(41)));
        let medium = Medium::standard_10mb();
        let req = ArpPacket {
            oper: oper::ARP_REQUEST,
            sha: 0x0A,
            spa: 41,
            tha: 0,
            tpa: 42,
        };
        let f = req.encode_frame(&medium, ARP_ETHERTYPE, medium.broadcast, 0x0A);
        w.inject_frame(owner, f, SimTime(0));
        w.run();
        // The owner answered; the asker's module learned the mapping.
        let asker_arp = w.protocol_ref::<KernelArp>(asker).unwrap();
        assert_eq!(asker_arp.cache.get(&42), Some(&0x0Bu64));
        let owner_arp = w.protocol_ref::<KernelArp>(owner).unwrap();
        assert_eq!(owner_arp.cache.get(&41), Some(&0x0Au64));
        assert_eq!(owner_arp.packets_in, 1);
        assert!(w.profiler(owner).stats("arp:input").calls > 0);
    }
}
