//! Facade crate for the SOSP '87 packet-filter reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests, and downstream users can depend on a single `packet-filter`
//! package. See the individual crates for detail:
//!
//! * [`filter`] — the filter language and its execution engines (the
//!   paper's core contribution);
//! * [`ir`] — the control-flow-graph filter IR: optimizing passes, a
//!   threaded-code engine, prefix-sharing and sharded filter sets, and
//!   (behind the off-by-default `jit` cargo feature) a machine-code
//!   template JIT — ladder rungs 5 through 8;
//! * [`sim`] — the deterministic simulated Unix-like kernel substrate;
//! * [`net`] — simulated Ethernets and network interfaces;
//! * [`kernel`] — the packet-filter pseudo-device driver and the
//!   demultiplexing baselines it is evaluated against;
//! * [`proto`] — the Pup/BSP, VMTP, IP/UDP/TCP-lite, ARP/RARP protocol
//!   implementations used in the paper's evaluation;
//! * [`monitor`] — network-monitoring tools (§5.4).
//!
//! # Example
//!
//! Figure 3-9 of the paper, built by the run-time "library procedure" and
//! evaluated against a Pup packet:
//!
//! ```
//! use packet_filter::filter::builder::Expr;
//! use packet_filter::filter::interp::CheckedInterpreter;
//! use packet_filter::filter::packet::PacketView;
//! use packet_filter::filter::samples;
//!
//! let filter = Expr::word(8).eq(35)
//!     .and(Expr::word(7).eq(0))
//!     .and(Expr::word(1).eq(2))
//!     .compile(10)
//!     .expect("static filter compiles");
//! assert_eq!(filter.words(), samples::fig_3_9_pup_socket_35().words());
//!
//! let pkt = samples::pup_packet_3mb(2, 0, 35, 1);
//! assert!(CheckedInterpreter::default().eval(&filter, PacketView::new(&pkt)));
//! ```

pub use pf_filter as filter;
pub use pf_ir as ir;
pub use pf_kernel as kernel;
pub use pf_monitor as monitor;
pub use pf_net as net;
pub use pf_proto as proto;
pub use pf_sim as sim;

// The working set for embedding the device: construct with the builder,
// pick an engine, observe with one stats struct, and iterate execution
// surfaces generically.
pub use pf_ir::{singleton_engines, singleton_surface_count, FilterEngine};
pub use pf_kernel::{DemuxEngine, EngineStats, PfDevice, PfDeviceBuilder};
// The one run-loop: `World`, `McPipeline`, and any other clocked model
// drive through this trait.
pub use pf_sim::SimClock;
