//! Cross-crate integration: full protocol conversations over the
//! simulated network, observed by the monitor, under fault injection,
//! with determinism pinned.

use packet_filter::kernel::world::World;
use packet_filter::monitor::capture::CaptureApp;
use packet_filter::monitor::decode::{decode, Decoded};
use packet_filter::monitor::stats::TraceStats;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::bsp::BspConfig;
use packet_filter::proto::bsp_app::{BspReceiverApp, BspSenderApp};
use packet_filter::proto::pup::{PupAddr, PUP_ETHERTYPE};
use packet_filter::proto::vmtp::SEGMENT_BYTES;
use packet_filter::proto::vmtp_kernel::{KVmtpClient, KVmtpServer, KernelVmtp};
use packet_filter::proto::vmtp_user::{VmtpUserClient, VmtpUserServer, Workload};
use packet_filter::sim::cost::CostModel;
use packet_filter::sim::time::SimTime;
use packet_filter::SimClock;

#[test]
fn monitored_bsp_transfer_with_loss() {
    // Sender, receiver, and a promiscuous monitor on a lossy wire: the
    // transfer completes exactly, the monitor's trace decodes, and the
    // trace contains the retransmissions the loss forced.
    let mut w = World::new(42);
    let seg = w.add_segment(
        Medium::experimental_3mb(),
        FaultModel {
            loss: 0.03,
            duplication: 0.01,
            ..FaultModel::default()
        },
    );
    let a = w.add_host("alice", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    let m = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());

    let src = PupAddr::new(1, 0x0A, 0x300);
    let dst = PupAddr::new(1, 0x0B, 0x400);
    let cfg = BspConfig::default();
    const TOTAL: usize = 30_000;
    let payload: Vec<u8> = (0..TOTAL).map(|i| (i % 241) as u8).collect();
    let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
    let tx = w.spawn(a, Box::new(BspSenderApp::new(src, dst, payload, cfg)));
    let cap = w.spawn(m, Box::new(CaptureApp::promiscuous(100_000)));
    w.run_until(SimTime(600 * 1_000_000_000));

    let receiver = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
    assert!(receiver.is_done(), "transfer finished despite loss");
    assert_eq!(receiver.bytes as usize, TOTAL, "byte stream exact");

    let sender = w.app_ref::<BspSenderApp>(a, tx).unwrap();
    assert!(
        sender.stats().retransmits > 0,
        "loss forced retransmissions"
    );

    let capture = w.app_ref::<CaptureApp>(m, cap).unwrap();
    let medium = Medium::experimental_3mb();
    let stats = TraceStats::analyze(&medium, &capture.trace);
    assert!(stats.packets > 60, "trace captured the conversation");
    assert_eq!(stats.malformed, 0);
    assert!(stats.packets_of_type(PUP_ETHERTYPE) == stats.packets);
    // Every frame decodes as a Pup.
    for c in &capture.trace {
        assert!(matches!(decode(&medium, &c.bytes), Decoded::Pup { .. }));
    }
    // The monitor saw more data packets than the receiver delivered
    // (retransmissions and duplicates are visible on the wire).
    let data_frames = capture
        .trace
        .iter()
        .filter(|c| {
            matches!(
                decode(&medium, &c.bytes),
                Decoded::Pup { ptype, .. } if ptype == 16 || ptype == 17
            )
        })
        .count() as u64;
    assert!(data_frames > receiver.stats().delivered_packets);
}

#[test]
fn vmtp_user_and_kernel_agree_on_results() {
    // The same workload through both embeddings returns the same bytes;
    // only the cost differs.
    let run_user = || {
        let mut w = World::new(8);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let c = w.add_host("c", seg, 0x0A, CostModel::microvax_ii());
        let s = w.add_host("s", seg, 0x0B, CostModel::microvax_ii());
        w.spawn(s, Box::new(VmtpUserServer::new(0x20)));
        let p = w.spawn(
            c,
            Box::new(VmtpUserClient::new(
                0x10,
                0x20,
                0x0B,
                Workload {
                    ops: 4,
                    response_bytes: SEGMENT_BYTES as u32,
                },
            )),
        );
        w.run_until(SimTime(300 * 1_000_000_000));
        let app = w.app_ref::<VmtpUserClient>(c, p).unwrap();
        assert!(app.is_done());
        (app.bytes, app.per_op().unwrap())
    };
    let run_kernel = || {
        let mut w = World::new(8);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let c = w.add_host("c", seg, 0x0A, CostModel::microvax_ii());
        let s = w.add_host("s", seg, 0x0B, CostModel::microvax_ii());
        w.register_protocol(c, Box::new(KernelVmtp::new()));
        w.register_protocol(s, Box::new(KernelVmtp::new()));
        w.spawn(s, Box::new(KVmtpServer::new(0x20)));
        let p = w.spawn(
            c,
            Box::new(KVmtpClient::new(
                0x10,
                0x20,
                0x0B,
                Workload {
                    ops: 4,
                    response_bytes: SEGMENT_BYTES as u32,
                },
            )),
        );
        w.run_until(SimTime(300 * 1_000_000_000));
        let app = w.app_ref::<KVmtpClient>(c, p).unwrap();
        assert!(app.is_done());
        (app.bytes, app.per_op().unwrap())
    };
    let (user_bytes, user_time) = run_user();
    let (kernel_bytes, kernel_time) = run_kernel();
    assert_eq!(user_bytes, kernel_bytes, "identical results");
    assert!(user_time > kernel_time, "the user-level variant pays more");
}

#[test]
fn whole_world_runs_are_bit_deterministic() {
    let run = || {
        let mut w = World::new(1234);
        let seg = w.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                loss: 0.05,
                duplication: 0.02,
                ..FaultModel::default()
            },
        );
        let a = w.add_host("a", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("b", seg, 0x0B, CostModel::microvax_ii());
        let src = PupAddr::new(1, 0x0A, 0x300);
        let dst = PupAddr::new(1, 0x0B, 0x400);
        let cfg = BspConfig::default();
        let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
        w.spawn(
            a,
            Box::new(BspSenderApp::new(src, dst, vec![9u8; 25_000], cfg)),
        );
        let end = w.run_until(SimTime(600 * 1_000_000_000));
        let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
        (end, r.bytes, r.stats(), *w.counters(a), *w.counters(b))
    };
    let first = run();
    let second = run();
    assert_eq!(first.0, second.0, "end time");
    assert_eq!(first.1, second.1, "bytes");
    assert_eq!(first.2, second.2, "receiver stats");
    assert_eq!(first.3, second.3, "sender counters");
    assert_eq!(first.4, second.4, "receiver counters");
}
