//! End-to-end scenarios under [`DemuxEngine::Ir`]: the CFG / threaded-code
//! demultiplexer drives the same full-stack conversations as the
//! sequential engine — identical delivery and drops, deterministic runs —
//! while charging its cost as IR operations.

use packet_filter::filter::samples;
use packet_filter::kernel::app::App;
use packet_filter::kernel::device::DemuxEngine;
use packet_filter::kernel::types::{Fd, RecvPacket, SockId};
use packet_filter::kernel::world::{ProcCtx, World};
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::bsp::BspConfig;
use packet_filter::proto::bsp_app::{BspReceiverApp, BspSenderApp};
use packet_filter::proto::ip::{encode_ip, encode_udp, IpHeader, KernelIp, PROTO_UDP};
use packet_filter::proto::pup::PupAddr;
use packet_filter::sim::cost::CostModel;
use packet_filter::sim::time::SimTime;
use packet_filter::SimClock;

#[test]
fn bsp_transfer_with_loss_under_ir_engine() {
    // The full user-level BSP stack, demultiplexed by the IR engine, on a
    // lossy wire: the transfer still completes exactly.
    let mut w = World::new(42);
    let seg = w.add_segment(
        Medium::experimental_3mb(),
        FaultModel {
            loss: 0.03,
            duplication: 0.01,
            ..FaultModel::default()
        },
    );
    let a = w.add_host("alice", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    w.set_demux_engine(a, DemuxEngine::Ir);
    w.set_demux_engine(b, DemuxEngine::Ir);

    let src = PupAddr::new(1, 0x0A, 0x300);
    let dst = PupAddr::new(1, 0x0B, 0x400);
    let cfg = BspConfig::default();
    const TOTAL: usize = 30_000;
    let payload: Vec<u8> = (0..TOTAL).map(|i| (i % 241) as u8).collect();
    let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
    w.spawn(a, Box::new(BspSenderApp::new(src, dst, payload, cfg)));
    w.run_until(SimTime(600 * 1_000_000_000));

    let receiver = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
    assert!(receiver.is_done(), "transfer finished despite loss");
    assert_eq!(receiver.bytes as usize, TOTAL, "byte stream exact");
    assert!(
        w.counters(b).filter_instructions > 0,
        "IR operations were charged to the filter-instruction counter"
    );
}

/// A process using both a UDP kernel socket and a packet-filter port
/// (figure 3-3's coexistence scenario), with the IR engine demultiplexing.
struct DualStack {
    udp_got: u64,
    pf_got: u64,
}

impl App for DualStack {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("ip").expect("ip registered");
        k.ksock_request(
            sock,
            packet_filter::proto::ip::ops::UDP_BIND,
            Vec::new(),
            [77, 0, 0, 0],
        );
        let fd = k.pf_open();
        k.pf_set_filter(fd, samples::pup_socket_filter(10, 0, 35));
        k.pf_read(fd);
    }
    fn on_socket(&mut self, _s: SockId, op: u32, _d: Vec<u8>, _m: [u64; 4], _k: &mut ProcCtx<'_>) {
        if op == packet_filter::proto::ip::ops::UDP_RECV {
            self.udp_got += 1;
        }
    }
    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        self.pf_got += packets.len() as u64;
        k.pf_read(fd);
    }
}

#[test]
fn ir_engine_coexists_with_kernel_protocols() {
    use packet_filter::net::frame;
    use packet_filter::proto::ip::IP_ETHERTYPE;

    let medium = Medium::experimental_3mb();
    let mut w = World::new(3);
    let seg = w.add_segment(medium, FaultModel::default());
    let h = w.add_host("dual", seg, 0x0B, CostModel::microvax_ii());
    w.set_demux_engine(h, DemuxEngine::Ir);
    w.register_protocol(h, Box::new(KernelIp::new(11)));
    let p = w.spawn(
        h,
        Box::new(DualStack {
            udp_got: 0,
            pf_got: 0,
        }),
    );

    let udp = encode_ip(
        &IpHeader {
            proto: PROTO_UDP,
            ttl: 30,
            src: 10,
            dst: 11,
            total_len: 0,
        },
        &encode_udp(9, 77, b"hello"),
    );
    let udp_frame = frame::build(&medium, 0x0B, 0x0A, IP_ETHERTYPE, &udp).unwrap();
    w.inject_frame(h, udp_frame, SimTime(1_000_000));
    w.inject_frame(h, samples::pup_packet_3mb(2, 0, 35, 1), SimTime(2_000_000));
    w.inject_frame(h, samples::pup_packet_3mb(2, 0, 99, 1), SimTime(3_000_000));
    w.run();

    let app = w.app_ref::<DualStack>(h, p).unwrap();
    assert_eq!(app.udp_got, 1, "UDP went through the kernel stack");
    assert_eq!(app.pf_got, 1, "the Pup went through the IR demultiplexer");
    assert_eq!(w.counters(h).drops_no_match, 1, "the stray Pup was dropped");
}

#[test]
fn ir_engine_delivery_matches_sequential_and_is_deterministic() {
    // The same seeded lossy BSP run under each engine. Delivery must be
    // identical content-wise; the IR runs themselves must be
    // bit-deterministic. (Timing-sensitive counters are *not* compared
    // across engines: the engines charge different per-packet costs, so
    // retransmission schedules may legitimately differ.)
    let run = |engine: DemuxEngine| {
        let mut w = World::new(1234);
        let seg = w.add_segment(
            Medium::experimental_3mb(),
            FaultModel {
                loss: 0.05,
                duplication: 0.02,
                ..FaultModel::default()
            },
        );
        let a = w.add_host("a", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("b", seg, 0x0B, CostModel::microvax_ii());
        w.set_demux_engine(a, engine);
        w.set_demux_engine(b, engine);
        let src = PupAddr::new(1, 0x0A, 0x300);
        let dst = PupAddr::new(1, 0x0B, 0x400);
        let cfg = BspConfig::default();
        let rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
        w.spawn(
            a,
            Box::new(BspSenderApp::new(src, dst, vec![9u8; 25_000], cfg)),
        );
        let end = w.run_until(SimTime(600 * 1_000_000_000));
        let r = w.app_ref::<BspReceiverApp>(b, rx).unwrap();
        (end, r.is_done(), r.bytes, *w.counters(b))
    };
    let seq = run(DemuxEngine::Sequential);
    let ir1 = run(DemuxEngine::Ir);
    let ir2 = run(DemuxEngine::Ir);
    assert!(seq.1 && ir1.1, "both engines complete the transfer");
    assert_eq!(seq.2, ir1.2, "identical bytes delivered");
    assert_eq!(ir1, ir2, "IR runs are bit-deterministic");
    let sh1 = run(DemuxEngine::Sharded);
    let sh2 = run(DemuxEngine::Sharded);
    assert!(sh1.1, "the sharded engine completes the transfer");
    assert_eq!(seq.2, sh1.2, "identical bytes delivered under sharding");
    assert_eq!(sh1, sh2, "sharded runs are bit-deterministic");
}

#[test]
fn sharded_engine_coexists_with_kernel_protocols() {
    use packet_filter::net::frame;
    use packet_filter::proto::ip::IP_ETHERTYPE;

    let medium = Medium::experimental_3mb();
    let mut w = World::new(3);
    let seg = w.add_segment(medium, FaultModel::default());
    let h = w.add_host("dual", seg, 0x0B, CostModel::microvax_ii());
    w.set_demux_engine(h, DemuxEngine::Sharded);
    w.register_protocol(h, Box::new(KernelIp::new(11)));
    let p = w.spawn(
        h,
        Box::new(DualStack {
            udp_got: 0,
            pf_got: 0,
        }),
    );

    let udp = encode_ip(
        &IpHeader {
            proto: PROTO_UDP,
            ttl: 30,
            src: 10,
            dst: 11,
            total_len: 0,
        },
        &encode_udp(9, 77, b"hello"),
    );
    let udp_frame = frame::build(&medium, 0x0B, 0x0A, IP_ETHERTYPE, &udp).unwrap();
    w.inject_frame(h, udp_frame, SimTime(1_000_000));
    w.inject_frame(h, samples::pup_packet_3mb(2, 0, 35, 1), SimTime(2_000_000));
    w.inject_frame(h, samples::pup_packet_3mb(2, 0, 99, 1), SimTime(3_000_000));
    w.run();

    let app = w.app_ref::<DualStack>(h, p).unwrap();
    assert_eq!(app.udp_got, 1, "UDP went through the kernel stack");
    assert_eq!(
        app.pf_got, 1,
        "the Pup went through the sharded demultiplexer"
    );
    assert_eq!(w.counters(h).drops_no_match, 1, "the stray Pup was dropped");
}
