//! Figure 3-3: the packet filter coexisting with kernel-resident
//! protocols on one host — "some programs may even use both means to
//! access the network" — plus the §6 note that the packet filter
//! "coexists with kernel-resident protocol implementations, without
//! affecting their performance."

use packet_filter::filter::samples;
use packet_filter::kernel::app::App;
use packet_filter::kernel::types::{Fd, RecvPacket, SockId};
use packet_filter::kernel::world::{ProcCtx, World};
use packet_filter::net::frame;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::bsp::BspConfig;
use packet_filter::proto::bsp_app::{BspReceiverApp, BspSenderApp};
use packet_filter::proto::ip::{
    encode_ip, encode_udp, IpHeader, KernelIp, IP_ETHERTYPE, PROTO_UDP,
};
use packet_filter::proto::pup::PupAddr;
use packet_filter::proto::stream::{TcpBulkReceiver, TcpBulkSender};
use packet_filter::sim::cost::CostModel;
use packet_filter::sim::time::SimTime;
use packet_filter::SimClock;

/// A process that uses *both* access paths: a UDP kernel socket and a
/// packet-filter port, on the same host.
struct DualStack {
    udp_got: u64,
    pf_got: u64,
    fd: Option<Fd>,
}

impl App for DualStack {
    fn start(&mut self, k: &mut ProcCtx<'_>) {
        let sock = k.ksock_open("ip").expect("ip registered");
        k.ksock_request(
            sock,
            packet_filter::proto::ip::ops::UDP_BIND,
            Vec::new(),
            [77, 0, 0, 0],
        );
        let fd = k.pf_open();
        k.pf_set_filter(fd, samples::pup_socket_filter(10, 0, 35));
        self.fd = Some(fd);
        k.pf_read(fd);
    }
    fn on_socket(&mut self, _s: SockId, op: u32, _d: Vec<u8>, _m: [u64; 4], _k: &mut ProcCtx<'_>) {
        if op == packet_filter::proto::ip::ops::UDP_RECV {
            self.udp_got += 1;
        }
    }
    fn on_packets(&mut self, fd: Fd, packets: Vec<RecvPacket>, k: &mut ProcCtx<'_>) {
        self.pf_got += packets.len() as u64;
        k.pf_read(fd);
    }
}

#[test]
fn one_process_uses_both_models() {
    let medium = Medium::experimental_3mb();
    let mut w = World::new(3);
    let seg = w.add_segment(medium, FaultModel::default());
    let h = w.add_host("dual", seg, 0x0B, CostModel::microvax_ii());
    w.register_protocol(h, Box::new(KernelIp::new(11)));
    let p = w.spawn(
        h,
        Box::new(DualStack {
            udp_got: 0,
            pf_got: 0,
            fd: None,
        }),
    );

    // One UDP datagram and one Pup, interleaved.
    let udp = encode_ip(
        &IpHeader {
            proto: PROTO_UDP,
            ttl: 30,
            src: 10,
            dst: 11,
            total_len: 0,
        },
        &encode_udp(9, 77, b"hello"),
    );
    let udp_frame = frame::build(&medium, 0x0B, 0x0A, IP_ETHERTYPE, &udp).unwrap();
    w.inject_frame(h, udp_frame, SimTime(1_000_000));
    w.inject_frame(h, samples::pup_packet_3mb(2, 0, 35, 1), SimTime(2_000_000));
    // And one Pup nobody wants.
    w.inject_frame(h, samples::pup_packet_3mb(2, 0, 99, 1), SimTime(3_000_000));
    w.run();

    let app = w.app_ref::<DualStack>(h, p).unwrap();
    assert_eq!(app.udp_got, 1, "UDP went through the kernel stack");
    assert_eq!(app.pf_got, 1, "the Pup went through the packet filter");
    assert_eq!(w.counters(h).drops_no_match, 1, "the stray Pup was dropped");
    // The kernel protocol never saw the Pups, and vice versa.
    assert_eq!(w.protocol_ref::<KernelIp>(h).unwrap().packets_in, 1);
}

#[test]
fn pf_traffic_does_not_slow_kernel_tcp() {
    // "The packet filter coexists with kernel-resident protocol
    // implementations, without affecting their performance" (§6): a TCP
    // bulk transfer runs at the same rate whether or not unrelated Pup
    // traffic is being demultiplexed... here the Pup traffic is light
    // enough not to saturate the shared CPU.
    let run = |with_pup_noise: bool| {
        let mut w = World::new(9);
        let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
        let a = w.add_host("sender", seg, 0x0A, CostModel::microvax_ii());
        let b = w.add_host("receiver", seg, 0x0B, CostModel::microvax_ii());
        w.register_protocol(a, Box::new(KernelIp::new(10)));
        w.register_protocol(b, Box::new(KernelIp::new(11)));
        let rx = w.spawn(b, Box::new(TcpBulkReceiver::new(5000)));
        w.spawn(
            a,
            Box::new(TcpBulkSender::new(11, 5000, 0x0B, 64 * 1024, 0)),
        );
        if with_pup_noise {
            // A stray Pup every 20 ms that no filter wants.
            for i in 0..100u64 {
                let mut p = samples::pup_packet_3mb(2, 0, 9, 1);
                p[0] = 0x0B;
                w.inject_frame(b, p, SimTime(i * 20_000_000));
            }
        }
        w.run_until(SimTime(300 * 1_000_000_000));
        let r = w.app_ref::<TcpBulkReceiver>(b, rx).unwrap();
        assert!(r.is_done());
        r.throughput_bps().unwrap()
    };
    let clean = run(false);
    let noisy = run(true);
    let slowdown = clean / noisy;
    assert!(
        slowdown < 1.10,
        "light pf traffic must not materially slow kernel TCP: {slowdown:.3}"
    );
}

#[test]
fn pup_and_tcp_share_a_wire() {
    // A BSP stream (user-level, over the packet filter) and a TCP stream
    // (kernel) between the same pair of hosts, concurrently; both finish
    // and deliver intact.
    let mut w = World::new(12);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let a = w.add_host("alice", seg, 0x0A, CostModel::microvax_ii());
    let b = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    w.register_protocol(a, Box::new(KernelIp::new(10)));
    w.register_protocol(b, Box::new(KernelIp::new(11)));

    let cfg = BspConfig::default();
    let src = PupAddr::new(1, 0x0A, 0x300);
    let dst = PupAddr::new(1, 0x0B, 0x400);
    let bsp_rx = w.spawn(b, Box::new(BspReceiverApp::new(dst, cfg.clone())));
    w.spawn(
        a,
        Box::new(BspSenderApp::new(src, dst, vec![1u8; 20_000], cfg)),
    );

    let tcp_rx = w.spawn(b, Box::new(TcpBulkReceiver::new(5000)));
    w.spawn(a, Box::new(TcpBulkSender::new(11, 5000, 0x0B, 20_000, 512)));

    w.run_until(SimTime(300 * 1_000_000_000));
    let bsp = w.app_ref::<BspReceiverApp>(b, bsp_rx).unwrap();
    let tcp = w.app_ref::<TcpBulkReceiver>(b, tcp_rx).unwrap();
    assert!(bsp.is_done() && tcp.is_done());
    assert_eq!(bsp.bytes, 20_000);
    assert_eq!(tcp.bytes, 20_000);
}
