//! The capstone scenario: "a moderately busy Ethernet" (§5.4) with
//! everything this repository implements running at once — BSP bulk
//! transfer, VMTP transactions, kernel TCP, Pup echoes, RARP boot, group
//! multicast, ARP chatter, and a promiscuous monitor watching it all —
//! under packet loss, on one wire.

use packet_filter::kernel::world::World;
use packet_filter::monitor::capture::CaptureApp;
use packet_filter::monitor::stats::TraceStats;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::bsp::BspConfig;
use packet_filter::proto::bsp_app::{BspReceiverApp, BspSenderApp};
use packet_filter::proto::echo::{EchoClient, EchoServer};
use packet_filter::proto::group::{GroupMember, GroupSender};
use packet_filter::proto::ip::KernelIp;
use packet_filter::proto::pup::{PupAddr, PUP_ETHERTYPE};
use packet_filter::proto::rarp::{RarpClient, RarpServer};
use packet_filter::proto::stream::{TcpBulkReceiver, TcpBulkSender};
use packet_filter::proto::vmtp::VMTP_ETHERTYPE;
use packet_filter::proto::vmtp_kernel::KernelVmtp;
use packet_filter::proto::vmtp_kernel::{KVmtpClient, KVmtpServer};
use packet_filter::proto::vmtp_user::Workload;
use packet_filter::sim::cost::CostModel;
use packet_filter::sim::time::SimTime;
use packet_filter::SimClock;
use std::collections::HashMap;

#[test]
fn everything_at_once_on_one_wire() {
    let mut w = World::new(2026);
    // The 10 Mb Ethernet (Pup runs fine over it in the simulation: the
    // encapsulation is per-frame, and these Pup apps use the 3 Mb layout
    // only for their own filters — so give the Pup pair its own segment).
    let eth10 = w.add_segment(
        Medium::standard_10mb(),
        FaultModel {
            loss: 0.01,
            duplication: 0.005,
            ..FaultModel::default()
        },
    );
    let eth3 = w.add_segment(
        Medium::experimental_3mb(),
        FaultModel {
            loss: 0.01,
            duplication: 0.005,
            ..FaultModel::default()
        },
    );

    // --- the 10 Mb population -----------------------------------------
    let srv = w.add_host("server", eth10, 0x0B, CostModel::microvax_ii());
    let cli = w.add_host("client", eth10, 0x0A, CostModel::microvax_ii());
    let ws1 = w.add_host("ws1", eth10, 0x0C, CostModel::microvax_ii());
    let ws2 = w.add_host("ws2", eth10, 0x0D, CostModel::microvax_ii());
    for h in [srv, cli, ws1, ws2] {
        w.register_protocol(h, Box::new(KernelIp::new(h.0 as u32 + 100)));
        w.register_protocol(h, Box::new(KernelVmtp::new()));
    }

    // A promiscuous monitor on the 10 Mb wire, started before any traffic
    // source (a capture that starts late misses the frames already sent —
    // as on a real wire). A busy segment also overruns the default
    // 32-frame NIC ring (the paper's "rare lapses"), so the monitor gets
    // deep buffers to let this test assert on complete capture.
    let mon10 = w.add_host("monitor10", eth10, 0x0E, CostModel::microvax_ii());
    w.set_nic_capacity(mon10, 1 << 20);
    let cap10 = w.spawn(
        mon10,
        Box::new(CaptureApp::promiscuous(100_000).with_queue_len(1 << 20)),
    );

    // Kernel TCP bulk stream client → server.
    let tcp_rx = w.spawn(srv, Box::new(TcpBulkReceiver::new(5000)));
    w.spawn(
        cli,
        Box::new(TcpBulkSender::new(
            100 + srv.0 as u32,
            5000,
            0x0B,
            60_000,
            0,
        )),
    );

    // Kernel VMTP transactions ws1 → server.
    w.spawn(srv, Box::new(KVmtpServer::new(0x20)));
    let vmtp_cli = w.spawn(
        ws1,
        Box::new(KVmtpClient::new(
            0x10,
            0x20,
            0x0B,
            Workload {
                ops: 10,
                response_bytes: 4096,
            },
        )),
    );

    // RARP: ws2 boots, the server answers.
    let mut table = HashMap::new();
    table.insert(0x0Du64, 0xC0A8_0002_u32);
    w.spawn(srv, Box::new(RarpServer::new(table)));
    let rarp_cli = w.spawn(ws2, Box::new(RarpClient::new(30)));

    // Group multicast from the server to members on ws1 and ws2 (two on
    // ws1, exercising same-host copies).
    let g1 = w.spawn(ws1, Box::new(GroupMember::new(0x31)));
    let g2 = w.spawn(ws1, Box::new(GroupMember::new(0x31)));
    let g3 = w.spawn(ws2, Box::new(GroupMember::new(0x31)));
    w.spawn(
        srv,
        Box::new(GroupSender::new(
            0x31,
            vec![b"tick".to_vec(), b"tock".to_vec()],
        )),
    );

    // --- the 3 Mb population (the Pup world) ---------------------------
    let alice = w.add_host("alice", eth3, 0x0A, CostModel::microvax_ii());
    let bob = w.add_host("bob", eth3, 0x0B, CostModel::microvax_ii());
    let cfg = BspConfig::default();
    let bsp_rx = w.spawn(
        bob,
        Box::new(BspReceiverApp::new(
            PupAddr::new(1, 0x0B, 0x400),
            cfg.clone(),
        )),
    );
    w.spawn(
        alice,
        Box::new(BspSenderApp::new(
            PupAddr::new(1, 0x0A, 0x300),
            PupAddr::new(1, 0x0B, 0x400),
            vec![0xA5; 40_000],
            cfg,
        )),
    );
    w.spawn(bob, Box::new(EchoServer::new(PupAddr::new(1, 0x0B, 0x5))));
    let echo_cli = w.spawn(
        alice,
        Box::new(EchoClient::new(
            PupAddr::new(1, 0x0A, 0x111),
            PupAddr::new(1, 0x0B, 0x5),
            10,
            b"hello".to_vec(),
        )),
    );

    w.run_until(SimTime(600 * 1_000_000_000));

    // Everyone finished, exactly.
    let tcp = w.app_ref::<TcpBulkReceiver>(srv, tcp_rx).unwrap();
    assert!(tcp.is_done(), "TCP bulk finished ({} bytes)", tcp.bytes);
    assert_eq!(tcp.bytes, 60_000);

    let vmtp = w.app_ref::<KVmtpClient>(ws1, vmtp_cli).unwrap();
    assert!(vmtp.is_done(), "VMTP finished ({} ops)", vmtp.completed);
    assert_eq!(vmtp.bytes, 10 * 4096);

    let rarp = w.app_ref::<RarpClient>(ws2, rarp_cli).unwrap();
    assert_eq!(rarp.my_ip, Some(0xC0A8_0002), "ws2 learned its address");

    for (h, p, label) in [(ws1, g1, "g1"), (ws1, g2, "g2"), (ws2, g3, "g3")] {
        let m = w.app_ref::<GroupMember>(h, p).unwrap();
        // Multicast is unreliable datagram: with 1% loss a member may
        // miss a message, but duplicates must not double-deliver beyond
        // the wire's duplication.
        assert!(
            m.received.len() <= 4,
            "{label}: {} messages",
            m.received.len()
        );
        assert!(!m.received.is_empty(), "{label} heard the group");
    }

    let bsp = w.app_ref::<BspReceiverApp>(bob, bsp_rx).unwrap();
    assert!(bsp.is_done(), "BSP finished ({} bytes)", bsp.bytes);
    assert_eq!(bsp.bytes, 40_000);

    let echo = w.app_ref::<EchoClient>(alice, echo_cli).unwrap();
    assert!(echo.is_done(), "echoes finished ({}/10)", echo.rtts.len());

    // The monitor saw a busy, mixed wire and survived it.
    let cap = w.app_ref::<CaptureApp>(mon10, cap10).unwrap();
    let stats = TraceStats::analyze(&Medium::standard_10mb(), &cap.trace);
    assert!(stats.packets > 100, "busy wire: {} frames", stats.packets);
    assert_eq!(stats.malformed, 0);
    assert!(stats.packets_of_type(0x0800) > 0, "saw IP");
    assert!(stats.packets_of_type(VMTP_ETHERTYPE) > 0, "saw VMTP");
    assert!(stats.packets_of_type(0x8035) > 0, "saw RARP");
    assert!(
        stats.packets_of_type(packet_filter::proto::group::GROUP_ETHERTYPE) > 0,
        "saw group multicast"
    );
    // And no Pup leaked across segments.
    assert_eq!(stats.packets_of_type(PUP_ETHERTYPE), 0, "segments isolated");
}
