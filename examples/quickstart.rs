//! Quickstart: the filter language in five minutes.
//!
//! Builds the paper's figure 3-9 filter three ways — raw assembler, the
//! ready-made sample, and the predicate-expression DSL — evaluates it
//! against packets, and shows the priority-ordered demultiplexing that
//! the kernel device performs.
//!
//! Run with: `cargo run --example quickstart`

use packet_filter::filter::builder::Expr;
use packet_filter::filter::dtree::FilterSet;
use packet_filter::filter::interp::CheckedInterpreter;
use packet_filter::filter::packet::PacketView;
use packet_filter::filter::program::Assembler;
use packet_filter::filter::samples;
use packet_filter::filter::word::BinaryOp;

fn main() {
    // --- 1. The figure 3-9 filter, written with the assembler ---------
    // "Accept Pup packets with a Pup DstSocket field of 35", testing the
    // socket first so the CAND short-circuits exit early on mismatches.
    let by_hand = Assembler::new(10)
        .pushword(8)
        .pushlit_op(BinaryOp::Cand, 35) // low word of socket == 35
        .pushword(7)
        .pushzero_op(BinaryOp::Cand) // high word of socket == 0
        .pushword(1)
        .pushlit_op(BinaryOp::Eq, 2) // packet type == Pup
        .finish();
    println!("figure 3-9, assembled by hand:\n{by_hand}");

    // --- 2. The same filter from the predicate DSL --------------------
    // The "library procedure" of §3.1: the compiler notices the leading
    // equality tests and emits the same CAND chain automatically.
    let from_dsl = Expr::word(8)
        .eq(35)
        .and(Expr::word(7).eq(0))
        .and(Expr::word(1).eq(2))
        .compile(10)
        .expect("static filter compiles");
    println!("the same predicate from the expression DSL:\n{from_dsl}");

    // --- 3. Evaluate against packets -----------------------------------
    let interp = CheckedInterpreter::default();
    let ours = samples::pup_packet_3mb(2, 0, 35, 1); // Pup to socket 35
    let theirs = samples::pup_packet_3mb(2, 0, 99, 1); // Pup to socket 99
    let (accept, stats) = interp.eval_with_stats(&by_hand, PacketView::new(&ours));
    println!(
        "packet to socket 35: accepted={accept} after {} instructions",
        stats.instructions
    );
    let (accept, stats) = interp.eval_with_stats(&by_hand, PacketView::new(&theirs));
    println!(
        "packet to socket 99: accepted={accept} after {} instructions \
         (short-circuited: {})",
        stats.instructions, stats.short_circuited
    );

    // --- 4. A demultiplexing set with priorities ------------------------
    // Higher priority wins when filters overlap (§3.2); the catch-all
    // monitor at low priority only sees what nobody claims… unless it
    // opts into copies via the deliver-to-lower option in the kernel.
    let mut set = FilterSet::new();
    set.insert(1, samples::pup_socket_filter(10, 0, 35)); // a connection
    set.insert(2, samples::pup_socket_filter(10, 0, 99)); // another one
    set.insert(3, samples::ethertype_filter(5, 2)); // any Pup, lower prio
    for (label, pkt) in [("socket 35", &ours), ("socket 99", &theirs)] {
        println!(
            "decision table routes {label} -> port {:?}",
            set.first_match(PacketView::new(pkt))
        );
    }
    let stray = samples::pup_packet_3mb(2, 0, 7, 1);
    println!(
        "unclaimed Pup (socket 7) falls through to the type filter -> port {:?}",
        set.first_match(PacketView::new(&stray))
    );
    println!(
        "({} of {} filters were table-compiled; the set answers in one hash probe)",
        set.table_compiled(),
        set.len()
    );
}
