//! The paper's headline comparison, live: the *same* VMTP transaction
//! machines running user-level over the packet filter and kernel-resident
//! (§6.3, tables 6-2/6-3), on identical simulated MicroVAX-IIs.
//!
//! Run with: `cargo run --release --example vmtp_compare`

use packet_filter::kernel::world::World;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::vmtp::SEGMENT_BYTES;
use packet_filter::proto::vmtp_kernel::{KVmtpClient, KVmtpServer, KernelVmtp};
use packet_filter::proto::vmtp_user::{VmtpUserClient, VmtpUserServer, Workload};
use packet_filter::sim::cost::CostModel;
use packet_filter::sim::time::SimTime;
use packet_filter::SimClock;

const SERVER_ENTITY: u32 = 0x20;
const CLIENT_ENTITY: u32 = 0x10;
const SERVER_ETH: u64 = 0x0B;
const CAP: SimTime = SimTime(600 * 1_000_000_000);

fn user_level(ops: u64, bytes: u32) -> (f64, f64) {
    let mut w = World::new(5);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let c = w.add_host("client", seg, 0x0A, CostModel::microvax_ii());
    let s = w.add_host("server", seg, SERVER_ETH, CostModel::microvax_ii());
    w.spawn(s, Box::new(VmtpUserServer::new(SERVER_ENTITY)));
    let p = w.spawn(
        c,
        Box::new(VmtpUserClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops,
                response_bytes: bytes,
            },
        )),
    );
    w.run_until(CAP);
    let app = w.app_ref::<VmtpUserClient>(c, p).expect("client");
    assert!(app.is_done());
    (
        app.per_op().unwrap().as_millis_f64(),
        app.throughput_bps().unwrap_or(0.0) / 1024.0,
    )
}

fn kernel_resident(ops: u64, bytes: u32) -> (f64, f64) {
    let mut w = World::new(5);
    let seg = w.add_segment(Medium::standard_10mb(), FaultModel::default());
    let c = w.add_host("client", seg, 0x0A, CostModel::microvax_ii());
    let s = w.add_host("server", seg, SERVER_ETH, CostModel::microvax_ii());
    w.register_protocol(c, Box::new(KernelVmtp::new()));
    w.register_protocol(s, Box::new(KernelVmtp::new()));
    w.spawn(s, Box::new(KVmtpServer::new(SERVER_ENTITY)));
    let p = w.spawn(
        c,
        Box::new(KVmtpClient::new(
            CLIENT_ENTITY,
            SERVER_ENTITY,
            SERVER_ETH,
            Workload {
                ops,
                response_bytes: bytes,
            },
        )),
    );
    w.run_until(CAP);
    let app = w.app_ref::<KVmtpClient>(c, p).expect("client");
    assert!(app.is_done());
    (
        app.per_op().unwrap().as_millis_f64(),
        app.throughput_bps().unwrap_or(0.0) / 1024.0,
    )
}

fn main() {
    println!("== VMTP: user-level (packet filter) vs kernel-resident ==\n");

    let (u_rtt, _) = user_level(30, 0);
    let (k_rtt, _) = kernel_resident(30, 0);
    println!("minimal operation (read 0 bytes from a file):");
    println!("  packet filter: {u_rtt:6.2} ms   (paper: 14.7 ms)");
    println!("  Unix kernel:   {k_rtt:6.2} ms   (paper:  7.44 ms)");
    println!(
        "  penalty:       {:.2}x       (paper: ~2x)\n",
        u_rtt / k_rtt
    );

    let (_, u_bulk) = user_level(32, SEGMENT_BYTES as u32);
    let (_, k_bulk) = kernel_resident(32, SEGMENT_BYTES as u32);
    println!("bulk transfer (repeated 16 KB file-segment reads):");
    println!("  packet filter: {u_bulk:6.0} KB/s (paper: 112 KB/s)");
    println!("  Unix kernel:   {k_bulk:6.0} KB/s (paper: 336 KB/s)");
    println!(
        "  penalty:       {:.2}x       (paper: ~3x)\n",
        k_bulk / u_bulk
    );

    println!(
        "Both variants run the *same* pure transaction machines \
         (pf_proto::vmtp); only\nthe domain boundary moves — which is the \
         paper's entire point."
    );
}
