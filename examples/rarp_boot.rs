//! A diskless workstation determines its IP address via RARP (§5.3).
//!
//! "With the packet filter, a RARP implementation was easy; the work was
//! done in a few weeks by a student who had no experience with network
//! programming." The client follows §3's "write; read with timeout; retry
//! if necessary" paradigm verbatim, here against a lossy wire, while a
//! user-level RARP server answers from its address table.
//!
//! Run with: `cargo run --example rarp_boot`

use packet_filter::kernel::world::World;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::rarp::{RarpClient, RarpServer};
use packet_filter::sim::cost::CostModel;
use packet_filter::sim::time::SimTime;
use packet_filter::SimClock;
use std::collections::HashMap;

fn main() {
    let mut w = World::new(99);
    // Four out of ten frames vanish: the retry loop earns its keep.
    let seg = w.add_segment(
        Medium::standard_10mb(),
        FaultModel {
            loss: 0.4,
            duplication: 0.0,
            ..FaultModel::default()
        },
    );
    let station = w.add_host("diskless", seg, 0x0A, CostModel::microvax_ii());
    let server_host = w.add_host("rarpd", seg, 0x0B, CostModel::microvax_ii());

    let mut table = HashMap::new();
    table.insert(0x0Au64, 0xC0A8_000A_u32); // 192.168.0.10
    table.insert(0x0Du64, 0xC0A8_000D_u32); // another known station
    let server = w.spawn(server_host, Box::new(RarpServer::new(table)));
    let client = w.spawn(station, Box::new(RarpClient::new(20)));

    w.run_until(SimTime(60 * 1_000_000_000));

    let c = w.app_ref::<RarpClient>(station, client).expect("client");
    let s = w
        .app_ref::<RarpServer>(server_host, server)
        .expect("server");

    println!("== RARP boot on a lossy wire (40% loss) ==");
    match c.my_ip {
        Some(ip) => println!(
            "station 0x0A learned its address: {}.{}.{}.{} after {} request(s), at {}",
            ip >> 24,
            (ip >> 16) & 0xFF,
            (ip >> 8) & 0xFF,
            ip & 0xFF,
            c.requests_sent,
            c.resolved_at.expect("resolved")
        ),
        None => println!("station gave up after {} requests", c.requests_sent),
    }
    println!(
        "server answered {} request(s), ignored {} unknown",
        s.answered, s.unknown
    );
    println!(
        "wire: {} frames sent, {} eaten by the noise",
        w.network().transmitted_on(seg),
        w.network().lost_on(seg)
    );
}
