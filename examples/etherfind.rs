//! An `etherfind`-style trace tool (§5.4) with a user-supplied filter.
//!
//! "Sun Microsystems' etherfind program is another example of an
//! integrated network monitor. It is based on Sun's Network Interface Tap
//! (NIT) facility, which is similar to the packet filter but only allows
//! filtering on a single packet field!" — this one takes a *full* filter
//! program, written in the mnemonic assembly of the paper's figures, from
//! the command line.
//!
//! Run with, e.g.:
//!
//! ```sh
//! cargo run --example etherfind                                 # capture all
//! cargo run --example etherfind -- 'PUSHWORD+8, PUSHLIT|CAND, 35,
//!                                   PUSHWORD+7, PUSHZERO|CAND,
//!                                   PUSHWORD+1, PUSHLIT|EQ, 2'  # fig 3-9
//! ```
//!
//! The traffic is a canned world: a BSP transfer between two hosts plus a
//! few echo exchanges, watched by a promiscuous monitor host whose filter
//! is yours.

use packet_filter::filter::asm;
use packet_filter::filter::samples;
use packet_filter::kernel::world::World;
use packet_filter::monitor::capture::CaptureApp;
use packet_filter::monitor::decode;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::bsp::BspConfig;
use packet_filter::proto::bsp_app::{BspReceiverApp, BspSenderApp};
use packet_filter::proto::echo::{EchoClient, EchoServer};
use packet_filter::proto::pup::PupAddr;
use packet_filter::sim::cost::CostModel;
use packet_filter::SimClock;

fn main() {
    // Parse the filter from argv (default: capture everything). The
    // monitor's filter runs at high priority with deliver-to-lower, so it
    // never diverts the traffic it watches.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = if args.is_empty() {
        samples::accept_all(200)
    } else {
        match asm::parse(200, &args.join(" ")) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("filter parse error: {e}");
                std::process::exit(1);
            }
        }
    };
    println!("capturing with filter:\n{filter}");

    let mut w = World::new(1);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let alice = w.add_host("alice", seg, 0x0A, CostModel::microvax_ii());
    let bob = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    let mon = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());

    // Traffic: a BSP transfer on socket 0x400 and echoes on socket 5.
    let cfg = BspConfig::default();
    w.spawn(
        bob,
        Box::new(BspReceiverApp::new(
            PupAddr::new(1, 0x0B, 0x400),
            cfg.clone(),
        )),
    );
    w.spawn(
        alice,
        Box::new(BspSenderApp::new(
            PupAddr::new(1, 0x0A, 0x300),
            PupAddr::new(1, 0x0B, 0x400),
            vec![0x55; 4096],
            cfg,
        )),
    );
    w.spawn(bob, Box::new(EchoServer::new(PupAddr::new(1, 0x0B, 0x5))));
    w.spawn(
        alice,
        Box::new(EchoClient::new(
            PupAddr::new(1, 0x0A, 0x111),
            PupAddr::new(1, 0x0B, 0x5),
            5,
            b"etherfind".to_vec(),
        )),
    );

    let cap = w.spawn(mon, Box::new(CaptureApp::with_filter(filter, 10_000)));
    w.run();

    let capture = w.app_ref::<CaptureApp>(mon, cap).expect("capture");
    let medium = Medium::experimental_3mb();
    println!("== {} matching frames ==", capture.captured());
    for c in &capture.trace {
        let stamp = c.stamp.map(|t| t.to_string()).unwrap_or_default();
        println!("{stamp:>12}  {}", decode::decode(&medium, &c.bytes));
    }
}
