//! A Pup/BSP file transfer between two simulated hosts (§5.1).
//!
//! This is the paper's flagship use case: "At Stanford, almost all of the
//! Pup protocols were implemented for Unix, based entirely on the packet
//! filter." Two MicroVAX-II-class hosts on a 3 Mbit/s Experimental
//! Ethernet move 100 KB through the user-level BSP implementation; the
//! run prints throughput, protocol statistics, and the receiving host's
//! kernel counters and gprof-style profile.
//!
//! Run with: `cargo run --release --example pup_transfer`

use packet_filter::kernel::world::World;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::bsp::BspConfig;
use packet_filter::proto::bsp_app::{BspReceiverApp, BspSenderApp};
use packet_filter::proto::pup::PupAddr;
use packet_filter::sim::cost::CostModel;
use packet_filter::SimClock;

const TOTAL: usize = 100 * 1024;

fn main() {
    let mut w = World::new(2026);
    // A slightly lossy wire, to show the protocol recovering.
    let seg = w.add_segment(
        Medium::experimental_3mb(),
        FaultModel {
            loss: 0.01,
            duplication: 0.0,
            ..FaultModel::default()
        },
    );
    let alice = w.add_host("alice", seg, 0x0A, CostModel::microvax_ii());
    let bob = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());

    let src = PupAddr::new(1, 0x0A, 0x0300);
    let dst = PupAddr::new(1, 0x0B, 0x0400);
    let cfg = BspConfig::default();
    let payload: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();

    let rx = w.spawn(bob, Box::new(BspReceiverApp::new(dst, cfg.clone())));
    let tx = w.spawn(alice, Box::new(BspSenderApp::new(src, dst, payload, cfg)));

    let end = w.run();

    let sender = w.app_ref::<BspSenderApp>(alice, tx).expect("sender");
    let receiver = w.app_ref::<BspReceiverApp>(bob, rx).expect("receiver");
    assert!(receiver.is_done(), "transfer completed");

    println!("== Pup/BSP transfer: alice -> bob, {TOTAL} bytes ==");
    println!("virtual time elapsed: {end}");
    println!(
        "throughput: {:.1} KB/s (the paper measured 38 KB/s for the 1982 code)",
        receiver.throughput_bps().unwrap_or(0.0) / 1024.0
    );
    println!("\nsender stats:    {:?}", sender.stats());
    println!("receiver stats:  {:?}", receiver.stats());
    println!(
        "\nwire: {} frames transmitted, {} lost to injected noise",
        w.network().transmitted_on(seg),
        w.network().lost_on(seg)
    );
    println!("\nbob's kernel counters:\n{}", w.counters(bob));
    println!("\nbob's kernel profile (gprof style):\n{}", w.profiler(bob));
}
