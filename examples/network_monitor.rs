//! An integrated network monitor (§5.4) watching a live conversation.
//!
//! Three hosts share an Ethernet: alice streams to bob over BSP while a
//! monitor workstation captures every frame through a promiscuous,
//! high-priority, *non-diverting* packet-filter port (the §3.2
//! deliver-to-lower option), then decodes and analyzes the trace — the
//! workflow Sun's `etherfind` and everything after it inherited.
//!
//! Run with: `cargo run --release --example network_monitor`

use packet_filter::kernel::world::World;
use packet_filter::monitor::capture::CaptureApp;
use packet_filter::monitor::decode;
use packet_filter::monitor::stats::TraceStats;
use packet_filter::net::medium::Medium;
use packet_filter::net::segment::FaultModel;
use packet_filter::proto::bsp::BspConfig;
use packet_filter::proto::bsp_app::{BspReceiverApp, BspSenderApp};
use packet_filter::proto::pup::PupAddr;
use packet_filter::sim::cost::CostModel;
use packet_filter::SimClock;

fn main() {
    let mut w = World::new(7);
    let seg = w.add_segment(Medium::experimental_3mb(), FaultModel::default());
    let alice = w.add_host("alice", seg, 0x0A, CostModel::microvax_ii());
    let bob = w.add_host("bob", seg, 0x0B, CostModel::microvax_ii());
    let watcher = w.add_host("monitor", seg, 0x0C, CostModel::microvax_ii());

    let src = PupAddr::new(1, 0x0A, 0x0300);
    let dst = PupAddr::new(1, 0x0B, 0x0400);
    let cfg = BspConfig::default();
    let payload = vec![0x42u8; 8 * 1024];

    let rx = w.spawn(bob, Box::new(BspReceiverApp::new(dst, cfg.clone())));
    w.spawn(alice, Box::new(BspSenderApp::new(src, dst, payload, cfg)));
    let cap = w.spawn(watcher, Box::new(CaptureApp::promiscuous(10_000)));

    w.run();

    let receiver = w.app_ref::<BspReceiverApp>(bob, rx).expect("receiver");
    assert!(receiver.is_done(), "the monitored transfer still completes");

    let capture = w.app_ref::<CaptureApp>(watcher, cap).expect("capture");
    let medium = Medium::experimental_3mb();

    println!("== trace: first 12 frames ==");
    for c in capture.trace.iter().take(12) {
        let stamp = c.stamp.map(|t| t.to_string()).unwrap_or_default();
        println!("{stamp:>12}  {}", decode::decode(&medium, &c.bytes));
    }
    println!("… {} frames total\n", capture.captured());

    let stats = TraceStats::analyze(&medium, &capture.trace);
    println!("== trace analysis ==");
    println!("packets: {}, bytes: {}", stats.packets, stats.bytes);
    println!("mean size: {:.0} bytes", stats.mean_size());
    if let (Some(min), Some(mean)) = (stats.min_gap, stats.mean_gap) {
        println!("inter-arrival: min {min}, mean {mean}");
    }
    println!("top talkers:");
    for ((src, dst), n) in stats.top_talkers(3) {
        println!("  {src:#04x} -> {dst:#04x}: {n} packets");
    }
    println!(
        "\nthe transfer was undisturbed: bob received {} bytes intact",
        receiver.bytes
    );
}
